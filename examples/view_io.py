#!/usr/bin/env python
"""Non-contiguous I/O through views: the MPI-IO-style usage.

The paper's file model turns non-contiguous access into *contiguous*
access of a linear view (§2: "Non-contiguous I/O is realized by setting
a linear view on the data set and accessing it contiguously").  This
example demonstrates:

* a matrix written by row-block views and read back by **column** views
  (a transpose-flavoured access pattern),
* a halo-exchange-style read where each process's view covers its block
  of rows plus one ghost row on each side,
* an irregular (owner-map) partition used as a view.

Run:  python examples/view_io.py
"""

import numpy as np

from repro import Falls, FallsSet, Partition, matrix_partition
from repro.clusterfile import Clusterfile
from repro.distributions import partition_from_owner_array
from repro.simulation import ClusterConfig

N = 64  # matrix side, bytes
P = 4


def fresh_fs():
    return Clusterfile(ClusterConfig(compute_nodes=P, io_nodes=P))


def write_matrix(fs, data):
    fs.create("m", matrix_partition("b", N, N, P))
    rows = matrix_partition("r", N, N, P)
    for c in range(P):
        fs.set_view("m", c, rows)
    per = N * N // P
    fs.write("m", [(c, 0, data[c * per : (c + 1) * per]) for c in range(P)])


def main():
    rng = np.random.default_rng(3)
    data = rng.integers(0, 256, N * N, dtype=np.uint8)
    mat = data.reshape(N, N)

    # -- transpose-flavoured access ------------------------------------
    fs = fresh_fs()
    write_matrix(fs, data)
    cols = matrix_partition("c", N, N, P)
    for c in range(P):
        fs.set_view("m", c, cols)
    per = N * N // P
    bufs = fs.read("m", [(c, 0, per) for c in range(P)])
    for c, buf in enumerate(bufs):
        want = mat[:, c * (N // P) : (c + 1) * (N // P)].reshape(-1)
        assert np.array_equal(buf, want)
    print("column views over a square-block file: verified "
          f"({P} views x {per} bytes, each gathered from multiple subfiles)")

    # -- halo reads ------------------------------------------------------
    # Each process reads its row block plus one ghost row on each side.
    fs = fresh_fs()
    write_matrix(fs, data)
    rows_per = N // P
    for c in range(P):
        lo_row = max(0, c * rows_per - 1)
        hi_row = min(N, (c + 1) * rows_per + 1)
        # A view that is just the halo window: one contiguous row range.
        halo = Partition(
            [
                FallsSet([Falls(0, (hi_row - lo_row) * N - 1,
                                (hi_row - lo_row) * N, 1)]),
            ],
            displacement=lo_row * N,
            validate=True,
        )
        fs.set_view("m", c, halo, element=0)
        got = fs.read("m", [(c, 0, (hi_row - lo_row) * N)])[0]
        assert np.array_equal(got, mat[lo_row:hi_row].reshape(-1))
    print("halo-window views (row block + ghost rows): verified")

    # -- irregular views --------------------------------------------------
    # Owner map: bytes assigned to processes by hash - no regularity at
    # all.  The FALLS machinery still handles it (paper §3: arbitrary
    # distributions).
    owners = (np.arange(N * N) * 2654435761 % 97) % P
    irregular = partition_from_owner_array(owners, P)
    fs = fresh_fs()
    write_matrix(fs, data)
    for c in range(P):
        fs.set_view("m", c, irregular)
    sizes = [irregular.element_length(c, N * N) for c in range(P)]
    bufs = fs.read("m", [(c, 0, sizes[c]) for c in range(P)])
    for c, buf in enumerate(bufs):
        assert np.array_equal(buf, data[owners == c])
    frag = sum(
        irregular.elements[c].leaf_segment_count() for c in range(P)
    )
    print(f"irregular owner-map views: verified ({frag} fragments/period)")

    print("\nAll view I/O scenarios verified byte-exactly.")


if __name__ == "__main__":
    main()
