#!/usr/bin/env python
"""The paper's case study: writing through Clusterfile views (§8).

Reproduces the write flow of figure 5 on the simulated cluster — four
compute nodes, four I/O nodes — for the three physical layouts of the
evaluation, and prints the Table-1-style timing breakdown for each.

Run:  python examples/clusterfile_write.py [matrix_side_bytes]
"""

import sys

import numpy as np

from repro.bench import LAYOUT_NAMES, MatrixWorkload
from repro.clusterfile import Clusterfile
from repro.simulation import ClusterConfig


def run_layout(n, layout):
    w = MatrixWorkload(n, layout)
    data = w.data(seed=7)

    fs = Clusterfile(ClusterConfig(compute_nodes=4, io_nodes=4))
    fs.create("matrix", w.physical())

    # Every compute node sets a row-block view once (pays t_i).
    for c in range(w.nprocs):
        fs.set_view("matrix", c, w.logical())

    # All four nodes write their view concurrently, through to disk.
    result = fs.write("matrix", w.view_accesses(data), to_disk=True)

    # Verify the file holds exactly the matrix.
    assert np.array_equal(fs.linear_contents("matrix", data.size), data)

    # And read it back through the views.
    per = w.bytes_per_process
    bufs = fs.read("matrix", [(c, 0, per) for c in range(4)])
    for c, buf in enumerate(bufs):
        assert np.array_equal(buf, data[c * per : (c + 1) * per])

    return result


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    print(f"Writing a {n}x{n}-byte matrix through row-block views")
    print("(4 compute nodes, 4 I/O nodes; timings in microseconds)\n")
    header = (
        f"{'physical layout':>16} | {'t_i':>8} {'t_m':>7} {'t_g':>8} "
        f"{'t_w_bc':>8} {'t_w_disk':>9} | msgs"
    )
    print(header)
    print("-" * len(header))
    for layout in ("c", "b", "r"):
        res = run_layout(n, layout)
        bds = list(res.per_compute.values())
        mean = lambda f: float(np.mean([getattr(b, f) for b in bds]))
        mx = lambda f: max(getattr(b, f) for b in bds)
        print(
            f"{LAYOUT_NAMES[layout]:>16} |"
            f" {mean('t_i'):8.0f} {mean('t_m'):7.1f} {mean('t_g'):8.1f}"
            f" {mx('t_w_bc'):8.0f} {mx('t_w_disk'):9.0f} |"
            f" {res.messages:4d}"
        )
    print(
        "\nNote how the matched layout (row blocks) needs no gather at"
        "\nall (t_g = 0), maps extremities for free (t_m ~ 0), and wins"
        "\nthe write makespan - the paper's 'optimal physical"
        "\ndistribution for a given logical distribution' (§6.2)."
    )


if __name__ == "__main__":
    main()
