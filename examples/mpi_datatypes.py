#!/usr/bin/env python
"""MPI derived datatypes on top of nested FALLS (paper §3).

The paper claims MPI datatypes "can be built on top of" nested FALLS and
that GATHER/SCATTER "can also be used to implement MPI's pack and unpack
operations".  This example builds vector, indexed, subarray and struct
types with the :mod:`repro.distributions.mpi_types` constructors, packs
and unpacks real buffers through them, and checks the results against
direct NumPy slicing.

Run:  python examples/mpi_datatypes.py
"""

import numpy as np

from repro.core import PeriodicFallsSet
from repro.distributions.mpi_types import (
    contiguous,
    indexed,
    primitive,
    struct_like,
    subarray,
    vector,
)
from repro.redistribution import gather, scatter


def pack(buf, t, count=1):
    """MPI_Pack: gather a type's significant bytes into a packed buffer."""
    pfs = PeriodicFallsSet(t.falls, 0, t.extent)
    out = np.empty(t.size * count, dtype=np.uint8)
    gather(out, buf, 0, t.extent * count - 1, pfs)
    return out


def unpack(packed, t, count, total_len):
    """MPI_Unpack: scatter packed bytes back to the type's layout."""
    pfs = PeriodicFallsSet(t.falls, 0, t.extent)
    out = np.zeros(total_len, dtype=np.uint8)
    scatter(out, packed, 0, t.extent * count - 1, pfs)
    return out


def main():
    double = primitive(8)

    # -- MPI_Type_vector: a matrix column ---------------------------------
    n = 16
    col = vector(count=n, blocklength=1, stride=n, base=double)
    print(f"column type: size={col.size} extent={col.extent}")
    mat = np.arange(n * n * 8, dtype=np.uint8)
    packed = pack(mat, col)
    want = mat.reshape(n, n * 8)[:, 8 : 16].reshape(-1)  # column 1 is bytes 8..15
    np.testing.assert_array_equal(packed, mat.reshape(n, n * 8)[:, :8].reshape(-1))
    print("  packed column 0 matches numpy slicing")

    # -- MPI_Type_indexed: an upper-triangular row set ---------------------
    tri = indexed(
        blocklengths=[4, 3, 2, 1],
        displacements=[0, 5, 10, 15],
        base=double,
    )
    buf = np.arange(tri.extent, dtype=np.uint8)
    packed = pack(buf, tri)
    print(f"indexed type: size={tri.size} extent={tri.extent},"
          f" packed {packed.size} bytes")
    back = unpack(packed, tri, 1, tri.extent)
    mask = np.zeros(tri.extent, dtype=bool)
    for blen, disp in zip([4, 3, 2, 1], [0, 5, 10, 15]):
        mask[disp * 8 : (disp + blen) * 8] = True
    np.testing.assert_array_equal(back[mask], buf[mask])
    assert not back[~mask].any()
    print("  pack -> unpack roundtrip verified")

    # -- MPI_Type_create_subarray: a 3-D interior region -------------------
    shape, subsizes, starts = (8, 8, 8), (4, 4, 4), (2, 2, 2)
    sub = subarray(shape, subsizes, starts, primitive(1))
    cube = np.arange(8 * 8 * 8, dtype=np.uint8)
    packed = pack(cube, sub)
    want = cube.reshape(shape)[2:6, 2:6, 2:6].reshape(-1)
    np.testing.assert_array_equal(packed, want)
    print(f"subarray type: {subsizes} of {shape} -> {packed.size} bytes,"
          " matches numpy slicing")

    # -- MPI_Type_create_struct: a header-plus-payload record --------------
    record = struct_like([(0, primitive(4)), (8, contiguous(3, double))])
    print(f"struct type: size={record.size} extent={record.extent}")
    buf = np.arange(record.extent * 4, dtype=np.uint8)  # 4 records
    packed = pack(buf, record, count=4)
    assert packed.size == record.size * 4
    back = unpack(packed, record, 4, record.extent * 4)
    view = buf.reshape(4, record.extent)
    bv = back.reshape(4, record.extent)
    np.testing.assert_array_equal(bv[:, :4], view[:, :4])
    np.testing.assert_array_equal(bv[:, 8:32], view[:, 8:32])
    assert not bv[:, 4:8].any()
    print("  4 records packed/unpacked; gaps skipped as MPI requires")

    print("\nAll MPI-datatype scenarios verified.")


if __name__ == "__main__":
    main()
