#!/usr/bin/env python
"""MPI-IO semantics on the parallel file model (paper §3).

Recreates two canonical MPI-IO programs with :mod:`repro.mpiio`:

1. the mpi4py tutorial's *non-contiguous collective write*: each rank
   views every ``size``-th integer of the file through a resized vector
   filetype;
2. a 2-D subarray decomposition: each rank views its quadrant of a
   matrix via ``MPI_Type_create_subarray`` and writes it with one
   contiguous call.

Run:  python examples/mpiio_views.py
"""

import numpy as np

from repro import matrix_partition, round_robin
from repro.clusterfile import Clusterfile
from repro.distributions.mpi_types import primitive, subarray, vector
from repro.mpiio import MPIFile
from repro.simulation import ClusterConfig

NP = 4


def interleaved_integers():
    print("=== interleaved integers (MPI_Type_vector + resized) ===")
    fs = Clusterfile(ClusterConfig(compute_nodes=NP, io_nodes=NP))
    fs.create("data.noncontig", round_robin(NP, 4))
    f = MPIFile(fs, "data.noncontig", NP)

    intt = primitive(4)
    item_count = 10
    for rank in range(NP):
        filetype = vector(1, 1, NP, intt).resized(NP * 4)
        f.set_view(rank, rank * 4, intt, filetype)
        buf = np.full(item_count, rank, np.int32)
        f.write_at(rank, 0, buf.view(np.uint8))

    raw = fs.linear_contents("data.noncontig", NP * 4 * item_count)
    ints = raw.view(np.int32)
    print("file contents (int32):", ints[: 2 * NP].tolist(), "...")
    assert ints.reshape(item_count, NP).T.tolist() == [
        [r] * item_count for r in range(NP)
    ]
    print("each rank's integers land every", NP, "slots - verified\n")


def subarray_quadrants():
    print("=== 2-D quadrants (MPI_Type_create_subarray) ===")
    n = 16
    fs = Clusterfile(ClusterConfig(compute_nodes=NP, io_nodes=NP))
    fs.create("matrix", matrix_partition("b", n, n, NP))
    f = MPIFile(fs, "matrix", NP)

    for rank in range(NP):
        r, c = divmod(rank, 2)
        ft = subarray(
            (n, n), (n // 2, n // 2), (r * n // 2, c * n // 2), primitive(1)
        )
        f.set_view(rank, 0, primitive(1), ft)
        f.write_at(rank, 0, np.full((n // 2) ** 2, rank + 1, np.uint8))

    mat = fs.linear_contents("matrix", n * n).reshape(n, n)
    print("assembled matrix corners:",
          mat[0, 0], mat[0, -1], mat[-1, 0], mat[-1, -1])
    assert (mat[0, 0], mat[0, -1], mat[-1, 0], mat[-1, -1]) == (1, 2, 3, 4)

    # Every rank reads back its quadrant through the same view.
    for rank in range(NP):
        got = f.read_at(rank, 0, (n // 2) ** 2)
        assert (got == rank + 1).all()
    print("per-rank quadrant reads verified\n")


if __name__ == "__main__":
    interleaved_integers()
    subarray_quadrants()
    print("All MPI-IO scenarios verified.")
