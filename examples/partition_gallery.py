#!/usr/bin/env python
"""A gallery of partitions, drawn the way the paper draws them.

Renders the paper's figure-3 file layout, the three evaluation layouts
on a miniature matrix, an HPF CYCLIC(k) distribution, an intersection
with its projections (figure 4), and the matching-degree matrix.

Run:  python examples/partition_gallery.py
"""

from repro import (
    Falls,
    FallsSet,
    Partition,
    cyclic_pitfalls,
    intersect_elements,
    matrix_partition,
    project,
)
from repro.core.matching import matching_degree
from repro.viz import render_falls, render_partition, render_periodic


def banner(title):
    print("\n" + "=" * 68)
    print(title)
    print("=" * 68)


def main():
    banner("Figure 1: the FALLS (3,5,6,5)")
    print(render_falls(Falls(3, 5, 6, 5)))

    banner("Figure 3: displacement 2, three strided subfiles")
    print(
        render_partition(
            Partition(
                [Falls(0, 1, 6, 1), Falls(2, 3, 6, 1), Falls(4, 5, 6, 1)],
                displacement=2,
            ),
            length=26,
        )
    )

    banner("The evaluation's layouts on an 8x8 matrix (4 processes)")
    for layout, name in (("r", "row blocks"), ("c", "column blocks"),
                         ("b", "square blocks")):
        print(f"\n-- {name} --")
        print(render_partition(matrix_partition(layout, 8, 8, 4), length=64))

    banner("HPF CYCLIC(2) over 3 processors as one PITFALLS")
    pf = cyclic_pitfalls(24, 2, 3)
    print("PITFALLS:", pf)
    print(render_partition(pf.partition(), length=24))

    banner("Figure 4: intersection and projections")
    view = Partition([
        FallsSet([Falls(0, 7, 16, 2, (Falls(0, 1, 4, 2),))]),
        FallsSet([Falls(0, 7, 16, 2, (Falls(2, 3, 4, 2),))]),
        FallsSet([Falls(8, 15, 16, 2)]),
    ])
    phys = Partition([
        FallsSet([Falls(0, 3, 8, 4, (Falls(0, 0, 2, 2),))]),
        FallsSet([Falls(0, 3, 8, 4, (Falls(1, 1, 2, 2),))]),
        FallsSet([Falls(4, 7, 8, 4)]),
    ])
    inter = intersect_elements(view, 0, phys, 0)
    print("V ∩ S in file space:")
    print(render_periodic(inter, 32))
    print("\nPROJ_V:")
    print(render_periodic(project(inter, view, 0), 16))
    print("\nPROJ_S:")
    print(render_periodic(project(inter, phys, 0), 16))

    banner("Matching degrees between the evaluation layouts (64x64)")
    print(f"{'':>4}" + "".join(f"{b:>8}" for b in "rcb"))
    for a in "rcb":
        cells = []
        for b in "rcb":
            m = matching_degree(
                matrix_partition(a, 64, 64, 4), matrix_partition(b, 64, 64, 4)
            )
            cells.append(f"{m.degree():8.3f}")
        print(f"{a:>4}" + "".join(cells))


if __name__ == "__main__":
    main()
