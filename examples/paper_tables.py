#!/usr/bin/env python
"""Regenerate the paper's evaluation tables (a thin wrapper).

Equivalent to ``python -m repro.bench all`` but shaped as an example of
the harness API, at reduced size/repetition so it finishes in seconds.

Run:  python examples/paper_tables.py [--full]
"""

import sys

from repro.bench import (
    format_table1,
    format_table2,
    shape_checks_table1,
    shape_checks_table2,
    table1,
    table2,
)


def main():
    full = "--full" in sys.argv
    sizes = (256, 512, 1024, 2048) if full else (256, 512)
    repeats = 3 if full else 1

    rows1 = table1(sizes=sizes, repeats=repeats)
    print(format_table1(rows1))
    print()
    rows2 = table2(sizes=sizes, repeats=repeats)
    print(format_table2(rows2))

    if full:
        print("\nShape checks:")
        for name, ok in {
            **{f"T1 {k}": v for k, v in shape_checks_table1(rows1).items()},
            **{f"T2 {k}": v for k, v in shape_checks_table2(rows2).items()},
        }.items():
            print(f"  [{'ok' if ok else 'FAIL'}] {name}")


if __name__ == "__main__":
    main()
