#!/usr/bin/env python
"""Redistributing a 2-D matrix between HPF-style layouts.

The scenario the paper's introduction motivates: a multidimensional
array stored on parallel disks in one decomposition while the
application wants another.  This example distributes a matrix over four
processes as column blocks, square blocks and CYCLIC(k) stripes, builds
redistribution schedules between them, prints the matching-degree
statistics, and verifies every move byte-exactly.

Run:  python examples/matrix_redistribution.py
"""

import numpy as np

from repro import (
    Block,
    BlockCyclic,
    build_plan,
    collect,
    distribute,
    execute_plan,
    matrix_partition,
    multidim_partition,
)

ROWS = COLS = 256
NPROCS = 4


def show_plan(name, plan, file_bytes):
    s = plan.fragment_statistics()
    print(
        f"{name:>18}: {s['transfers']:2d} transfers, "
        f"{s['src_fragments']:5d} gather frags/period, "
        f"{s['dst_fragments']:5d} scatter frags/period, "
        f"mean fragment {s['mean_fragment_bytes']:8.1f} B"
        f"{'  [identity]' if plan.is_identity else ''}"
    )


def main():
    matrix = np.random.default_rng(1).integers(
        0, 256, ROWS * COLS, dtype=np.uint8
    )

    layouts = {
        "row blocks": matrix_partition("r", ROWS, COLS, NPROCS),
        "column blocks": matrix_partition("c", ROWS, COLS, NPROCS),
        "square blocks": matrix_partition("b", ROWS, COLS, NPROCS),
        "cyclic(8) rows": multidim_partition(
            (ROWS, COLS), 1, (BlockCyclic(8), Block()), (2, 2)
        ),
    }

    print(f"{ROWS}x{COLS} matrix over {NPROCS} processes\n")
    print("Schedules between every pair of layouts:")
    plans = {}
    for a_name, a in layouts.items():
        for b_name, b in layouts.items():
            plan = build_plan(a, b)
            plans[(a_name, b_name)] = plan
            show_plan(f"{a_name[:8]}->{b_name[:8]}", plan, matrix.size)

    print("\nExecuting every redistribution and verifying...")
    for (a_name, b_name), plan in plans.items():
        src_buffers = distribute(matrix, layouts[a_name])
        dst_buffers = execute_plan(plan, src_buffers, matrix.size)
        back = collect(dst_buffers, layouts[b_name], matrix.size)
        assert np.array_equal(back, matrix), (a_name, b_name)
    print(f"all {len(plans)} layout pairs redistribute byte-exactly.")

    print("\nPer-process ownership under 'square blocks':")
    sq = layouts["square blocks"]
    for p in range(NPROCS):
        buf = distribute(matrix, sq)[p]
        print(f"  process {p}: {buf.size} bytes,"
              f" first 8 = {buf[:8].tolist()}")


if __name__ == "__main__":
    main()
