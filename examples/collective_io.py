#!/usr/bin/env python
"""Two-phase collective I/O vs direct writes.

Column-block views writing into a row-block file are the canonical
collective-buffering motivation: every process touches every subfile
with tiny fragments.  This example runs the same collective write both
ways and prints the traffic and simulated completion times.

Run:  python examples/collective_io.py
"""

import numpy as np

from repro import matrix_partition
from repro.clusterfile import Clusterfile
from repro.clusterfile.collective import two_phase_write
from repro.redistribution import build_plan, distribute
from repro.simulation import ClusterConfig

N = 256
P = 4


def fresh(logical, phys):
    fs = Clusterfile(ClusterConfig())
    fs.create("m", matrix_partition(phys, N, N, P))
    for c in range(P):
        fs.set_view("m", c, matrix_partition(logical, N, N, P))
    return fs


def main():
    data = np.random.default_rng(8).integers(0, 256, N * N, dtype=np.uint8)
    logical, phys = "c", "r"
    pieces = distribute(data, matrix_partition(logical, N, N, P))
    accesses = [(c, 0, pieces[c]) for c in range(P)]

    plan = build_plan(
        matrix_partition(logical, N, N, P), matrix_partition(phys, N, N, P)
    )
    frags = sum(t.dst_fragments_per_period for t in plan.transfers)
    print(f"{N}x{N} matrix, {logical}-views -> {phys}-file: "
          f"{plan.message_count} element pairs, {frags} scatter fragments\n")

    fs = fresh(logical, phys)
    direct = fs.write("m", accesses, to_disk=True)
    t_direct = max(b.t_w_disk for b in direct.per_compute.values())
    assert np.array_equal(fs.linear_contents("m", data.size), data)
    print(f"direct write:     {direct.messages:3d} messages, "
          f"completion {t_direct:9.0f} us")

    fs = fresh(logical, phys)
    res = two_phase_write(fs, "m", accesses, to_disk=True)
    t_write = max(b.t_w_disk for b in res.write.per_compute.values())
    assert np.array_equal(fs.linear_contents("m", data.size), data)
    print(f"two-phase write:  {res.shuffle_messages:3d} shuffle messages "
          f"({res.shuffle_bytes} B, {res.shuffle_time_s * 1e6:.0f} us) + "
          f"{res.write.messages} file messages, completion "
          f"{t_write + res.shuffle_time_s * 1e6:9.0f} us")
    print(f"                  scatter fragments: {res.scatter_fragments} "
          f"(vs {frags} direct)")

    speedup = t_direct / (t_write + res.shuffle_time_s * 1e6)
    print(f"\ncollective buffering wins by {speedup:.0f}x here - the "
          f"shuffle runs at\nnetwork speed while the direct write drags "
          f"fragments through the disks.")


if __name__ == "__main__":
    main()
