#!/usr/bin/env python
"""Quickstart: the paper's core concepts in five minutes.

Walks the worked examples of the paper's figures 1-4 with the public
API: building (nested) FALLS, partitioning a file, mapping offsets with
MAP / MAP^{-1}, intersecting partitions, and redistributing data.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Falls,
    FallsSet,
    Partition,
    build_plan,
    collect,
    cut_falls,
    distribute,
    execute_plan,
    intersect_elements,
    intersect_falls,
    map_offset,
    project,
    unmap_offset,
)


def section(title):
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


# --------------------------------------------------------------------------
section("Figure 1: a FALLS is a family of equally spaced line segments")
f = Falls(3, 5, 6, 5)  # (l=3, r=5, stride=6, n=5)
print(f"FALLS {f} selects byte ranges:",
      [(s.start, s.stop) for s in f.leaf_segments()])
print(f"size = {f.size()} bytes in {f.leaf_segment_count()} segments")

# --------------------------------------------------------------------------
section("Figure 2: nested FALLS select inner structure inside each block")
nested = Falls(0, 3, 8, 2, (Falls(0, 0, 2, 2),))
print(f"nested FALLS {nested}")
print("selected bytes:", [s.start for s in nested.leaf_segments()])
print("size =", nested.size())  # the paper: 4

# --------------------------------------------------------------------------
section("Figure 3: a file partitioned into three subfiles")
# Displacement 2; subfiles strided (0,1,6,1), (2,3,6,1), (4,5,6,1).
p = Partition(
    [Falls(0, 1, 6, 1), Falls(2, 3, 6, 1), Falls(4, 5, 6, 1)],
    displacement=2,
)
print(f"pattern size = {p.size}, displacement = {p.displacement}")
print("file offset 10 maps on subfile 1 at offset", map_offset(p, 1, 10))
print("subfile 1 offset 2 maps back to file offset", unmap_offset(p, 1, 2))
print("offset 5 does not map on subfile 0; nearest maps:",
      "prev ->", map_offset(p, 0, 5, mode="prev"),
      "next ->", map_offset(p, 0, 5, mode="next"))

# --------------------------------------------------------------------------
section("CUT-FALLS: clipping a family to a window")
pieces = cut_falls(Falls(3, 5, 6, 5), 4, 28)
print("cut (3,5,6,5) to [4,28] ->", [str(x) for x in pieces], "(relative to 4)")

# --------------------------------------------------------------------------
section("Figure 4: INTERSECT-FALLS and nested intersection")
print("INTERSECT-FALLS((0,7,16,2),(0,3,8,4)) =",
      [str(x) for x in intersect_falls(Falls(0, 7, 16, 2), Falls(0, 3, 8, 4))])

view = Partition([
    FallsSet([Falls(0, 7, 16, 2, (Falls(0, 1, 4, 2),))]),
    FallsSet([Falls(0, 7, 16, 2, (Falls(2, 3, 4, 2),))]),
    FallsSet([Falls(8, 15, 16, 2)]),
])
phys = Partition([
    FallsSet([Falls(0, 3, 8, 4, (Falls(0, 0, 2, 2),))]),
    FallsSet([Falls(0, 3, 8, 4, (Falls(1, 1, 2, 2),))]),
    FallsSet([Falls(4, 7, 8, 4)]),
])
inter = intersect_elements(view, 0, phys, 0)
starts, lengths = inter.segments_in(0, 31)
print("V ∩ S selects file bytes:", starts.tolist())
print("PROJ_V(V∩S) =", str(project(inter, view, 0).falls))
print("PROJ_S(V∩S) =", str(project(inter, phys, 0).falls))

# --------------------------------------------------------------------------
section("Redistribution: move a file between two partitions")
data = np.arange(48, dtype=np.uint8)
src = Partition([Falls(0, 5, 12, 1), Falls(6, 11, 12, 1)])   # 6-byte stripes
dst = Partition([Falls(0, 3, 8, 1), Falls(4, 7, 8, 1)])      # 4-byte stripes
plan = build_plan(src, dst)
print(f"plan: {plan.message_count} transfers,",
      f"{plan.total_bytes(data.size)} bytes for a {data.size}-byte file")
buffers = distribute(data, src)
out = execute_plan(plan, buffers, data.size)
assert np.array_equal(collect(out, dst, data.size), data)
print("redistributed and verified byte-exactly:",
      [b.tolist() for b in out])

print("\nAll quickstart checks passed.")
