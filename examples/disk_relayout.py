#!/usr/bin/env python
"""On-the-fly physical re-layout (the paper's Panda-style use case, §3).

A file is created with a column-block physical layout but the
application accesses it through row-block views — the worst match.
The example measures the access cost, re-lays the file out on the fly
to row blocks using the redistribution algorithm between the I/O nodes,
and measures again: gathers disappear and messages drop 4x.

Run:  python examples/disk_relayout.py
"""

import numpy as np

from repro import matrix_partition, row_blocks
from repro.clusterfile import Clusterfile
from repro.clusterfile.relayout import relayout
from repro.core.matching import matching_degree
from repro.simulation import ClusterConfig

N = 256
P = 4


def measure_write(fs, data):
    logical = row_blocks(N, N, P)
    for c in range(P):
        fs.set_view("m", c, logical)
    per = N * N // P
    accesses = [(c, 0, data[c * per : (c + 1) * per]) for c in range(P)]
    fs.write("m", accesses, to_disk=True)  # warm up the device state
    res = fs.write("m", accesses, to_disk=True)  # steady-state measure
    t_g = float(np.mean([bd.t_g for bd in res.per_compute.values()]))
    t_w = max(bd.t_w_disk for bd in res.per_compute.values())
    return t_g, t_w, res.messages


def main():
    data = np.random.default_rng(5).integers(0, 256, N * N, dtype=np.uint8)

    fs = Clusterfile(ClusterConfig())
    fs.create("m", matrix_partition("c", N, N, P))

    deg = matching_degree(matrix_partition("c", N, N, P), row_blocks(N, N, P))
    print(f"initial layout: column blocks; matching degree vs the "
          f"row-block access pattern = {deg.degree():.3f}")
    t_g, t_w, msgs = measure_write(fs, data)
    print(f"  write: t_g = {t_g:7.1f} us   t_w_disk = {t_w:8.0f} us   "
          f"messages = {msgs}")

    print("\nre-laying the file out to row blocks on the fly...")
    res = relayout(fs, "m", matrix_partition("r", N, N, P))
    print(f"  moved {res.bytes_moved} bytes in {res.transfers} transfers "
          f"({res.cross_node_messages} crossed the network), simulated "
          f"makespan {res.makespan_s * 1e3:.1f} ms")
    assert np.array_equal(fs.linear_contents("m", data.size), data)

    deg = matching_degree(matrix_partition("r", N, N, P), row_blocks(N, N, P))
    print(f"\nnew layout: row blocks; matching degree = {deg.degree():.3f}")
    t_g, t_w, msgs = measure_write(fs, data)
    print(f"  write: t_g = {t_g:7.1f} us   t_w_disk = {t_w:8.0f} us   "
          f"messages = {msgs}")

    print("\nThe re-layout pays once what every access was paying before -"
          "\nexactly the trade the paper describes for Panda-style disk"
          "\nredistribution (§3).")


if __name__ == "__main__":
    main()
