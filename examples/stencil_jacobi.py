#!/usr/bin/env python
"""A distributed Jacobi iteration using halo-exchange schedules.

Solves the steady-state heat equation on an N x N grid distributed over
a 2x2 process grid.  Every piece of distributed-memory machinery — who
owns what, which ghost bytes travel where, how the converged field is
checkpointed — comes from the FALLS toolkit:

* ownership and halo regions are nested FALLS (subarray types),
* the exchange schedule is FALLS intersections (built once, reused
  every iteration — the paper's amortisation story in its natural
  habitat),
* the result is checkpointed with layout metadata and re-read with a
  different decomposition.

The distributed solution is verified against a single-process NumPy
reference, iteration for iteration.

Run:  python examples/stencil_jacobi.py
"""

import numpy as np

from repro import matrix_partition
from repro.apps import CheckpointStore, HaloExchange
from repro.redistribution import collect, distribute

N = 32            # grid side (float64 cells)
GRID = (2, 2)     # process grid
ITERS = 50


def reference_solution(field, iters):
    f = field.copy()
    for _ in range(iters):
        nxt = f.copy()
        nxt[1:-1, 1:-1] = 0.25 * (
            f[:-2, 1:-1] + f[2:, 1:-1] + f[1:-1, :-2] + f[1:-1, 2:]
        )
        f = nxt
    return f


def main():
    # Initial condition: hot left edge, cold elsewhere.
    field = np.zeros((N, N))
    field[:, 0] = 100.0

    itemsize = 8
    ex = HaloExchange.block_2d(N, N, GRID, halo=1, itemsize=itemsize)
    nprocs = GRID[0] * GRID[1]
    br, bc = N // GRID[0], N // GRID[1]

    raw = np.frombuffer(field.tobytes(), dtype=np.uint8)
    buffers = [ex.scatter_owned(p, raw) for p in range(nprocs)]
    print(f"{N}x{N} grid over a {GRID[0]}x{GRID[1]} process grid; "
          f"{len(ex.messages)} halo messages per iteration")

    def local_geometry(p):
        r, c = divmod(p, GRID[1])
        g_r0, g_r1 = max(0, r * br - 1), min(N, (r + 1) * br + 1)
        g_c0, g_c1 = max(0, c * bc - 1), min(N, (c + 1) * bc + 1)
        return r, c, g_r0, g_r1, g_c0, g_c1

    for it in range(ITERS):
        ex.exchange(buffers)  # refresh ghosts (schedule reused)
        new_buffers = []
        for p in range(nprocs):
            r, c, g_r0, g_r1, g_c0, g_c1 = local_geometry(p)
            local = buffers[p].view(np.float64).reshape(
                g_r1 - g_r0, g_c1 - g_c0
            )
            nxt = local.copy()
            # Jacobi update on interior points of the *global* grid that
            # this rank owns.
            for i in range(local.shape[0]):
                gi = g_r0 + i
                if not (r * br <= gi < (r + 1) * br) or gi in (0, N - 1):
                    continue
                for j in range(local.shape[1]):
                    gj = g_c0 + j
                    if not (c * bc <= gj < (c + 1) * bc) or gj in (0, N - 1):
                        continue
                    nxt[i, j] = 0.25 * (
                        local[i - 1, j] + local[i + 1, j]
                        + local[i, j - 1] + local[i, j + 1]
                    )
            new_buffers.append(
                np.frombuffer(nxt.tobytes(), dtype=np.uint8).copy()
            )
        buffers = new_buffers

    # Assemble the distributed result: each rank contributes its OWNED
    # cells (drop ghosts) through the ownership FALLS.
    from repro.core.segments import leaf_segment_arrays_set, merge_segment_arrays
    from repro.redistribution.gather_scatter import gather_segments, scatter_segments

    result_raw = np.zeros(N * N * itemsize, dtype=np.uint8)
    for p in range(nprocs):
        segs = merge_segment_arrays(
            leaf_segment_arrays_set(ex.owned[p].falls)
        )
        packed = gather_segments(buffers[p], ex.index[p].localize(segs))
        scatter_segments(result_raw, segs, packed)
    result = result_raw.view(np.float64).reshape(N, N)

    want = reference_solution(field, ITERS)
    err = np.max(np.abs(result - want))
    print(f"max |distributed - reference| after {ITERS} iterations: {err:.2e}")
    assert err == 0.0, "distributed Jacobi diverged from the reference"

    # Checkpoint the converged field; restart decomposed differently.
    store = CheckpointStore()
    writer = matrix_partition("b", N, N * itemsize, 4)
    store.save("heat", distribute(result_raw, writer), writer,
               (N, N), np.float64)
    reader = matrix_partition("r", N, N * itemsize, 2)
    pieces = store.load("heat", reader)
    merged = collect(pieces, reader, result_raw.size)
    assert np.array_equal(
        merged.view(np.float64).reshape(N, N), result
    )
    print("checkpointed on 4 ranks (blocks), restarted on 2 (rows): verified")
    print("\nDistributed Jacobi verified bit-exactly against NumPy.")


if __name__ == "__main__":
    main()
