#!/usr/bin/env python
"""Checkpoint / restart with resharding — the classic downstream use.

A "simulation" running on 4 processes with a square-block decomposition
checkpoints its state; the job restarts on 2 processes with a row-block
decomposition, and later the field is transposed out of core.  Every
step rides on the paper's mapping functions and redistribution
algorithm; every step is verified byte-exactly.

Run:  python examples/checkpoint_resharding.py
"""

import numpy as np

from repro import matrix_partition, row_blocks
from repro.apps import CheckpointStore, reshard, transpose_out_of_core
from repro.core.matching import matching_degree
from repro.redistribution import collect, distribute

N = 64  # field is N x N float64


def main():
    rng = np.random.default_rng(12)
    field = rng.normal(size=(N, N))
    raw = field.tobytes()
    nbytes = len(raw)

    # --- run phase: 4 ranks, square blocks --------------------------------
    writer = matrix_partition("b", N, N * 8, 4)  # 8 = float64 itemsize
    pieces = distribute(raw, writer)
    print(f"running on 4 ranks, square blocks: "
          f"{[p.size for p in pieces]} bytes per rank")

    store = CheckpointStore()
    store.save("step-1000", pieces, writer, (N, N), np.float64)
    print("checkpoint saved through matched views "
          "(physical layout == writers' decomposition)")

    # --- restart phase: 2 ranks, row blocks --------------------------------
    reader = matrix_partition("r", N, N * 8, 2)
    deg = matching_degree(writer, reader)
    print(f"\nrestarting on 2 ranks, row blocks "
          f"(matching degree vs checkpoint layout: {deg.degree():.3f})")
    new_pieces = store.load("step-1000", reader)
    print(f"restart pieces: {[p.size for p in new_pieces]} bytes per rank")

    restored = collect(new_pieces, reader, nbytes)
    assert np.array_equal(
        np.frombuffer(restored, dtype=np.float64).reshape(N, N), field
    )
    print("restart state verified bit-exactly against the original field")

    # --- a pure in-memory reshard (no file system at all) ------------------
    back = reshard(new_pieces, reader, writer, nbytes)
    for a, b in zip(back, pieces):
        assert np.array_equal(a, b)
    print("\nmemory-memory reshard back to 4 ranks: bit-exact")

    # --- and an out-of-core transpose on the checkpoint file ---------------
    fs = store.fs
    transpose_out_of_core(fs, "step-1000", "step-1000.T", N, N, itemsize=8)
    t = np.frombuffer(
        fs.linear_contents("step-1000.T", nbytes).tobytes(), dtype=np.float64
    ).reshape(N, N)
    assert np.array_equal(t, field.T)
    print("out-of-core transpose of the checkpoint: verified against "
          "numpy's field.T")

    print("\nAll resharding scenarios verified.")


if __name__ == "__main__":
    main()
