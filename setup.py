from setuptools import setup

# Kept for environments whose pip predates PEP 660 editable installs;
# `pip install -e .` uses pyproject.toml directly.
setup()
