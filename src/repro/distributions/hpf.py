"""HPF-style one-dimensional distributions as FALLS (paper §3).

The paper motivates nested FALLS by noting that "support for any
High-Performance Fortran-style BLOCK and CYCLIC based data distribution
on disk and in memory is a straightforward application of our approach".
This module provides that application for one dimension; the
:mod:`repro.distributions.multidim` module composes per-dimension
distributions into nested FALLS for n-dimensional arrays.

All functions describe the index set (in *element* units) that processor
``p`` of ``nprocs`` owns out of ``n`` elements, returned as a list of
FALLS (one FALLS except for ragged edge cases).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Union

from ..core.falls import Falls

__all__ = ["Block", "Cyclic", "BlockCyclic", "Replicated", "Dist", "falls_1d"]


@dataclass(frozen=True)
class Block:
    """HPF ``BLOCK``: contiguous chunks of ``ceil(n / nprocs)`` elements.

    Trailing processors may own fewer (or zero) elements when ``n`` is
    not divisible.
    """


@dataclass(frozen=True)
class Cyclic:
    """HPF ``CYCLIC``: element ``i`` belongs to processor ``i mod nprocs``."""


@dataclass(frozen=True)
class BlockCyclic:
    """HPF ``CYCLIC(k)``: blocks of ``k`` elements dealt round-robin."""

    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"CYCLIC(k) needs k >= 1, got {self.k}")


@dataclass(frozen=True)
class Replicated:
    """HPF ``*``: the dimension is not distributed — every processor in
    this dimension of the grid sees all ``n`` elements."""


Dist = Union[Block, Cyclic, BlockCyclic, Replicated]


def falls_1d(dist: Dist, n: int, nprocs: int, p: int) -> List[Falls]:
    """Index set of processor ``p`` along one dimension of length ``n``.

    Returns a list of FALLS in element units (block length 1 unit = 1
    element).  The list is empty when the processor owns nothing — e.g. a
    BLOCK distribution of 3 elements over 4 processors leaves processor 3
    empty.
    """
    if n < 1:
        raise ValueError(f"dimension length must be >= 1, got {n}")
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    if not 0 <= p < nprocs:
        raise ValueError(f"processor index {p} out of range [0, {nprocs})")

    if isinstance(dist, Replicated):
        return [Falls(0, n - 1, n, 1)]

    if isinstance(dist, Block):
        chunk = math.ceil(n / nprocs)
        lo = p * chunk
        hi = min(n, (p + 1) * chunk) - 1
        if lo > hi:
            return []
        return [Falls(lo, hi, hi - lo + 1, 1)]

    if isinstance(dist, Cyclic):
        dist = BlockCyclic(1)

    if isinstance(dist, BlockCyclic):
        k = dist.k
        stride = k * nprocs
        first = p * k
        if first >= n:
            return []
        # Number of complete k-blocks plus a possibly ragged last block.
        full_blocks = (n - first) // stride
        rem = (n - first) % stride
        out: List[Falls] = []
        if full_blocks:
            out.append(Falls(first, first + k - 1, stride, full_blocks))
        if 0 < rem:
            tail_lo = first + full_blocks * stride
            tail_hi = min(tail_lo + k, n) - 1
            if tail_lo <= tail_hi:
                out.append(
                    Falls(tail_lo, tail_hi, tail_hi - tail_lo + 1, 1)
                )
        return out

    raise TypeError(f"unknown distribution {dist!r}")


def owned_count(dist: Dist, n: int, nprocs: int, p: int) -> int:
    """Number of elements processor ``p`` owns along the dimension."""
    return sum(f.size() for f in falls_1d(dist, n, nprocs, p))


def validate_partition_cover(dist: Dist, n: int, nprocs: int) -> None:
    """Check the distribution assigns every element exactly once
    (Replicated is excluded — it is not a partition)."""
    if isinstance(dist, Replicated):
        raise ValueError("Replicated dimensions do not partition the data")
    seen = [0] * n
    for p in range(nprocs):
        for f in falls_1d(dist, n, nprocs, p):
            for seg in f.leaf_segments():
                for i in range(seg.start, seg.stop + 1):
                    seen[i] += 1
    if any(c != 1 for c in seen):  # pragma: no cover - sanity guard
        raise AssertionError(f"distribution does not tile: {seen}")
