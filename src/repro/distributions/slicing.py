"""NumPy-style slices as nested FALLS.

The most natural way for a Python user to describe a region of an array
is a slice expression.  ``slice_falls(shape, itemsize, index)`` turns a
basic (non-fancy) index — integers and slices with positive steps — into
the nested FALLS selecting exactly those bytes of the C-ordered array,
so views and redistribution schedules can be built straight from
``arr[2:10:3, :, 4]``-style expressions:

>>> from repro.distributions.slicing import slice_falls
>>> fs = slice_falls((8, 8), 1, (slice(0, 4), slice(2, 6)))
>>> fs.size()          # a 4x4 block
16

This is the inverse convenience of the HPF generators: those carve an
array among processors, this one describes any rectangular/strided
window of it.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from ..core.falls import Falls, FallsSet
from .multidim import compose_dims

__all__ = ["slice_falls", "normalize_index"]

Index = Union[int, slice]


def normalize_index(
    index: Union[Index, Tuple[Index, ...]], shape: Sequence[int]
) -> Tuple[Tuple[int, int, int], ...]:
    """Resolve an index expression to per-dimension ``(start, stop, step)``.

    Integers select one element; missing trailing dimensions select
    everything (NumPy semantics).  Steps must be positive; out-of-range
    starts/stops clamp like NumPy's ``slice.indices``.
    """
    if not isinstance(index, tuple):
        index = (index,)
    if len(index) > len(shape):
        raise IndexError(
            f"too many indices: {len(index)} for shape {tuple(shape)}"
        )
    out = []
    for d, extent in enumerate(shape):
        if d >= len(index):
            out.append((0, extent, 1))
            continue
        ix = index[d]
        if isinstance(ix, int):
            if ix < 0:
                ix += extent
            if not 0 <= ix < extent:
                raise IndexError(
                    f"index {index[d]} out of bounds for axis {d} with "
                    f"size {extent}"
                )
            out.append((ix, ix + 1, 1))
        elif isinstance(ix, slice):
            start, stop, step = ix.indices(extent)
            if step < 1:
                raise ValueError("negative or zero slice steps are not supported")
            if stop <= start:
                raise ValueError(f"empty slice in axis {d}: {ix}")
            out.append((start, stop, step))
        else:
            raise TypeError(f"unsupported index element {ix!r}")
    return tuple(out)


def slice_falls(
    shape: Sequence[int],
    itemsize: int,
    index: Union[Index, Tuple[Index, ...]],
) -> FallsSet:
    """The nested FALLS selecting ``array[index]`` of a C-ordered array.

    Equivalent byte set to
    ``np.ravel_multi_index`` over the selected coordinates, but expressed
    structurally: one FALLS per dimension level, composed exactly like
    the HPF generators.
    """
    resolved = normalize_index(index, shape)
    # Each dimension contributes one FALLS in element units: contiguous
    # runs (step 1) become a single block, strided runs a unit-block
    # family — exactly the shapes compose_dims nests.
    per_dim = []
    for start, stop, step in resolved:
        if step == 1:
            per_dim.append([Falls(start, stop - 1, stop - start, 1)])
        else:
            count = (stop - start + step - 1) // step
            per_dim.append([Falls(start, start, step, count)])
    return FallsSet(compose_dims(per_dim, shape, itemsize))
