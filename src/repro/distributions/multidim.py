"""Multidimensional array distributions as nested FALLS.

The key construction (also at the heart of the PITFALLS work the paper
builds on): distribute each dimension independently with an HPF-style
1-D distribution over one axis of a processor grid, then compose the
per-dimension FALLS into nested FALLS by scaling each dimension's
element units to byte units.

For a C-ordered array of ``shape`` with ``itemsize`` bytes per element,
one index step along dimension ``d`` moves
``W_d = itemsize * prod(shape[d+1:])`` bytes.  A FALLS ``(a, b, s, n)``
in dim-``d`` element units therefore becomes the byte-space FALLS
``(a*W_d, (b+1)*W_d - 1, s*W_d, n)``, whose inner FALLS are the scaled
FALLS of dimension ``d+1`` (relative to the block start — exactly the
nested-FALLS convention).

This module generates the three physical layouts of the paper's
evaluation — row blocks, column blocks, square blocks of a 2-D matrix —
and arbitrary n-D BLOCK/CYCLIC(k) grids.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..core.falls import Falls, FallsSet
from ..core.partition import Partition
from .hpf import Block, Dist, Replicated, falls_1d

__all__ = [
    "scale_falls",
    "compose_dims",
    "multidim_element",
    "multidim_partition",
    "row_blocks",
    "column_blocks",
    "square_blocks",
    "matrix_partition",
]


def scale_falls(f: Falls, weight: int, inner: Tuple[Falls, ...]) -> Falls:
    """Scale a FALLS from element units to byte units.

    A run of ``blen`` consecutive elements becomes ``blen * weight``
    consecutive bytes; strides scale likewise.  ``inner`` is the
    (already byte-space) structure of one element, attached to each
    block when it selects less than the whole ``weight`` bytes.
    """
    blen = f.block_length
    scaled = Falls(f.l * weight, (f.r + 1) * weight - 1, f.s * weight, f.n)
    if not inner:
        return scaled
    if len(inner) == 1 and inner[0].is_contiguous and inner[0].l == 0 and (
        inner[0].extent_stop == weight - 1
    ):
        # Inner selects every byte of every element: collapse to a leaf.
        return scaled
    # Replicate the element structure across the blen elements of a block.
    if blen == 1:
        return scaled.with_inner(inner)
    wrapped = Falls(0, weight - 1, weight, blen, inner)
    return scaled.with_inner((wrapped,))


def compose_dims(
    per_dim_falls: Sequence[Sequence[Falls]],
    shape: Sequence[int],
    itemsize: int,
) -> List[Falls]:
    """Compose per-dimension FALLS lists (innermost last) into byte-space
    nested FALLS for a C-ordered array."""
    if len(per_dim_falls) != len(shape):
        raise ValueError("need one FALLS list per dimension")
    weights = []
    w = itemsize
    for extent in reversed(shape):
        weights.append(w)
        w *= extent
    weights.reverse()  # weights[d] = bytes per step along dim d

    # Innermost dimension first: build the per-element structure bottom-up.
    inner: Tuple[Falls, ...] = ()
    for d in reversed(range(len(shape))):
        falls_d = per_dim_falls[d]
        if not falls_d:
            return []
        scaled = tuple(scale_falls(f, weights[d], inner) for f in falls_d)
        inner = scaled
    return list(inner)


def multidim_element(
    shape: Sequence[int],
    itemsize: int,
    dists: Sequence[Dist],
    grid: Sequence[int],
    coords: Sequence[int],
    order: str = "C",
) -> FallsSet:
    """Nested FALLS for one processor of a distributed n-D array.

    Parameters
    ----------
    shape:
        Array shape in elements.
    itemsize:
        Bytes per array element.
    dists:
        One HPF-style distribution per dimension.
    grid:
        Processor-grid extent per dimension (product = processor count;
        dimensions with ``Replicated`` distribution should use extent 1).
    coords:
        This processor's coordinates in the grid.
    order:
        Memory layout: ``"C"`` (row-major, default) or ``"F"``
        (column-major, HPF's native ordering).  Fortran order is C order
        with the dimensions reversed.
    """
    if not (len(shape) == len(dists) == len(grid) == len(coords)):
        raise ValueError("shape, dists, grid and coords must align")
    if order not in ("C", "F"):
        raise ValueError(f"order must be 'C' or 'F', got {order!r}")
    idx = range(len(shape)) if order == "C" else reversed(range(len(shape)))
    dims = list(idx)
    per_dim = [
        falls_1d(dists[d], shape[d], grid[d], coords[d]) for d in dims
    ]
    return FallsSet(
        compose_dims(per_dim, [shape[d] for d in dims], itemsize)
    )


def multidim_partition(
    shape: Sequence[int],
    itemsize: int,
    dists: Sequence[Dist],
    grid: Sequence[int],
    displacement: int = 0,
    order: str = "C",
) -> Partition:
    """Partition of an n-D array over a full processor grid.

    Elements are ordered by row-major grid coordinates.  The pattern size
    equals the array's byte size, so a file holding exactly one array is
    partitioned once; a file holding ``k`` arrays back to back is
    partitioned ``k`` times (the pattern tiles).
    """
    for d, dist in enumerate(dists):
        if isinstance(dist, Replicated) and grid[d] != 1:
            raise ValueError(
                "Replicated dimensions would overlap; use grid extent 1"
            )
    elements: List[FallsSet] = []
    coords = [0] * len(grid)
    total = math.prod(grid)
    for rank in range(total):
        rem = rank
        for d in reversed(range(len(grid))):
            coords[d] = rem % grid[d]
            rem //= grid[d]
        element = multidim_element(shape, itemsize, dists, grid, coords, order)
        if element.is_empty:
            raise ValueError(
                f"grid cell {tuple(coords)} owns no data; shrink the grid"
            )
        elements.append(element)
    return Partition(elements, displacement=displacement)


# ---------------------------------------------------------------------------
# The paper's three 2-D matrix layouts (evaluation §8.2).
# ---------------------------------------------------------------------------


def row_blocks(
    rows: int, cols: int, nprocs: int, itemsize: int = 1, displacement: int = 0
) -> Partition:
    """Blocks of rows ('r' in the paper's tables)."""
    return multidim_partition(
        (rows, cols), itemsize, (Block(), Replicated()), (nprocs, 1), displacement
    )


def column_blocks(
    rows: int, cols: int, nprocs: int, itemsize: int = 1, displacement: int = 0
) -> Partition:
    """Blocks of columns ('c' in the paper's tables)."""
    return multidim_partition(
        (rows, cols), itemsize, (Replicated(), Block()), (1, nprocs), displacement
    )


def square_blocks(
    rows: int,
    cols: int,
    nprocs: int,
    itemsize: int = 1,
    displacement: int = 0,
) -> Partition:
    """Square blocks ('b' in the paper's tables) over a near-square grid."""
    pr = int(math.isqrt(nprocs))
    while nprocs % pr:
        pr -= 1
    pc = nprocs // pr
    return multidim_partition(
        (rows, cols), itemsize, (Block(), Block()), (pr, pc), displacement
    )


_LAYOUTS = {"r": row_blocks, "c": column_blocks, "b": square_blocks}


def matrix_partition(
    layout: str,
    rows: int,
    cols: int,
    nprocs: int,
    itemsize: int = 1,
    displacement: int = 0,
) -> Partition:
    """Paper-style shorthand: layout 'r', 'c' or 'b'."""
    try:
        fn = _LAYOUTS[layout]
    except KeyError:
        raise ValueError(f"layout must be one of {sorted(_LAYOUTS)}, got {layout!r}")
    return fn(rows, cols, nprocs, itemsize, displacement)
