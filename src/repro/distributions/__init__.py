"""Distribution generators: HPF-style, multidimensional, MPI types, baselines."""

from .hpf import Block, BlockCyclic, Cyclic, Dist, Replicated, falls_1d
from .multidim import (
    column_blocks,
    matrix_partition,
    multidim_element,
    multidim_partition,
    row_blocks,
    square_blocks,
)
from .irregular import (
    partition_from_owner_array,
    partition_from_segments,
    round_robin,
)
from .slicing import normalize_index, slice_falls
from .vesta import VestaScheme, vesta_expressible, vesta_partition

__all__ = [
    "Block",
    "BlockCyclic",
    "Cyclic",
    "Dist",
    "Replicated",
    "column_blocks",
    "falls_1d",
    "matrix_partition",
    "multidim_element",
    "multidim_partition",
    "partition_from_owner_array",
    "partition_from_segments",
    "normalize_index",
    "round_robin",
    "row_blocks",
    "slice_falls",
    "square_blocks",
    "vesta_expressible",
    "vesta_partition",
    "VestaScheme",
]
