"""nCube-style address-bit-permutation mappings (related-work baseline).

The nCube parallel I/O system (DeBenedictis & del Rosario, 1992) maps
between processor views and disks by permuting address bits: a file
address is split into bit fields (disk id, offset-within-stripe, ...),
and a mapping is a permutation of those bits.  The paper points out the
major deficiency — "all array sizes must be powers of two" — and claims
its own FALLS-based mapping functions are a strict superset.

This module implements the bit-permutation scheme so the claim can be
demonstrated and benchmarked: for power-of-two sizes the nCube mapping
and the FALLS mapping produce identical byte placements; for any other
size the nCube scheme is simply inexpressible (:class:`NCubeError`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.falls import Falls
from ..core.partition import Partition

__all__ = ["NCubeError", "BitPermutation", "striped_bit_partition"]


class NCubeError(ValueError):
    """Raised when a size is not a power of two (nCube's restriction)."""


def _check_pow2(value: int, what: str) -> int:
    if value < 1 or value & (value - 1):
        raise NCubeError(f"{what} must be a power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class BitPermutation:
    """A permutation of the low ``len(perm)`` address bits.

    ``perm[i] = j`` moves source bit ``i`` to destination bit ``j``.
    Addresses must fit in ``len(perm)`` bits.
    """

    perm: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "perm", tuple(self.perm))
        if sorted(self.perm) != list(range(len(self.perm))):
            raise NCubeError(f"not a permutation of bit positions: {self.perm}")

    @property
    def nbits(self) -> int:
        return len(self.perm)

    def apply(self, addr: int) -> int:
        """Permute one address's bits."""
        if addr >> self.nbits:
            raise NCubeError(
                f"address {addr} does not fit in {self.nbits} bits"
            )
        out = 0
        for i, j in enumerate(self.perm):
            out |= ((addr >> i) & 1) << j
        return out

    def apply_many(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`apply` over an int64 address array."""
        addrs = np.asarray(addrs, dtype=np.int64)
        if np.any(addrs >> self.nbits):
            raise NCubeError(f"addresses exceed {self.nbits} bits")
        out = np.zeros_like(addrs)
        for i, j in enumerate(self.perm):
            out |= ((addrs >> i) & 1) << j
        return out

    def inverse(self) -> "BitPermutation":
        """The permutation undoing this one."""
        inv = [0] * self.nbits
        for i, j in enumerate(self.perm):
            inv[j] = i
        return BitPermutation(tuple(inv))

    def compose(self, other: "BitPermutation") -> "BitPermutation":
        """The permutation applying ``self`` then ``other``."""
        if other.nbits != self.nbits:
            raise NCubeError("cannot compose permutations of different widths")
        return BitPermutation(tuple(other.perm[j] for j in self.perm))


def striped_bit_partition(
    file_bytes: int, ndisks: int, stripe_unit: int
) -> Partition:
    """The canonical nCube layout as a partition.

    The file address is viewed as ``[block | disk | offset]`` bit fields:
    the low ``log2(stripe_unit)`` bits select a byte within a stripe
    unit, the next ``log2(ndisks)`` bits select the disk.  Every quantity
    must be a power of two — this is exactly nCube's restriction, and the
    resulting partition is expressible as plain FALLS, demonstrating the
    paper's superset claim.
    """
    _check_pow2(file_bytes, "file size")
    _check_pow2(ndisks, "disk count")
    _check_pow2(stripe_unit, "stripe unit")
    if stripe_unit * ndisks > file_bytes:
        raise NCubeError(
            f"one stripe ({stripe_unit}x{ndisks}) exceeds the file size"
        )
    elements: List[Falls] = []
    period = stripe_unit * ndisks
    for d in range(ndisks):
        lo = d * stripe_unit
        elements.append(Falls(lo, lo + stripe_unit - 1, period, 1))
    return Partition(elements)


def disk_of_address(addr: int, ndisks: int, stripe_unit: int) -> int:
    """Disk owning a file address under the canonical bit layout —
    a pure bit-field extraction, the heart of the nCube scheme."""
    offset_bits = _check_pow2(stripe_unit, "stripe unit")
    disk_bits = _check_pow2(ndisks, "disk count")
    return (addr >> offset_bits) & ((1 << disk_bits) - 1)
