"""Vesta-style two-dimensional file partitioning (related-work baseline).

The Vesta Parallel File System (Corbett & Feitelson, TOCS 1996)
physically partitions files into subfiles and logically into views, but
— as the paper notes in §2 — "the partitioning scheme, and therefore
the mappings, are restricted only to data sets that can be partitioned
into two dimensional rectangular arrays".

Vesta describes a file as a matrix of *basic striping units* (BSUs): a
file has ``Hbs`` cells horizontally; a partition chooses a group shape
``(Vn, Vbs, Hn, Hbs_group)`` carving that matrix into congruent
rectangles, one per subfile/view.  This module implements the scheme
faithfully on top of the FALLS machinery, which demonstrates the
paper's superset claim from the constructive side: every Vesta
partition is a two-level nested FALLS pattern, while plenty of FALLS
patterns (anything non-rectangular, any dimension above two) have no
Vesta description — :func:`vesta_expressible` makes the restriction
checkable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..core.falls import Falls, FallsSet
from ..core.partition import Partition

__all__ = ["VestaScheme", "vesta_partition", "vesta_expressible"]


@dataclass(frozen=True)
class VestaScheme:
    """A Vesta physical partitioning.

    Attributes
    ----------
    bsu:
        Basic striping unit, bytes (Vesta's record granularity).
    hbs:
        Number of BSUs per row of the logical cell matrix (the file's
        declared width).
    vn, hn:
        Grid of sub-partitions: ``vn`` vertical groups of rows, ``hn``
        horizontal groups of columns; the partition has ``vn * hn``
        elements.
    vbs, group_hbs:
        Rows per vertical group and BSU-columns per horizontal group.
    """

    bsu: int
    hbs: int
    vn: int
    vbs: int
    hn: int
    group_hbs: int

    def __post_init__(self) -> None:
        for field_name in ("bsu", "hbs", "vn", "vbs", "hn", "group_hbs"):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")
        if self.hn * self.group_hbs != self.hbs:
            raise ValueError(
                f"horizontal groups ({self.hn} x {self.group_hbs}) must "
                f"tile the declared width Hbs={self.hbs}"
            )

    @property
    def num_elements(self) -> int:
        return self.vn * self.hn

    @property
    def pattern_rows(self) -> int:
        return self.vn * self.vbs

    @property
    def pattern_bytes(self) -> int:
        return self.pattern_rows * self.hbs * self.bsu


def vesta_partition(scheme: VestaScheme, displacement: int = 0) -> Partition:
    """The partition a Vesta scheme induces, element order row-major in
    the (vertical group, horizontal group) grid."""
    row_bytes = scheme.hbs * scheme.bsu
    elements: List[FallsSet] = []
    for v in range(scheme.vn):
        for h in range(scheme.hn):
            row_lo = v * scheme.vbs
            col_lo = h * scheme.group_hbs * scheme.bsu
            width = scheme.group_hbs * scheme.bsu
            f = Falls(
                row_lo * row_bytes + col_lo,
                row_lo * row_bytes + col_lo + width - 1,
                row_bytes,
                scheme.vbs,
            )
            elements.append(FallsSet([f]))
    return Partition(elements, displacement=displacement)


def vesta_expressible(partition: Partition) -> VestaScheme | None:
    """Try to express a partition as a Vesta scheme.

    Returns the scheme when every element is one congruent rectangle of
    a common cell matrix, ``None`` otherwise — the checkable form of the
    paper's claim that Vesta's model is a strict subset of FALLS
    patterns.
    """
    shapes = set()
    firsts = []
    for e in partition.elements:
        if len(e) != 1:
            return None
        f = e[0]
        if f.inner:
            return None
        shapes.add((f.block_length, f.s, f.n))
        firsts.append(f.l)
    if len(shapes) != 1:
        return None
    blen, stride, n = shapes.pop()
    num = partition.num_elements

    # Candidate horizontal group counts.  With multiple rows per group
    # the stride *is* the cell-matrix row length; single-block groups
    # lose the stride (canonicalised), so every divisor is a candidate.
    if n > 1:
        if stride % blen:
            return None
        candidates = [stride // blen]
    else:
        candidates = [h for h in range(1, num + 1) if num % h == 0]

    for hn in candidates:
        vn = num // hn
        if vn * hn != num:
            continue
        row_bytes = blen * hn
        if partition.size != row_bytes * vn * n:
            continue
        expected = sorted(
            v * n * row_bytes + h * blen
            for v in range(vn)
            for h in range(hn)
        )
        if sorted(firsts) != expected:
            continue
        bsu = math.gcd(blen, row_bytes)
        return VestaScheme(
            bsu=bsu,
            hbs=row_bytes // bsu,
            vn=vn,
            vbs=n,
            hn=hn,
            group_hbs=blen // bsu,
        )
    return None
