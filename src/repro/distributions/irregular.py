"""Arbitrary (irregular) distributions (paper §3, §5).

The paper stresses that nested FALLS "can represent arbitrary
distributions of data", not only the regular array decompositions.  This
module builds partitions from explicit descriptions:

* :func:`partition_from_segments` — per-element lists of byte ranges;
* :func:`partition_from_owner_array` — a per-byte owner map (the most
  general description possible, e.g. from a graph partitioner);
* :func:`round_robin` — simple striping, the degenerate regular case,
  provided for symmetry and tests.

All of them run the explicit description through segment-run compression
(:mod:`repro.core.normalize`), so regular structure hidden in an
irregular description is recovered automatically.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..core.falls import Falls, FallsSet
from ..core.normalize import coalesced_falls_set
from ..core.partition import Partition
from ..core.segments import segments_from_pairs

__all__ = [
    "partition_from_segments",
    "partition_from_owner_array",
    "round_robin",
]


def partition_from_segments(
    per_element: Sequence[Sequence[Tuple[int, int]]],
    displacement: int = 0,
) -> Partition:
    """Build a partition from per-element ``(start, stop)`` byte ranges.

    Ranges are inclusive, must be sorted and disjoint within an element,
    and across elements must exactly tile ``[0, size)`` — the usual
    partitioning-pattern contract, which construction validates.
    """
    elements = []
    for ranges in per_element:
        segs = segments_from_pairs(list(ranges))
        elements.append(coalesced_falls_set(segs))
    return Partition(elements, displacement=displacement)


def partition_from_owner_array(
    owners: np.ndarray, num_elements: int | None = None, displacement: int = 0
) -> Partition:
    """Build a partition from a per-byte owner map.

    ``owners[i]`` is the element owning pattern byte ``i``.  This is the
    fully general case: any partition of the pattern bytes whatsoever.
    Run compression recovers FALLS structure where it exists.
    """
    owners = np.asarray(owners)
    if owners.ndim != 1 or owners.size == 0:
        raise ValueError("owner map must be a non-empty 1-D array")
    if num_elements is None:
        num_elements = int(owners.max()) + 1
    if owners.min() < 0 or owners.max() >= num_elements:
        raise ValueError("owner ids out of range")
    elements = []
    for e in range(num_elements):
        mask = owners == e
        if not mask.any():
            raise ValueError(f"element {e} owns no bytes")
        idx = np.flatnonzero(mask).astype(np.int64)
        breaks = np.flatnonzero(np.diff(idx) > 1)
        starts = idx[np.concatenate(([0], breaks + 1))]
        stops = idx[np.concatenate((breaks, [idx.size - 1]))]
        segs = (starts, stops - starts + 1)
        elements.append(coalesced_falls_set(segs))
    return Partition(elements, displacement=displacement)


def round_robin(
    num_elements: int, unit: int, displacement: int = 0
) -> Partition:
    """Classic round-robin striping: element ``k`` owns the ``k``-th
    ``unit``-byte chunk of every stripe."""
    if num_elements < 1 or unit < 1:
        raise ValueError("need num_elements >= 1 and unit >= 1")
    period = num_elements * unit
    elements = [
        FallsSet([Falls(k * unit, (k + 1) * unit - 1, period, 1)])
        for k in range(num_elements)
    ]
    return Partition(elements, displacement=displacement)
