"""MPI derived datatypes expressed as nested FALLS (paper §3, §4).

The paper claims "MPI data types can be built on top of" nested FALLS;
this module substantiates the claim with the classic MPI type
constructors.  Each constructor returns a :class:`TypeMap` — a byte
extent plus the nested FALLS selecting the type's significant bytes —
that composes the same way MPI derived types do (a constructed type can
be the base type of another constructor).

Together with :func:`repro.redistribution.gather_scatter.gather` /
``scatter`` these give MPI_Pack / MPI_Unpack semantics, which the paper
also points out (§3: "The scatter and gather procedures can also be used
to implement MPI's pack and unpack operations").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..core.falls import Falls, FallsSet
from ..core.normalize import coalesced_falls_set, pad_to_height
from ..core.segments import leaf_segment_arrays_set

__all__ = [
    "TypeMap",
    "contiguous",
    "vector",
    "indexed",
    "subarray",
    "struct_like",
]


@dataclass(frozen=True)
class TypeMap:
    """An MPI-style datatype: significant bytes within a byte extent.

    Attributes
    ----------
    falls:
        Nested FALLS selecting the significant bytes, relative to the
        start of the extent.
    extent:
        Total footprint in bytes (the stride used when the type repeats,
        MPI's "extent").
    """

    falls: FallsSet
    extent: int

    def __post_init__(self) -> None:
        if self.extent < 1:
            raise ValueError(f"extent must be >= 1, got {self.extent}")
        if self.falls and self.falls.extent_stop >= self.extent:
            raise ValueError(
                f"type map reaches byte {self.falls.extent_stop}, beyond "
                f"extent {self.extent}"
            )

    @property
    def size(self) -> int:
        """Number of significant bytes (MPI's "size")."""
        return self.falls.size()

    def resized(self, extent: int) -> "TypeMap":
        """MPI_Type_create_resized: change the extent only."""
        return TypeMap(self.falls, extent)


def primitive(nbytes: int) -> TypeMap:
    """A primitive type of ``nbytes`` contiguous bytes."""
    return TypeMap(FallsSet([Falls(0, nbytes - 1, nbytes, 1)]), nbytes)


def _repeat(base: TypeMap, count: int, stride_bytes: int) -> Tuple[Falls, ...]:
    """``count`` copies of a base type's FALLS, one per stride step."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if count > 1 and stride_bytes < base.extent:
        raise ValueError(
            f"stride {stride_bytes} bytes overlaps base extent {base.extent}"
        )
    inner = tuple(base.falls)
    if len(inner) == 1 and inner[0].l == 0 and count >= 1:
        f = inner[0]
        if f.is_contiguous and f.extent_stop == base.extent - 1:
            # Whole-extent base: a single flat FALLS suffices.
            return (Falls(0, base.extent - 1, stride_bytes, count),)
    height = max(f.height() for f in inner)
    padded = tuple(pad_to_height(f, height) for f in inner)
    return (Falls(0, base.extent - 1, stride_bytes, count, padded),)


def contiguous(count: int, base: TypeMap) -> TypeMap:
    """MPI_Type_contiguous: ``count`` back-to-back copies of ``base``."""
    falls = _repeat(base, count, base.extent)
    return TypeMap(FallsSet(falls), count * base.extent)


def vector(count: int, blocklength: int, stride: int, base: TypeMap) -> TypeMap:
    """MPI_Type_vector: ``count`` blocks of ``blocklength`` base elements,
    block starts ``stride`` base-extents apart."""
    if blocklength < 1 or stride < blocklength:
        raise ValueError(
            f"need 1 <= blocklength <= stride, got {blocklength}, {stride}"
        )
    block = contiguous(blocklength, base)
    falls = _repeat(block, count, stride * base.extent)
    extent = ((count - 1) * stride + blocklength) * base.extent
    return TypeMap(FallsSet(falls), extent)


def indexed(
    blocklengths: Sequence[int], displacements: Sequence[int], base: TypeMap
) -> TypeMap:
    """MPI_Type_indexed: blocks of varying lengths at varying
    displacements (in base-extent units, ascending and non-overlapping)."""
    if len(blocklengths) != len(displacements):
        raise ValueError("blocklengths and displacements must align")
    if not blocklengths:
        raise ValueError("need at least one block")
    falls: list[Falls] = []
    prev_end = -1
    for blen, disp in zip(blocklengths, displacements):
        if blen < 1:
            raise ValueError(f"block length must be >= 1, got {blen}")
        start = disp * base.extent
        if start <= prev_end:
            raise ValueError("indexed blocks must ascend without overlap")
        block = contiguous(blen, base)
        for f in block.falls:
            falls.append(f.shifted(start))
        prev_end = start + block.extent - 1
    extent = prev_end + 1
    return TypeMap(FallsSet(falls), extent)


def subarray(
    shape: Sequence[int],
    subsizes: Sequence[int],
    starts: Sequence[int],
    base: TypeMap,
) -> TypeMap:
    """MPI_Type_create_subarray (C order): a rectangular region of a
    larger array.  The extent is the whole array, as in MPI."""
    if not (len(shape) == len(subsizes) == len(starts)):
        raise ValueError("shape, subsizes and starts must align")
    for d in range(len(shape)):
        if not (0 < subsizes[d] <= shape[d]):
            raise ValueError(f"subsize out of range in dim {d}")
        if not (0 <= starts[d] <= shape[d] - subsizes[d]):
            raise ValueError(f"start out of range in dim {d}")
    inner: Tuple[Falls, ...] = tuple(base.falls)
    weight = base.extent
    whole_base = (
        len(inner) == 1
        and inner[0].l == 0
        and inner[0].is_contiguous
        and inner[0].extent_stop == weight - 1
    )
    falls: Tuple[Falls, ...] = inner if not whole_base else ()
    for d in reversed(range(len(shape))):
        lo = starts[d] * weight
        hi = (starts[d] + subsizes[d]) * weight - 1
        if falls:
            height = max(f.height() for f in falls)
            padded = tuple(pad_to_height(f, height) for f in falls)
            wrapped = Falls(0, weight - 1, weight, subsizes[d], padded)
            f = Falls(lo, hi, hi - lo + 1, 1, (wrapped,))
        else:
            f = Falls(lo, hi, hi - lo + 1, 1)
        falls = (f,)
        weight *= shape[d]
    return TypeMap(FallsSet(falls), weight)


def struct_like(fields: Sequence[Tuple[int, TypeMap]]) -> TypeMap:
    """MPI_Type_create_struct restricted to ascending, non-overlapping
    fields: ``fields`` is a list of (byte displacement, type)."""
    if not fields:
        raise ValueError("need at least one field")
    falls: list[Falls] = []
    prev_end = -1
    for disp, t in fields:
        if disp <= prev_end:
            raise ValueError("struct fields must ascend without overlap")
        for f in t.falls:
            falls.append(f.shifted(disp))
        prev_end = disp + t.extent - 1
    return TypeMap(FallsSet(falls), prev_end + 1)


def simplify(t: TypeMap) -> TypeMap:
    """Re-express the type map with maximal contiguous runs (useful after
    deep compositions produce fragmented descriptions)."""
    segs = leaf_segment_arrays_set(t.falls.falls)
    return TypeMap(coalesced_falls_set(segs), t.extent)
