"""Concurrent file-service layer over the Clusterfile deployment.

The paper's system is a multi-client file system: many compute nodes
issue operations against shared files at once.  This package is the
front end that accepts those concurrent operations and keeps serial
semantics:

* :mod:`repro.service.service` — :class:`FileService`: bounded
  admission queue with reject/park backpressure, a dispatcher that
  fixes per-file ordering in admission order, a batching window that
  coalesces adjacent same-file writes into one engine call, and a
  worker pool that executes independent files concurrently;
* :mod:`repro.service.locks` — the fair FIFO reader-writer lock the
  ordering guarantee rests on;
* :mod:`repro.service.tickets` — the client's future-like handle, now
  carrying a trace id and the ``service.batch`` span tree its operation
  rode in;
* :mod:`repro.service.timeline` — :func:`request_timeline`, which
  reconstructs one request's cross-thread story (queue_wait →
  lock_acquire → batch → engine stages) from its ticket.

Determinism contract: with ``workers=1``, ``max_batch=1`` and no
faults, the service byte-for-byte reproduces serial engine execution;
with any worker count, same-file writes still apply in admission order,
so final file bytes equal a serial replay of the admitted sequence.
"""

from .locks import FairRWLock, LockTicket
from .service import FileService
from .tickets import ServiceClosed, ServiceError, ServiceOverloaded, Ticket
from .timeline import render_timeline, request_timeline

__all__ = [
    "FairRWLock",
    "FileService",
    "LockTicket",
    "ServiceClosed",
    "ServiceError",
    "ServiceOverloaded",
    "Ticket",
    "render_timeline",
    "request_timeline",
]
