"""Concurrent file-service layer over the Clusterfile deployment.

The paper's system is a multi-client file system: many compute nodes
issue operations against shared files at once.  This package is the
front end that accepts those concurrent operations and keeps serial
semantics:

* :mod:`repro.service.service` — :class:`FileService`: a multi-file,
  multi-tenant front end — shared bounded admission with per-tenant
  quotas and reject/park backpressure, per-file FIFO queues scheduled
  across tenants by weighted fair queueing, per-file locks and
  per-file sequence numbers (total order within a file, unordered
  across files), a batching window that coalesces adjacent same-file
  writes into one engine call, and a worker pool that executes
  independent files concurrently with zero cross-file lock conflicts;
* :mod:`repro.service.locks` — the fair FIFO reader-writer lock the
  per-file ordering guarantee rests on, with tagged tickets so blocked
  waits can attest what they were blocked on;
* :mod:`repro.service.tickets` — the client's future-like handle,
  carrying the per-file sequence, file id, tenant, trace id and the
  ``service.batch`` span tree its operation rode in;
* :mod:`repro.service.timeline` — :func:`request_timeline`, which
  reconstructs one request's cross-thread story (queue_wait →
  lock_acquire → batch → engine stages) from its ticket.

Determinism contract: with ``workers=1``, ``max_batch=1`` and no
faults, the service byte-for-byte reproduces serial engine execution;
with any worker count, each file's writes still apply in that file's
admission order, so every file's final bytes equal a per-file serial
replay of its admitted sequence — independent files share no ordering
at all.
"""

from .locks import FairRWLock, LockTicket
from .service import FileService
from .tickets import ServiceClosed, ServiceError, ServiceOverloaded, Ticket
from .timeline import render_timeline, request_timeline

__all__ = [
    "FairRWLock",
    "FileService",
    "LockTicket",
    "ServiceClosed",
    "ServiceError",
    "ServiceOverloaded",
    "Ticket",
    "render_timeline",
    "request_timeline",
]
