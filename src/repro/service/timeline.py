"""Request timelines: one admitted operation, end to end, across threads.

A service request touches three threads — the client's (admission), the
dispatcher's (lock registration, batching) and a worker's (engine
execution) — and its ticket links them: the ticket's ``trace_id`` is
stamped at admission, the worker publishes the ``service.batch`` span
tree on ``ticket.trace`` before executing, and the engine annotates its
operation root with the bound trace id.  :func:`request_timeline` folds
all of that into one ordered record:

``queue_wait`` (admission → lock registration) → ``lock_acquire``
(registration → execution start) → ``batch`` (what the op rode in) →
the engine operation with its per-stage wall sums (map, gather,
scatter, transport).

The function is read-only over plain span data, so it can be called
from any thread the moment ``Ticket.result()`` returns.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..obs.span import Span
from .tickets import Ticket

__all__ = ["request_timeline", "render_timeline"]

#: Engine operation root span names (one per engine entry point).
_ENGINE_ROOTS = ("parallel_write", "parallel_read", "relayout", "shuffle")
#: Per-stage spans summed into the engine entry of a timeline.
_ENGINE_STAGES = ("map", "gather", "scatter", "transport")


def _per_op_record(root: Span, name: str, trace_id: str) -> Optional[Span]:
    for sp in root.children:
        if sp.name == name and sp.attrs.get("trace_id") == trace_id:
            return sp
    return None


def request_timeline(ticket: Ticket) -> Dict[str, object]:
    """The full cross-thread timeline of one service request.

    Returns ``{"trace_id", "seq", "kind", "file", "file_id", "tenant",
    "wait_s", "batched_with", "batch": {...}, "stages": [{"stage",
    "wall_s", ...}, ...]}`` with stages in causal order.  ``seq`` is
    the *per-file* sequence number (total within the ticket's file,
    unordered across files).  Raises ``ValueError`` if the ticket has
    not been dispatched yet (no trace published).
    """
    root = ticket.trace
    if root is None:
        raise ValueError(
            f"ticket {ticket.kind}#{ticket.seq} has no trace yet — the "
            f"operation has not been dispatched (wait on result() first)"
        )

    stages: List[Dict[str, object]] = []
    for stage in ("queue_wait", "lock_acquire"):
        sp = _per_op_record(root, stage, ticket.trace_id)
        if sp is not None:
            stages.append({"stage": stage, "wall_s": sp.wall_s})

    engine_root: Optional[Span] = None
    for sp in root.walk():
        if sp.name in _ENGINE_ROOTS:
            engine_root = sp
            break
    if engine_root is not None:
        op = str(engine_root.attrs.get("op", engine_root.name))
        stage_s = {s: 0.0 for s in _ENGINE_STAGES}
        for sp in engine_root.walk():
            if sp.name in stage_s:
                stage_s[sp.name] += sp.wall_s
        entry: Dict[str, object] = {
            "stage": f"engine.{op}",
            "wall_s": engine_root.wall_s,
            "trace_id": engine_root.attrs.get("trace_id"),
        }
        stages.append(entry)
        for s in _ENGINE_STAGES:
            stages.append({"stage": f"engine.{op}.{s}", "wall_s": stage_s[s]})

    return {
        "trace_id": ticket.trace_id,
        "seq": ticket.seq,
        "kind": ticket.kind,
        "file": ticket.file,
        "file_id": ticket.file_id,
        "tenant": ticket.tenant,
        "wait_s": ticket.wait_s,
        "batched_with": ticket.batched_with,
        "batch": {
            "trace_id": root.attrs.get("trace_id"),
            "kind": root.attrs.get("kind"),
            "file": root.attrs.get("file"),
            "file_id": root.attrs.get("file_id"),
            "size": root.attrs.get("size"),
            "wall_s": root.wall_s,
        },
        "stages": stages,
    }


def render_timeline(timeline: Dict[str, object]) -> str:
    """A terminal-friendly rendering of :func:`request_timeline`."""
    batch = timeline["batch"]
    lines = [
        f"{timeline['trace_id']}  {timeline['kind']}#{timeline['seq']} "
        f"on {timeline['file']!r}  (batch of {batch['size']}, "
        f"batch trace {batch['trace_id']})"
    ]
    for st in timeline["stages"]:
        wall_us = float(st["wall_s"]) * 1e6
        lines.append(f"  {st['stage']:<28} {wall_us:12.1f} us")
    return "\n".join(lines)
