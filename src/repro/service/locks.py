"""Fair FIFO reader-writer locks for per-file operation ordering.

The service layer promises that operations on one file execute in
*admission order*: writers strictly one at a time in the order they
were accepted, adjacent readers sharing.  A plain ``threading.Lock``
cannot promise that (wakeup order is unspecified), so this lock splits
acquisition in two phases:

1. :meth:`FairRWLock.register` — non-blocking; called by the single
   dispatcher thread in admission order.  The returned ticket's place
   in line is fixed at this point.
2. :meth:`FairRWLock.wait` — called by whichever worker thread ends up
   executing the operation; blocks until every earlier ticket that
   conflicts has been released.

Grant policy is strict FIFO over registration order: the head of the
queue is granted when no conflicting holder is active; a run of
consecutive readers at the head is granted together (shared mode); a
writer waits for all active holders and then holds exclusively.
Readers arriving behind a waiting writer queue behind it — no
starvation in either direction.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, List

__all__ = ["LockTicket", "FairRWLock"]


class LockTicket:
    """One place in a :class:`FairRWLock`'s line.

    ``tag`` is an opaque owner label (the service tags tickets with the
    file id the operation targets) used purely for introspection — the
    cross-file conflict counter reads the active holders' tags while a
    ticket is blocked.
    """

    __slots__ = ("mode", "tag", "_event")

    def __init__(self, mode: str, tag: object = None):
        if mode not in ("r", "w"):
            raise ValueError(f"mode must be 'r' or 'w', got {mode!r}")
        self.mode = mode
        self.tag = tag
        self._event = threading.Event()

    @property
    def granted(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "granted" if self.granted else "waiting"
        return f"LockTicket({self.mode}, {state})"


class FairRWLock:
    """A reader-writer lock with explicit FIFO registration."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._waiting: Deque[LockTicket] = deque()
        self._active: List[LockTicket] = []

    def register(self, mode: str, tag: object = None) -> LockTicket:
        """Take a place in line (non-blocking).  ``mode`` is ``"r"`` or
        ``"w"``; the caller serialises registration order."""
        ticket = LockTicket(mode, tag=tag)
        with self._lock:
            self._waiting.append(ticket)
            self._grant_locked()
        return ticket

    def wait(self, ticket: LockTicket, timeout: float | None = None) -> bool:
        """Block until the ticket is granted; returns False on timeout."""
        return ticket._event.wait(timeout)

    def acquire(self, mode: str) -> LockTicket:
        """Register and wait in one step (for callers outside the
        dispatcher's ordered stream)."""
        ticket = self.register(mode)
        self.wait(ticket)
        return ticket

    def release(self, ticket: LockTicket) -> None:
        """Release a granted ticket, waking whatever is next in line."""
        with self._lock:
            if not ticket.granted:  # pragma: no cover - misuse guard
                raise RuntimeError("releasing a ticket that was never granted")
            self._active.remove(ticket)
            self._grant_locked()

    def _grant_locked(self) -> None:
        """Grant the longest eligible prefix of the wait queue (caller
        holds the internal lock)."""
        if any(t.mode == "w" for t in self._active):
            return
        while self._waiting:
            head = self._waiting[0]
            if head.mode == "w":
                if self._active:
                    return  # writer waits for all current holders
                self._active.append(self._waiting.popleft())
                head._event.set()
                return  # writer holds exclusively
            # A reader at the head joins the active (shared) set.
            self._active.append(self._waiting.popleft())
            head._event.set()

    # -- introspection (tests, metrics) --------------------------------------

    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    @property
    def waiting_count(self) -> int:
        with self._lock:
            return len(self._waiting)

    def active_tags(self) -> List[object]:
        """The ``tag`` of every currently granted ticket — what a
        blocked waiter is actually waiting on.  The service's
        cross-file conflict counter compares these against the blocked
        operation's own file id (with per-file locks they can never
        differ; the counter proves it)."""
        with self._lock:
            return [t.tag for t in self._active]
