"""The concurrent file service: admission, batching, dispatch.

:class:`FileService` is a front end over one :class:`Clusterfile`
deployment that accepts many simultaneous client operations and runs
them on a bounded worker pool, preserving the semantics of serial
execution:

* **Admission** — every operation enters one bounded FIFO queue and is
  stamped with a global sequence number.  A full queue either rejects
  (``admission="reject"`` → :class:`ServiceOverloaded`) or parks the
  caller until space frees (``admission="park"`` — backpressure).
* **Ordering** — a single dispatcher thread drains the queue in
  admission order and registers each operation on its file's
  :class:`FairRWLock` *before* handing it to the pool.  Registration
  order equals admission order, so same-file writes always apply in
  the order clients were admitted; reads share; operations on
  different files proceed concurrently.
* **Batching** — an adjacent run of write operations on one file (same
  ``to_disk`` flag, distinct compute nodes) coalesces into a single
  engine call, up to ``max_batch`` requests.  With ``batch_window_s``
  > 0 the dispatcher lingers that long for late arrivals that extend
  the run.  The engine applies a multi-request write's payloads in
  request order, so a coalesced batch is byte-identical to executing
  its members serially in admission order.
* **Dispatch** — at most ``workers`` operations are in flight; the
  dispatcher blocks on a worker slot before submitting, so queue depth
  reflects the true backlog.

With one worker, no faults and batching disabled the service is
byte-for-byte the serial engine: one operation at a time, in admission
order, through exactly the same code path as :meth:`Clusterfile.write`
/ :meth:`Clusterfile.read`.

Everything the service does is measured: ``service.*`` counters
(enqueued/rejected/completed/failed/batches) and bounded histograms
(queue depth at admission, batch size at dispatch, per-operation wait
time — quantiles plus slow-op exemplars at fixed footprint) live in
the process-wide metrics registry (:mod:`repro.obs.metrics`), every
ticket carries a trace id, and the worker publishes a ``service.batch``
span tree on each ticket so :func:`repro.service.request_timeline`
reconstructs a request's queue_wait → lock_acquire → engine phases
across threads.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

import numpy as np

from ..clusterfile.fs import Clusterfile
from ..clusterfile.relayout import relayout
from ..core.partition import Partition
from ..obs import metrics as obs_metrics
from ..obs.context import trace_context
from ..obs.span import open_span
from .locks import FairRWLock, LockTicket
from .tickets import ServiceClosed, ServiceOverloaded, Ticket

__all__ = ["FileService"]


@dataclass
class _Op:
    """One admitted operation, queued for dispatch."""

    kind: str  # "write" | "read" | "relayout"
    name: str
    ticket: Ticket
    admitted_at: float
    #: When the dispatcher registered the op on its file lock (queue
    #: wait ends here; lock wait begins).
    registered_at: float = 0.0
    node: int = -1
    offset: int = 0
    data: Optional[np.ndarray] = None  # write payload
    length: int = 0  # read length
    to_disk: bool = False
    from_disk: bool = False
    new_physical: Optional[Partition] = None
    extra: Dict[str, Any] = field(default_factory=dict)


def _batch_compatible(op: _Op, batch: List[_Op]) -> bool:
    """Whether ``op`` can join a write batch (engine constraints: one
    request per compute node, one destination file, one flush mode)."""
    head = batch[0]
    return (
        op.kind == "write"
        and op.name == head.name
        and op.to_disk == head.to_disk
        and all(op.node != b.node for b in batch)
    )


class FileService:
    """A concurrent, batching front end over one :class:`Clusterfile`.

    Parameters
    ----------
    fs:
        The deployment to serve.  The service assumes exclusive use of
        the deployment's data operations while it is open (views may be
        set up front; use :meth:`submit_relayout` for layout changes —
        it re-establishes existing views against the new layout).
    workers:
        Worker threads; also the in-flight operation cap.
    max_queue:
        Bound on the admission queue (operations admitted but not yet
        dispatched).
    admission:
        ``"park"`` blocks submitters while the queue is full
        (backpressure); ``"reject"`` raises :class:`ServiceOverloaded`.
    max_batch:
        Largest number of adjacent same-file writes coalesced into one
        engine call.  ``1`` disables batching.
    batch_window_s:
        How long the dispatcher lingers for late write arrivals that
        extend a batch.  ``0`` coalesces only what is already queued.
    workers_mode:
        ``"thread"`` (default) runs engine calls on the service's
        worker threads, GIL and all.  ``"process"`` additionally fans
        each engine call's server-side work out across a
        :class:`~repro.mp.pool.ProcessPoolExecutorBackend` of
        ``io_processes`` worker processes — real cores.  The deployment
        must keep subfiles in shared memory
        (:class:`~repro.clusterfile.storage.SharedMemoryStorage`, or
        ``Clusterfile(workers_mode="process")`` which also brings its
        own pool; an existing ``fs.backend`` is reused, not re-created).
        A pool the service creates is owned by it and torn down —
        segments unlinked — in :meth:`close`.
    io_processes:
        Worker-process count for ``workers_mode="process"``; defaults
        to ``workers``.
    """

    def __init__(
        self,
        fs: Clusterfile,
        workers: int = 4,
        max_queue: int = 64,
        admission: str = "park",
        max_batch: int = 8,
        batch_window_s: float = 0.0,
        workers_mode: str = "thread",
        io_processes: Optional[int] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if admission not in ("park", "reject"):
            raise ValueError(
                f"admission must be 'park' or 'reject', got {admission!r}"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if workers_mode not in ("thread", "process"):
            raise ValueError(
                f"workers_mode must be 'thread' or 'process', "
                f"got {workers_mode!r}"
            )
        self.fs = fs
        self.workers_mode = workers_mode
        self._owned_backend = None
        if workers_mode == "process" and fs.backend is None:
            from ..clusterfile.storage import SharedMemoryStorage
            from ..mp import ProcessPoolExecutorBackend

            if not isinstance(fs.storage, SharedMemoryStorage):
                raise ValueError(
                    "workers_mode='process' needs subfile stores in "
                    "shared memory; build the deployment with "
                    "Clusterfile(storage=SharedMemoryStorage()) or "
                    "Clusterfile(workers_mode='process')"
                )
            self._owned_backend = ProcessPoolExecutorBackend(
                processes=io_processes or workers, config=fs.config
            )
            fs.backend = self._owned_backend
        self.workers = workers
        self.max_queue = max_queue
        self.admission = admission
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s

        self._queue: Deque[_Op] = deque()
        self._qlock = threading.Lock()
        self._not_empty = threading.Condition(self._qlock)
        self._not_full = threading.Condition(self._qlock)
        self._idle = threading.Condition(self._qlock)
        self._seq = 0
        self._pending = 0  # admitted, not yet resolved
        self._closed = False

        # Hot-path metric handles, resolved once (a registry lookup per
        # admission is measurable at small-operation rates).
        self._m_enqueued = obs_metrics.counter("service.enqueued")
        self._m_rejected = obs_metrics.counter("service.rejected")
        self._m_completed = obs_metrics.counter("service.completed")
        self._m_failed = obs_metrics.counter("service.failed")
        self._m_batches = obs_metrics.counter("service.batches")
        # Bounded log-bucket histograms, not gauges: a long-running
        # service keeps quantiles and slow-op exemplars at fixed
        # footprint (the summary keys stay gauge-compatible).
        self._m_queue_depth = obs_metrics.histogram("service.queue_depth")
        self._m_batch_size = obs_metrics.histogram("service.batch_size")
        self._m_wait_s = obs_metrics.histogram("service.wait_s")

        self._locks: Dict[str, FairRWLock] = {}
        self._locks_guard = threading.Lock()
        self._slots = threading.Semaphore(workers)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="svc-worker"
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="svc-dispatch", daemon=True
        )
        self._dispatcher.start()

    # -- client API ----------------------------------------------------------

    def submit_write(
        self,
        name: str,
        node: int,
        offset: int,
        data,
        to_disk: bool = False,
    ) -> Ticket:
        """Admit one view write (the payload is copied at admission, so
        the caller may reuse its buffer immediately)."""
        payload = np.array(data, dtype=np.uint8, copy=True).reshape(-1)
        return self._admit(
            _Op(
                kind="write",
                name=name,
                ticket=None,  # type: ignore[arg-type]  # stamped in _admit
                admitted_at=0.0,
                node=node,
                offset=offset,
                data=payload,
                to_disk=to_disk,
            )
        )

    def submit_read(
        self,
        name: str,
        node: int,
        offset: int,
        length: int,
        from_disk: bool = False,
    ) -> Ticket:
        """Admit one view read; the ticket resolves to the bytes read."""
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        return self._admit(
            _Op(
                kind="read",
                name=name,
                ticket=None,  # type: ignore[arg-type]
                admitted_at=0.0,
                node=node,
                offset=offset,
                length=length,
                from_disk=from_disk,
            )
        )

    def submit_relayout(self, name: str, new_physical: Partition) -> Ticket:
        """Admit a physical re-layout.  Exclusive on the file; views set
        on the file are re-established against the new layout before the
        ticket resolves."""
        return self._admit(
            _Op(
                kind="relayout",
                name=name,
                ticket=None,  # type: ignore[arg-type]
                admitted_at=0.0,
                new_physical=new_physical,
            )
        )

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every admitted operation has resolved; returns
        False on timeout."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._qlock:
            while self._pending:
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.perf_counter()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def close(self, drain: bool = True) -> None:
        """Stop admitting; by default finish queued work, then join the
        dispatcher and the pool."""
        with self._qlock:
            if self._closed:
                return
            self._closed = True
            if not drain:
                dropped = list(self._queue)
                self._queue.clear()
                for op in dropped:
                    op.ticket._fail(ServiceClosed("service closed"))
                    self._pending -= 1
                if not self._pending:
                    self._idle.notify_all()
            self._not_empty.notify_all()
            self._not_full.notify_all()
        self._dispatcher.join()
        self._pool.shutdown(wait=True)
        if self._owned_backend is not None:
            self._owned_backend.close()
            if self.fs.backend is self._owned_backend:
                self.fs.backend = None
            self._owned_backend = None

    def __enter__(self) -> "FileService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def queue_depth(self) -> int:
        with self._qlock:
            return len(self._queue)

    @property
    def pending(self) -> int:
        with self._qlock:
            return self._pending

    # -- admission -----------------------------------------------------------

    def _admit(self, op: _Op) -> Ticket:
        with self._qlock:
            if self._closed:
                raise ServiceClosed("service closed")
            while len(self._queue) >= self.max_queue:
                if self.admission == "reject":
                    self._m_rejected.inc()
                    raise ServiceOverloaded(
                        f"admission queue full ({self.max_queue})"
                    )
                self._not_full.wait()
                if self._closed:
                    raise ServiceClosed("service closed")
            op.ticket = Ticket(self._seq, op.kind, op.name)
            self._seq += 1
            op.admitted_at = time.perf_counter()
            self._queue.append(op)
            self._pending += 1
            self._m_enqueued.inc()
            self._m_queue_depth.observe(len(self._queue))
            self._not_empty.notify()
        return op.ticket

    # -- dispatch ------------------------------------------------------------

    def _lock_for(self, name: str) -> FairRWLock:
        with self._locks_guard:
            lock = self._locks.get(name)
            if lock is None:
                lock = self._locks[name] = FairRWLock()
            return lock

    def _dispatch_loop(self) -> None:
        while True:
            with self._qlock:
                while not self._queue and not self._closed:
                    self._not_empty.wait()
                if not self._queue:
                    return  # closed and drained
                batch = [self._queue.popleft()]
                if batch[0].kind == "write":
                    while (
                        len(batch) < self.max_batch
                        and self._queue
                        and _batch_compatible(self._queue[0], batch)
                    ):
                        batch.append(self._queue.popleft())
                self._not_full.notify_all()
            if (
                batch[0].kind == "write"
                and self.batch_window_s > 0
                and len(batch) < self.max_batch
            ):
                self._linger(batch)
            # Lock registration in admission order fixes same-file
            # ordering *before* workers race to execute.
            lock = self._lock_for(batch[0].name)
            mode = "r" if batch[0].kind == "read" else "w"
            lticket = lock.register(mode)
            registered = time.perf_counter()
            for op in batch:
                op.registered_at = registered
            self._slots.acquire()
            self._pool.submit(self._run_batch, batch, lock, lticket)

    def _linger(self, batch: List[_Op]) -> None:
        """Hold a short write batch open for late compatible arrivals."""
        deadline = time.perf_counter() + self.batch_window_s
        with self._qlock:
            while len(batch) < self.max_batch:
                if self._queue:
                    if _batch_compatible(self._queue[0], batch):
                        batch.append(self._queue.popleft())
                        self._not_full.notify_all()
                        continue
                    return  # incompatible head: dispatch what we have
                if self._closed:
                    return
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return
                self._not_empty.wait(remaining)

    # -- execution -----------------------------------------------------------

    def _run_batch(
        self, batch: List[_Op], lock: FairRWLock, lticket: LockTicket
    ) -> None:
        try:
            lock.wait(lticket)
            started = time.perf_counter()
            head = batch[0]
            with open_span(
                "service.batch",
                kind=head.kind,
                file=head.name,
                size=len(batch),
                trace_id=head.ticket.trace_id,
            ) as root:
                for op in batch:
                    op.ticket.wait_s = started - op.admitted_at
                    op.ticket.batched_with = len(batch)
                    registered = op.registered_at or started
                    root.record(
                        "queue_wait",
                        max(0.0, registered - op.admitted_at),
                        trace_id=op.ticket.trace_id,
                        seq=op.ticket.seq,
                    )
                    root.record(
                        "lock_acquire",
                        max(0.0, started - registered),
                        trace_id=op.ticket.trace_id,
                        seq=op.ticket.seq,
                    )
                    self._m_wait_s.observe(
                        op.ticket.wait_s,
                        trace_id=op.ticket.trace_id,
                        seq=op.ticket.seq,
                    )
                    # Publish the tree before execution: tickets resolve
                    # inside _execute, and a client may ask for its
                    # timeline the instant result() returns.
                    op.ticket.trace = root
                try:
                    # The engine tags its operation root with the bound
                    # trace id, tying the whole batch (head's id names
                    # the engine call; per-op records carry their own).
                    with trace_context(head.ticket.trace_id):
                        self._execute(batch)
                    self._m_completed.inc(len(batch))
                except BaseException as exc:
                    for op in batch:
                        if not op.ticket.done():
                            op.ticket._fail(exc)
                    self._m_failed.inc(len(batch))
        finally:
            lock.release(lticket)
            self._slots.release()
            with self._qlock:
                self._pending -= len(batch)
                if not self._pending:
                    self._idle.notify_all()

    def _execute(self, batch: List[_Op]) -> None:
        head = batch[0]
        if head.kind == "write":
            self._m_batches.inc()
            self._m_batch_size.observe(
                len(batch), trace_id=head.ticket.trace_id
            )
            accesses = [(op.node, op.offset, op.data) for op in batch]
            result = self.fs.write(head.name, accesses, to_disk=head.to_disk)
            for op in batch:
                op.ticket._resolve(result)
        elif head.kind == "read":
            [buf] = self.fs.read(
                head.name,
                [(head.node, head.offset, head.length)],
                from_disk=head.from_disk,
            )
            head.ticket._resolve(buf)
        elif head.kind == "relayout":
            # Capture the file's views: relayout invalidates them (their
            # projections referred to the old subfiles) and the service
            # re-establishes each against the new layout.
            saved = [
                (node, v.logical, v.element)
                for (n, node), v in list(self.fs.views.items())
                if n == head.name
            ]
            result = relayout(self.fs, head.name, head.new_physical)
            for node, logical, element in saved:
                self.fs.set_view(head.name, node, logical, element)
            head.ticket._resolve(result)
        else:  # pragma: no cover - _admit only builds the three kinds
            raise AssertionError(f"unknown operation kind {head.kind!r}")
