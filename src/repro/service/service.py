"""The multi-file, multi-tenant file service: admission, WFQ, batching.

:class:`FileService` fronts a *namespace* of files on one
:class:`Clusterfile` deployment.  It accepts many simultaneous client
operations — for many files, from many tenants — and runs them on a
bounded worker pool while preserving per-file serial semantics:

* **Admission** — one shared bounded budget (``max_queue``) with
  per-tenant quotas on top: a tenant at its quota parks
  (``admission="park"`` — backpressure) or is rejected
  (``admission="reject"`` → :class:`ServiceOverloaded`) even while the
  global budget has room, so one tenant cannot starve the rest of the
  queue.  Each admitted operation is stamped with a **per-file
  sequence number**: the order is total within a file and deliberately
  unordered across files — independent files share no counter, no
  queue position, and no lock, so they never serialise.
* **Scheduling** — operations land in per-file FIFO queues.  A single
  dispatcher picks the next *file head* by weighted fair queueing over
  tenants (start-time fair queueing: each operation carries a virtual
  finish tag ``start + cost/weight``; the eligible head with the
  smallest tag runs).  Because only queue heads are dispatched and
  each file's queue is FIFO, per-file admission order is preserved no
  matter how tenants interleave.
* **Ordering** — the dispatcher registers each dispatched operation on
  its file's :class:`FairRWLock` before handing it to the pool.
  Registration order equals per-file admission order, so same-file
  writes always apply in the order clients were admitted; reads share;
  operations on different files proceed concurrently.  Locks are
  tagged with the file id: whenever a worker actually blocks, the
  active holders' tags are compared with the blocked operation's —
  ``service.lock.cross_file_conflicts`` counts mismatches and the
  stress suite pins it at exactly zero (per-file locks make it
  structurally impossible; the counter proves it).
* **Batching** — an adjacent run of writes *within one file's queue*
  (same ``to_disk`` flag, distinct compute nodes) coalesces into a
  single engine call, up to ``max_batch`` requests: coalescing is
  keyed by ``(file id, adjacency in that file's order)``, so traffic
  on other files can never break a file's batch.  With
  ``batch_window_s`` > 0 the dispatcher lingers for late arrivals on
  the same file.  The engine applies a multi-request write's payloads
  in request order, so a coalesced batch is byte-identical to
  executing its members serially in per-file admission order.
* **Dispatch** — at most ``workers`` operations are in flight; the
  dispatcher blocks on a worker slot before submitting, so queue depth
  reflects the true backlog.

With one worker, no faults and batching disabled the service is
byte-for-byte the serial engine.  With any worker count, each file's
operations still apply in that file's admission order, so every file's
bytes equal a per-file serial replay of its admitted sequence.

Everything the service does is measured: ``service.*`` counters
(enqueued/rejected/completed/failed/batches, lock blocking and the
cross-file conflict invariant) and bounded histograms — global
(``queue_depth``/``batch_size``/``wait_s``), per tenant
(``service.tenant.<t>.queue_depth``/``.wait_s`` + admission/rejection
counters) and per file (``service.file.<name>.wait_s``) — live in the
process-wide metrics registry.  Every ticket carries a trace id, file
id and tenant, and the worker publishes a ``service.batch`` span tree
on each ticket so :func:`repro.service.request_timeline` reconstructs
a request's queue_wait → lock_acquire → engine phases across threads.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..clusterfile.fs import Clusterfile
from ..clusterfile.relayout import relayout
from ..core.partition import Partition
from ..obs import flightrec
from ..obs import metrics as obs_metrics
from ..obs.context import trace_context
from ..obs.span import open_span
from .locks import FairRWLock, LockTicket
from .tickets import ServiceClosed, ServiceOverloaded, Ticket

__all__ = ["FileService", "DEFAULT_TENANT"]

#: Tenant used when the caller does not name one.
DEFAULT_TENANT = "default"


@dataclass
class _Op:
    """One admitted operation, queued for dispatch."""

    kind: str  # "write" | "read" | "relayout"
    name: str
    ticket: Ticket
    admitted_at: float
    tenant: str = DEFAULT_TENANT
    #: Start-time-fair-queueing tags, fixed at admission.
    wfq_start: float = 0.0
    wfq_finish: float = 0.0
    #: When the dispatcher registered the op on its file lock (queue
    #: wait ends here; lock wait begins).
    registered_at: float = 0.0
    node: int = -1
    offset: int = 0
    data: Optional[np.ndarray] = None  # write payload
    length: int = 0  # read length
    to_disk: bool = False
    from_disk: bool = False
    new_physical: Optional[Partition] = None
    extra: Dict[str, Any] = field(default_factory=dict)


class _TenantState:
    """Per-tenant scheduling state: quota accounting + WFQ tags."""

    __slots__ = (
        "name", "weight", "quota", "queued", "last_finish",
        "m_enqueued", "m_rejected", "h_queue_depth", "h_wait_s",
    )

    def __init__(self, name: str, weight: float, quota: int):
        self.name = name
        self.weight = weight
        self.quota = quota
        self.queued = 0  # admitted, not yet dispatched
        self.last_finish = 0.0
        self.m_enqueued = obs_metrics.counter(
            f"service.tenant.{name}.enqueued"
        )
        self.m_rejected = obs_metrics.counter(
            f"service.tenant.{name}.rejected"
        )
        self.h_queue_depth = obs_metrics.histogram(
            f"service.tenant.{name}.queue_depth"
        )
        self.h_wait_s = obs_metrics.histogram(f"service.tenant.{name}.wait_s")


class _FileState:
    """Per-file service state: its own lock, queue, and sequence."""

    __slots__ = (
        "file_id", "name", "lock", "queue", "next_seq", "ready", "h_wait_s",
    )

    def __init__(self, file_id: int, name: str):
        self.file_id = file_id
        self.name = name
        self.lock = FairRWLock()
        self.queue: Deque[_Op] = deque()
        self.next_seq = 0
        #: Whether this file currently sits in the dispatcher's ready
        #: list (kept as a flag so membership checks are O(1)).
        self.ready = False
        self.h_wait_s = obs_metrics.histogram(f"service.file.{name}.wait_s")


def _batch_compatible(op: _Op, batch: List[_Op]) -> bool:
    """Whether ``op`` can extend a write batch on the same file (engine
    constraints: one request per compute node, one flush mode).  The
    file is implied — candidates come off the same per-file queue, so
    adjacency *in that file's order* is the batching key."""
    head = batch[0]
    return (
        op.kind == "write"
        and op.to_disk == head.to_disk
        and all(op.node != b.node for b in batch)
    )


class FileService:
    """A concurrent, batching, multi-tenant front end over a namespace
    of files on one :class:`Clusterfile` deployment.

    Parameters
    ----------
    fs:
        The deployment to serve.  The service assumes exclusive use of
        the deployment's data operations while it is open (views may be
        set up front; use :meth:`submit_relayout` for layout changes —
        it re-establishes existing views against the new layout).
    workers:
        Worker threads; also the in-flight operation cap.
    max_queue:
        Shared bound on admitted-but-undispatched operations across
        every file and tenant.
    admission:
        ``"park"`` blocks submitters while the queue (or their tenant's
        quota) is full (backpressure); ``"reject"`` raises
        :class:`ServiceOverloaded`.
    max_batch:
        Largest number of adjacent same-file writes coalesced into one
        engine call.  ``1`` disables batching.
    batch_window_s:
        How long the dispatcher lingers for late write arrivals on the
        same file that extend a batch.  ``0`` coalesces only what is
        already queued.
    namespace:
        An optional :class:`~repro.namespace.cluster.ClusterNamespace`.
        When given, ``submit_*`` also accept absolute *paths*
        (``"/logs/a"``): the namespace's cached lookup resolves them to
        ``(backing name, file id)`` and per-file state is keyed by the
        stable id — renames never move queues or locks.
    tenant_weights:
        ``{tenant: weight}`` for weighted fair queueing.  Unlisted
        tenants get weight 1.0.  An operation's virtual cost is 1.0, so
        under saturation tenants receive dispatch slots proportional to
        their weights.
    tenant_quota:
        Per-tenant cap on queued (undispatched) operations; defaults to
        ``max_queue`` (no per-tenant throttling).  Override per tenant
        with :meth:`set_tenant`.
    workers_mode / io_processes:
        As before: ``"process"`` fans each engine call's server-side
        work out across a worker-process pool (see
        :class:`~repro.mp.pool.ProcessPoolExecutorBackend`).
    durability:
        An optional :class:`~repro.durability.DurabilityManager`.  When
        given, every executed write batch is group-committed to the
        file's write-ahead journal (journal stamp = ticket seq) *before
        its tickets resolve* — an acknowledged write survives a
        SIGKILL of this process — and a re-layout checkpoints the file
        (snapshot + fresh journals at a bumped epoch) before its ticket
        resolves.  ``None`` (the default) journals nothing and adds no
        overhead.
    """

    def __init__(
        self,
        fs: Clusterfile,
        workers: int = 4,
        max_queue: int = 64,
        admission: str = "park",
        max_batch: int = 8,
        batch_window_s: float = 0.0,
        namespace: object = None,
        tenant_weights: Optional[Dict[str, float]] = None,
        tenant_quota: Optional[int] = None,
        workers_mode: str = "thread",
        io_processes: Optional[int] = None,
        durability: object = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if admission not in ("park", "reject"):
            raise ValueError(
                f"admission must be 'park' or 'reject', got {admission!r}"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if workers_mode not in ("thread", "process"):
            raise ValueError(
                f"workers_mode must be 'thread' or 'process', "
                f"got {workers_mode!r}"
            )
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError(f"tenant_quota must be >= 1, got {tenant_quota}")
        self.fs = fs
        self.namespace = namespace
        self.durability = durability
        self.workers_mode = workers_mode
        self._owned_backend = None
        if workers_mode == "process" and fs.backend is None:
            from ..clusterfile.storage import SharedMemoryStorage
            from ..mp import ProcessPoolExecutorBackend

            if not isinstance(fs.storage, SharedMemoryStorage):
                raise ValueError(
                    "workers_mode='process' needs subfile stores in "
                    "shared memory; build the deployment with "
                    "Clusterfile(storage=SharedMemoryStorage()) or "
                    "Clusterfile(workers_mode='process')"
                )
            self._owned_backend = ProcessPoolExecutorBackend(
                processes=io_processes or workers, config=fs.config
            )
            fs.backend = self._owned_backend
        self.workers = workers
        self.max_queue = max_queue
        self.admission = admission
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s
        self.default_tenant_quota = (
            tenant_quota if tenant_quota is not None else max_queue
        )
        self._tenant_weights = dict(tenant_weights or {})

        self._qlock = threading.Lock()
        self._not_empty = threading.Condition(self._qlock)
        self._not_full = threading.Condition(self._qlock)
        self._idle = threading.Condition(self._qlock)
        #: Files with a non-empty queue, as a lazy min-heap of
        #: ``(wfq_finish, wfq_start, file_id, fstate)`` entries keyed
        #: by each file's *head* operation — the dispatcher pops the
        #: minimum in O(log n) instead of scanning every ready file.
        #: Entries whose key went stale (the head changed under them —
        #: linger drains, or dispatch of the old head) are detected and
        #: refreshed at pop time; ``fstate.ready`` means "has a live
        #: heap entry", keeping membership O(1) and at most one entry
        #: per file.
        self._ready_heap: List[Tuple[float, float, int, _FileState]] = []
        self._queued = 0  # admitted, not yet dispatched (all files)
        self._pending = 0  # admitted, not yet resolved
        self._vtime = 0.0  # WFQ virtual time
        self._closed = False

        # Hot-path metric handles, resolved once (a registry lookup per
        # admission is measurable at small-operation rates).
        self._m_enqueued = obs_metrics.counter("service.enqueued")
        self._m_rejected = obs_metrics.counter("service.rejected")
        self._m_completed = obs_metrics.counter("service.completed")
        self._m_failed = obs_metrics.counter("service.failed")
        self._m_batches = obs_metrics.counter("service.batches")
        # The ordering invariants, measured: lock waits that actually
        # blocked (same-file contention — expected under load) vs
        # blocked waits whose active holder belonged to a *different*
        # file (structurally impossible with per-file locks; pinned at
        # zero by the stress suite).
        self._m_lock_blocked = obs_metrics.counter("service.lock.blocked")
        self._m_cross_file = obs_metrics.counter(
            "service.lock.cross_file_conflicts"
        )
        # Bounded log-bucket histograms, not gauges: a long-running
        # service keeps quantiles and slow-op exemplars at fixed
        # footprint (the summary keys stay gauge-compatible).
        self._m_queue_depth = obs_metrics.histogram("service.queue_depth")
        self._m_batch_size = obs_metrics.histogram("service.batch_size")
        self._m_wait_s = obs_metrics.histogram("service.wait_s")

        self._files: Dict[str, _FileState] = {}
        self._tenants: Dict[str, _TenantState] = {}
        self._next_file_id = 1
        self._slots = threading.Semaphore(workers)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="svc-worker"
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="svc-dispatch", daemon=True
        )
        self._dispatcher.start()

    # -- tenant / file registries --------------------------------------------

    def set_tenant(
        self,
        name: str,
        weight: Optional[float] = None,
        quota: Optional[int] = None,
    ) -> None:
        """Configure (or reconfigure) one tenant's WFQ weight and
        admission quota.  Safe at any time; affects operations admitted
        afterwards."""
        if weight is not None and weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        if quota is not None and quota < 1:
            raise ValueError(f"quota must be >= 1, got {quota}")
        with self._qlock:
            t = self._tenant_locked(name)
            if weight is not None:
                t.weight = weight
                self._tenant_weights[name] = weight
            if quota is not None:
                t.quota = quota
            # A raised quota may unpark waiting submitters.
            self._not_full.notify_all()

    def _tenant_locked(self, name: str) -> _TenantState:
        t = self._tenants.get(name)
        if t is None:
            t = self._tenants[name] = _TenantState(
                name,
                weight=float(self._tenant_weights.get(name, 1.0)),
                quota=self.default_tenant_quota,
            )
        return t

    def _file_locked(self, name: str, file_id: Optional[int]) -> _FileState:
        fstate = self._files.get(name)
        if fstate is None:
            if file_id is None:
                file_id = self._next_file_id
                self._next_file_id += 1
            fstate = self._files[name] = _FileState(file_id, name)
        return fstate

    def _locate(self, file: str) -> Tuple[str, Optional[int]]:
        """Resolve a client-facing file reference to ``(backing name,
        file id)``: through the namespace when one is attached and the
        reference is a path, else as a bare Clusterfile name."""
        ns = self.namespace
        if ns is not None and file.startswith("/"):
            return ns.locate(file)
        return file, None

    # -- client API ----------------------------------------------------------

    def submit_write(
        self,
        name: str,
        node: int,
        offset: int,
        data,
        to_disk: bool = False,
        tenant: str = DEFAULT_TENANT,
    ) -> Ticket:
        """Admit one view write (the payload is copied at admission, so
        the caller may reuse its buffer immediately)."""
        payload = np.array(data, dtype=np.uint8, copy=True).reshape(-1)
        return self._admit(
            _Op(
                kind="write",
                name=name,
                ticket=None,  # type: ignore[arg-type]  # stamped in _admit
                admitted_at=0.0,
                tenant=tenant,
                node=node,
                offset=offset,
                data=payload,
                to_disk=to_disk,
            )
        )

    def submit_read(
        self,
        name: str,
        node: int,
        offset: int,
        length: int,
        from_disk: bool = False,
        tenant: str = DEFAULT_TENANT,
    ) -> Ticket:
        """Admit one view read; the ticket resolves to the bytes read."""
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        return self._admit(
            _Op(
                kind="read",
                name=name,
                ticket=None,  # type: ignore[arg-type]
                admitted_at=0.0,
                tenant=tenant,
                node=node,
                offset=offset,
                length=length,
                from_disk=from_disk,
            )
        )

    def submit_relayout(
        self,
        name: str,
        new_physical: Partition,
        tenant: str = DEFAULT_TENANT,
    ) -> Ticket:
        """Admit a physical re-layout.  Exclusive on the file; views set
        on the file are re-established against the new layout before the
        ticket resolves."""
        return self._admit(
            _Op(
                kind="relayout",
                name=name,
                ticket=None,  # type: ignore[arg-type]
                admitted_at=0.0,
                tenant=tenant,
                new_physical=new_physical,
            )
        )

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every admitted operation has resolved; returns
        False on timeout."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._qlock:
            while self._pending:
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.perf_counter()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def close(self, drain: bool = True) -> None:
        """Stop admitting; by default finish queued work, then join the
        dispatcher and the pool."""
        with self._qlock:
            if self._closed:
                return
            self._closed = True
            if not drain:
                for fstate in self._files.values():
                    fstate.ready = False
                    for op in fstate.queue:
                        op.ticket._fail(ServiceClosed("service closed"))
                        op_tenant = self._tenants.get(op.tenant)
                        if op_tenant is not None:
                            op_tenant.queued -= 1
                        self._pending -= 1
                    fstate.queue.clear()
                self._ready_heap.clear()
                self._queued = 0
                if not self._pending:
                    self._idle.notify_all()
            self._not_empty.notify_all()
            self._not_full.notify_all()
        self._dispatcher.join()
        self._pool.shutdown(wait=True)
        if self._owned_backend is not None:
            self._owned_backend.close()
            if self.fs.backend is self._owned_backend:
                self.fs.backend = None
            self._owned_backend = None

    def __enter__(self) -> "FileService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def queue_depth(self) -> int:
        """Admitted-but-undispatched operations across all files."""
        with self._qlock:
            return self._queued

    @property
    def pending(self) -> int:
        with self._qlock:
            return self._pending

    def tenant_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant scheduling snapshot (tests, operators)."""
        with self._qlock:
            return {
                t.name: {
                    "weight": t.weight,
                    "quota": t.quota,
                    "queued": t.queued,
                    "virtual_finish": t.last_finish,
                }
                for t in self._tenants.values()
            }

    def file_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-file service snapshot: id, backlog, next sequence."""
        with self._qlock:
            return {
                f.name: {
                    "file_id": f.file_id,
                    "queued": len(f.queue),
                    "next_seq": f.next_seq,
                }
                for f in self._files.values()
            }

    # -- admission -----------------------------------------------------------

    def _admit(self, op: _Op) -> Ticket:
        name, file_id = self._locate(op.name)
        op.name = name
        with self._qlock:
            if self._closed:
                raise ServiceClosed("service closed")
            tstate = self._tenant_locked(op.tenant)
            while (
                self._queued >= self.max_queue
                or tstate.queued >= tstate.quota
            ):
                if self.admission == "reject":
                    self._m_rejected.inc()
                    tstate.m_rejected.inc()
                    if tstate.queued >= tstate.quota:
                        raise ServiceOverloaded(
                            f"tenant {op.tenant!r} at quota "
                            f"({tstate.quota})"
                        )
                    raise ServiceOverloaded(
                        f"admission queue full ({self.max_queue})"
                    )
                self._not_full.wait()
                if self._closed:
                    raise ServiceClosed("service closed")
            fstate = self._file_locked(name, file_id)
            op.ticket = Ticket(
                fstate.next_seq,
                op.kind,
                name,
                file_id=fstate.file_id,
                tenant=op.tenant,
            )
            fstate.next_seq += 1
            # Start-time fair queueing: the operation's virtual finish
            # tag orders it against every other tenant's backlog.  Unit
            # cost per operation — dispatch slots, not bytes, are the
            # contended resource at this layer.
            start = max(self._vtime, tstate.last_finish)
            op.wfq_start = start
            op.wfq_finish = start + 1.0 / tstate.weight
            tstate.last_finish = op.wfq_finish
            op.admitted_at = time.perf_counter()
            fstate.queue.append(op)
            if not fstate.ready:
                fstate.ready = True
                heapq.heappush(
                    self._ready_heap, (*self._head_key(fstate), fstate)
                )
            self._queued += 1
            tstate.queued += 1
            self._pending += 1
            self._m_enqueued.inc()
            tstate.m_enqueued.inc()
            self._m_queue_depth.observe(self._queued)
            tstate.h_queue_depth.observe(tstate.queued)
            self._not_empty.notify()
        return op.ticket

    # -- dispatch ------------------------------------------------------------

    def _account_dispatch_locked(self, ops: List[_Op]) -> None:
        """Move ops from 'queued' to 'in flight' (caller holds _qlock)."""
        for op in ops:
            self._queued -= 1
            self._tenants[op.tenant].queued -= 1
        self._not_full.notify_all()

    @staticmethod
    def _head_key(fstate: _FileState) -> Tuple[float, float, int]:
        head = fstate.queue[0]
        return (head.wfq_finish, head.wfq_start, fstate.file_id)

    def _requeue_if_ready_locked(self, fstate: _FileState) -> None:
        """Give a file with remaining backlog a fresh heap entry."""
        if fstate.queue and not fstate.ready:
            fstate.ready = True
            heapq.heappush(
                self._ready_heap, (*self._head_key(fstate), fstate)
            )

    def _pop_ready_locked(self) -> Optional[_FileState]:
        """Pop the ready file whose head has the smallest WFQ key.

        Lazy invalidation: an entry for a drained queue is discarded;
        an entry whose key no longer matches the current head (ops
        lingered away or were admitted since the push) is refreshed in
        place.  Each entry is refreshed at most once per call — only
        this (single) dispatcher mutates heads, so a refreshed key
        cannot go stale again before it is re-examined.
        """
        while self._ready_heap:
            finish, start, fid, fstate = heapq.heappop(self._ready_heap)
            if not fstate.queue:
                fstate.ready = False
                continue
            key = self._head_key(fstate)
            if (finish, start, fid) != key:
                heapq.heappush(self._ready_heap, (*key, fstate))
                continue
            fstate.ready = False
            return fstate
        return None

    def _dispatch_loop(self) -> None:
        while True:
            with self._qlock:
                # WFQ across tenants: of every file's head operation,
                # run the one with the smallest virtual finish tag.
                # Only heads are eligible, so per-file FIFO order is
                # preserved no matter how the tags interleave.
                while True:
                    fstate = self._pop_ready_locked()
                    if fstate is not None or self._closed:
                        break
                    self._not_empty.wait()
                if fstate is None:
                    return  # closed and drained
                head = fstate.queue.popleft()
                self._vtime = max(self._vtime, head.wfq_start)
                batch = [head]
                if head.kind == "write":
                    while (
                        len(batch) < self.max_batch
                        and fstate.queue
                        and _batch_compatible(fstate.queue[0], batch)
                    ):
                        batch.append(fstate.queue.popleft())
                self._account_dispatch_locked(batch)
                self._requeue_if_ready_locked(fstate)
            if (
                head.kind == "write"
                and self.batch_window_s > 0
                and len(batch) < self.max_batch
            ):
                self._linger(fstate, batch)
            # Lock registration in per-file admission order fixes
            # same-file ordering *before* workers race to execute.
            mode = "r" if head.kind == "read" else "w"
            lticket = fstate.lock.register(mode, tag=fstate.file_id)
            registered = time.perf_counter()
            for op in batch:
                op.registered_at = registered
            self._slots.acquire()
            self._pool.submit(self._run_batch, fstate, batch, lticket)

    def _linger(self, fstate: _FileState, batch: List[_Op]) -> None:
        """Hold a short write batch open for late arrivals *on the same
        file* that extend it."""
        deadline = time.perf_counter() + self.batch_window_s
        with self._qlock:
            while len(batch) < self.max_batch:
                if fstate.queue:
                    if _batch_compatible(fstate.queue[0], batch):
                        op = fstate.queue.popleft()
                        batch.append(op)
                        self._account_dispatch_locked([op])
                        continue
                    break  # incompatible head: dispatch what we have
                if self._closed:
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._not_empty.wait(remaining)
            # Any heap entry this file gained from admissions during
            # the linger now points at a drained (or changed) head; the
            # pop-time lazy check discards or refreshes it.

    # -- execution -----------------------------------------------------------

    def _run_batch(
        self, fstate: _FileState, batch: List[_Op], lticket: LockTicket
    ) -> None:
        lock = fstate.lock
        # Flight recorder: when armed, the batch's dispatch, lock grant
        # and release land in the crash-surviving ring (one 64-byte
        # store each).  Unarmed cost: one global read per batch.
        rec = flightrec.active()
        fkey = rec.file_key(fstate.name) if rec is not None else 0
        lock_recorded = False
        try:
            if rec is not None and len(batch) > 1:
                # Singleton batches skip the dispatch event — their
                # op_start says the same thing for half the hot-path
                # cost on unbatched workloads.
                head0 = batch[0]
                rec.record(
                    flightrec.EV_BATCH,
                    trace=flightrec.trace_num(head0.ticket.trace_id),
                    tseq=head0.ticket.seq,
                    tenant=rec.tenant_key(head0.tenant),
                    file=fkey,
                    a=len(batch),
                )
            blocked = not lticket.granted
            if blocked:
                # Blocked: same-file contention by construction.  The
                # cross-file counter verifies that construction — any
                # active holder tagged with another file id would be a
                # serialization bug, and the stress suite pins it at 0.
                self._m_lock_blocked.inc()
                if any(
                    tag != fstate.file_id for tag in lock.active_tags()
                ):
                    self._m_cross_file.inc()
            lock.wait(lticket)
            if rec is not None and (blocked or len(batch) > 1):
                # Grant/release are recorded for contended grants and
                # multi-op batches — the holds forensics cannot infer.
                # An uncontended singleton's hold is exactly its op
                # window, so op_start-without-finish already names it
                # as the holder at death; skipping its two lock events
                # halves the recorder's cost on unbatched workloads
                # and stretches the ring's retention horizon.
                lock_recorded = True
                rec.record(
                    flightrec.EV_LOCK_GRANT,
                    file=fkey,
                    a=0 if batch[0].kind == "read" else 1,
                )
            started = time.perf_counter()
            head = batch[0]
            with open_span(
                "service.batch",
                kind=head.kind,
                file=head.name,
                file_id=fstate.file_id,
                tenant=head.tenant,
                size=len(batch),
                trace_id=head.ticket.trace_id,
            ) as root:
                for op in batch:
                    op.ticket.wait_s = started - op.admitted_at
                    op.ticket.batched_with = len(batch)
                    registered = op.registered_at or started
                    root.record(
                        "queue_wait",
                        max(0.0, registered - op.admitted_at),
                        trace_id=op.ticket.trace_id,
                        seq=op.ticket.seq,
                    )
                    root.record(
                        "lock_acquire",
                        max(0.0, started - registered),
                        trace_id=op.ticket.trace_id,
                        seq=op.ticket.seq,
                    )
                    self._m_wait_s.observe(
                        op.ticket.wait_s,
                        trace_id=op.ticket.trace_id,
                        seq=op.ticket.seq,
                    )
                    fstate.h_wait_s.observe(op.ticket.wait_s)
                    tstate = self._tenants.get(op.tenant)
                    if tstate is not None:
                        tstate.h_wait_s.observe(op.ticket.wait_s)
                    # Publish the tree before execution: tickets resolve
                    # inside _execute, and a client may ask for its
                    # timeline the instant result() returns.
                    op.ticket.trace = root
                try:
                    # The engine tags its operation root with the bound
                    # trace id, tying the whole batch (head's id names
                    # the engine call; per-op records carry their own).
                    with trace_context(head.ticket.trace_id):
                        self._execute(batch)
                    self._m_completed.inc(len(batch))
                except BaseException as exc:
                    for op in batch:
                        if not op.ticket.done():
                            op.ticket._fail(exc)
                    self._m_failed.inc(len(batch))
        finally:
            if lock_recorded:
                rec.record(flightrec.EV_LOCK_RELEASE, file=fkey)
            lock.release(lticket)
            self._slots.release()
            with self._qlock:
                self._pending -= len(batch)
                if not self._pending:
                    self._idle.notify_all()

    def _execute(self, batch: List[_Op]) -> None:
        head = batch[0]
        rec = flightrec.active()
        fkey = rec.file_key(head.name) if rec is not None else 0
        if head.kind == "write":
            self._m_batches.inc()
            self._m_batch_size.observe(
                len(batch), trace_id=head.ticket.trace_id
            )
            if rec is not None:
                # trace/tenant keys computed once per op, shared with
                # the finish records below.
                fmeta = [
                    (
                        flightrec.trace_num(op.ticket.trace_id),
                        rec.tenant_key(op.tenant),
                    )
                    for op in batch
                ]
                for op, (tnum, tkey) in zip(batch, fmeta):
                    rec.record(
                        flightrec.EV_OP_START,
                        trace=tnum,
                        tseq=op.ticket.seq,
                        tenant=tkey,
                        file=fkey,
                        a=op.offset,
                        b=op.data.size,
                    )
            accesses = [(op.node, op.offset, op.data) for op in batch]
            result = self.fs.write(head.name, accesses, to_disk=head.to_disk)
            if self.durability is not None:
                # Group commit rides the batch: one commit record per
                # engine call, stamped with the batch's ticket seqs,
                # flushed *before* any ticket resolves — the ack is the
                # commit point.  The file lock is still held here, so
                # the redo payloads read back from the stores are
                # exactly this batch's post-state.
                self.durability.commit_write(
                    self.fs,
                    head.name,
                    [
                        (op.ticket.seq, op.node, op.offset, op.data.size)
                        for op in batch
                    ],
                )
            for i, op in enumerate(batch):
                # Finish lands in the ring *before* the ticket resolves:
                # every acknowledged write is provably present in the
                # recorder's event stream (the forensics ack-coverage
                # check in the chaos harness relies on this ordering).
                if rec is not None:
                    tnum, tkey = fmeta[i]
                    rec.record(
                        flightrec.EV_OP_FINISH,
                        trace=tnum,
                        tseq=op.ticket.seq,
                        tenant=tkey,
                        file=fkey,
                        a=op.offset,
                        b=0,
                    )
                op.ticket._resolve(result)
        elif head.kind == "read":
            if rec is not None:
                rec.record(
                    flightrec.EV_OP_START,
                    trace=flightrec.trace_num(head.ticket.trace_id),
                    tseq=head.ticket.seq,
                    tenant=rec.tenant_key(head.tenant),
                    file=fkey,
                    a=head.offset,
                    b=head.length,
                )
            [buf] = self.fs.read(
                head.name,
                [(head.node, head.offset, head.length)],
                from_disk=head.from_disk,
            )
            if rec is not None:
                rec.record(
                    flightrec.EV_OP_FINISH,
                    trace=flightrec.trace_num(head.ticket.trace_id),
                    tseq=head.ticket.seq,
                    tenant=rec.tenant_key(head.tenant),
                    file=fkey,
                    a=head.offset,
                    b=0,
                )
            head.ticket._resolve(buf)
        elif head.kind == "relayout":
            # Capture the file's views: relayout invalidates them (their
            # projections referred to the old subfiles) and the service
            # re-establishes each against the new layout.
            saved = [
                (node, v.logical, v.element)
                for (n, node), v in list(self.fs.views.items())
                if n == head.name
            ]
            result = relayout(self.fs, head.name, head.new_physical)
            for node, logical, element in saved:
                self.fs.set_view(head.name, node, logical, element)
            if self.durability is not None:
                # A re-layout changes the physical partition the redo
                # records' subfile offsets refer to, so it is a
                # checkpoint boundary: snapshot the (logically
                # unchanged) contents and restart the journals against
                # the new partition before acknowledging.
                self.durability.checkpoint(self.fs, head.name)
            head.ticket._resolve(result)
        else:  # pragma: no cover - _admit only builds the three kinds
            raise AssertionError(f"unknown operation kind {head.kind!r}")
