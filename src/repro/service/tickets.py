"""Tickets: the client's handle on one admitted service operation.

A ticket is a single-assignment future.  The service resolves it from a
worker thread exactly once — with the operation's result or with the
exception that killed it — and every waiter unblocks.  Tickets also
carry the per-operation service facts the stress tests reconcile
against the metrics registry: the *per-file* sequence number (total
order within one file, deliberately unordered across files so
independent files never serialise on a shared counter), the file id
and tenant the operation was admitted under, the wait time from
admission to execution start, and the size of the batch the operation
rode in.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from ..obs.context import new_trace_id

__all__ = ["ServiceError", "ServiceClosed", "ServiceOverloaded", "Ticket"]


class ServiceError(RuntimeError):
    """Base class for service-layer failures."""


class ServiceClosed(ServiceError):
    """The service is shut down and accepts no new operations."""


class ServiceOverloaded(ServiceError):
    """Admission control rejected the operation (queue full)."""


# Guards lazy creation of per-ticket wait events.  One process-wide
# lock suffices: it is only taken on the slow path (a client actually
# blocking on an unresolved ticket), never during admission or resolve.
_EVENT_GUARD = threading.Lock()


class Ticket:
    """A single-assignment future for one admitted operation."""

    __slots__ = (
        "seq",
        "kind",
        "file",
        "file_id",
        "tenant",
        "trace_id",
        "trace",
        "wait_s",
        "batched_with",
        "_done",
        "_event",
        "_value",
        "_error",
    )

    def __init__(
        self,
        seq: int,
        kind: str,
        file: str,
        file_id: int = 0,
        tenant: str = "default",
    ):
        #: Per-file admission sequence number — a total order *within*
        #: the ticket's file.  Two tickets on different files are
        #: deliberately incomparable: independent files share no
        #: counter, so they never serialise at admission.
        self.seq = seq
        #: Operation kind: ``"write"``, ``"read"`` or ``"relayout"``.
        self.kind = kind
        #: File (backing name) the operation targets.
        self.file = file
        #: Stable file id (namespace inode id, or the service's own
        #: per-name id when no namespace is attached).
        self.file_id = file_id
        #: Tenant the operation was admitted under (quotas, WFQ).
        self.tenant = tenant
        #: Process-unique trace id linking this operation's service-side
        #: spans to the engine span tree it executed in (see
        #: :func:`repro.service.request_timeline`).
        self.trace_id = new_trace_id()
        #: The ``service.batch`` span tree the operation rode in (set by
        #: the worker before execution; ``None`` until dispatched).
        self.trace = None
        #: Seconds from admission to execution start (set on resolve).
        self.wait_s = 0.0
        #: Number of requests in the engine call this operation rode in
        #: (1 for reads/relayouts, >= 1 for coalesced writes).
        self.batched_with = 1
        self._done = False
        # Allocated lazily by the first blocking waiter: most tickets
        # in a bulk workload are never individually waited on (clients
        # drain() instead), and an Event per admission is measurable on
        # the hot path.
        self._event: Optional[threading.Event] = None
        self._value: Any = None
        self._error: Optional[BaseException] = None

    # -- client side ---------------------------------------------------------

    def done(self) -> bool:
        return self._done

    def _wait(self, timeout: float | None) -> None:
        if self._done:
            return
        with _EVENT_GUARD:
            if self._event is None:
                self._event = threading.Event()
        # Publish-then-recheck pairs with resolve's set-then-read: under
        # the interpreter's total bytecode order at least one side sees
        # the other's write, so a resolved ticket can never be missed.
        if self._done:
            return
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"operation {self.kind}#{self.seq} on {self.file!r} "
                f"not done after {timeout}s"
            )

    def result(self, timeout: float | None = None) -> Any:
        """Block until resolved; re-raises the operation's failure."""
        self._wait(timeout)
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: float | None = None) -> Optional[BaseException]:
        """Block until resolved; the failure, or None on success."""
        self._wait(timeout)
        return self._error

    # -- service side --------------------------------------------------------

    def _finish(self) -> None:
        self._done = True
        event = self._event
        if event is not None:
            event.set()

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._finish()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._finish()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "pending"
            if not self.done()
            else ("failed" if self._error is not None else "done")
        )
        return f"Ticket({self.kind}#{self.seq} {self.file!r} {state})"
