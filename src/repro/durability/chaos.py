"""Kill-and-restart chaos: SIGKILL the service, recover, diff.

The scenario the journal exists for, run end-to-end as a differential
test:

1. a **victim subprocess** (:mod:`repro.durability.victim`) hosts a
   journaled :class:`~repro.service.FileService` over a deterministic,
   seeded workload.  Every resolved ticket is appended to an *ack log*
   (flushed per line) — the ground truth of what the service promised;
2. the parent SIGKILLs the victim at a randomized point — by wall
   time or after the N-th ack, landing mid-batch, mid-group-commit or
   mid-snapshot (the workload sprinkles re-layout checkpoints in);
3. the parent recovers the journal root into a fresh deployment and
   compares, per file and per byte, against a **serial replay** of the
   replayed-seq prefix on a third, journal-free deployment — the same
   oracle discipline the engine's property tests use;
4. the invariants: every *acked* seq was replayed (no lost ack), the
   replayed seqs form a contiguous admission-order prefix (no holes —
   group commits land in per-file FIFO order), and recovered bytes
   equal the serial replay exactly.

Everything is a pure function of the seed, so a failing run replays
exactly — the report carries the seed, the kill point, and the
per-file verdicts.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..clusterfile.fs import Clusterfile
from ..core.falls import Falls
from ..core.partition import Partition
from ..obs import metrics as obs_metrics
from ..simulation.cluster import ClusterConfig
from .manager import DurabilityManager

__all__ = ["kill_workload", "run_kill_restart", "run_kill_restart_sweep"]


def _cyclic(elements: int, chunk: int) -> Partition:
    period = elements * chunk
    return Partition(
        [
            Falls(e * chunk, (e + 1) * chunk - 1, period, 1)
            for e in range(elements)
        ]
    )


def kill_workload(
    seed: int,
    nprocs: int = 4,
    files: int = 2,
    n_ops: int = 160,
    max_len: int = 96,
    domain: int = 2048,
) -> Tuple[Partition, Partition, List[Tuple[int, int, int, np.ndarray]]]:
    """The deterministic victim workload: ``(logical, physical, ops)``.

    ``ops`` is ``[(file_idx, node, view_offset, payload), ...]`` in
    submission order; ops are admitted round-robin across ``files``
    files, so op ``i`` on file ``f`` has per-file seq ``i // files``.
    Both the victim and the parent's serial-replay oracle derive the
    exact same list from the seed.
    """
    rng = np.random.default_rng(seed)
    logical = _cyclic(nprocs, 16)
    physical = _cyclic(nprocs, 32)
    ops = []
    for i in range(n_ops):
        node = int(rng.integers(nprocs))
        offset = int(rng.integers(domain))
        length = int(rng.integers(1, max_len + 1))
        payload = rng.integers(0, 256, length, dtype=np.uint8)
        ops.append((i % files, node, offset, payload))
    return logical, physical, ops


def _file_name(idx: int) -> str:
    return f"victim-f{idx}"


def victim_schedule(
    ops, files: int, snapshot_every: int
) -> Dict[str, List[Tuple[int, int, int, np.ndarray]]]:
    """Reproduce the victim's per-file seq assignment.

    Returns ``{file name: [(seq, node, offset, payload), ...]}`` for
    the *write* ops only.  Interleaved re-layouts (every
    ``snapshot_every`` submissions) consume a seq on their file, so
    write seqs are not simply 0..n-1 — the oracle must assign them the
    way the victim's single submitter thread does.
    """
    next_seq = {f: 0 for f in range(files)}
    out: Dict[str, List[Tuple[int, int, int, np.ndarray]]] = {
        _file_name(f): [] for f in range(files)
    }
    for i, (f, node, offset, payload) in enumerate(ops):
        if snapshot_every and i and i % snapshot_every == 0:
            next_seq[f] += 1  # the relayout ticket's seq
        out[_file_name(f)].append((next_seq[f], node, offset, payload))
        next_seq[f] += 1
    return out


def _setup_deployment(
    nprocs: int, files: int, logical: Partition, physical: Partition
) -> Clusterfile:
    fs = Clusterfile(ClusterConfig())
    for f in range(files):
        fs.create(_file_name(f), physical)
        for node in range(nprocs):
            fs.set_view(_file_name(f), node, logical, element=node)
    return fs


def _read_acks(path: str, files: int) -> Dict[str, List[int]]:
    """The ack log as ``{file name: [seq, ...]}`` (a torn final line —
    the writer died mid-append — is ignored, like any torn tail)."""
    acked: Dict[str, List[int]] = {_file_name(f): [] for f in range(files)}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            raw = fh.read()
    except OSError:
        return acked
    for line in raw.split("\n")[:-1]:  # drop the unterminated tail
        try:
            name, seq = line.rsplit(",", 1)
            acked.setdefault(name, []).append(int(seq))
        except ValueError:
            continue
    return acked


def run_kill_restart(
    seed: int,
    nprocs: int = 4,
    files: int = 2,
    n_ops: int = 160,
    kill_mode: str = "time",
    kill_after_acks: Optional[int] = None,
    op_delay_s: float = 0.0015,
    max_batch: int = 4,
    batch_window_s: float = 0.002,
    snapshot_every: int = 0,
    workdir: Optional[str] = None,
    timeout_s: float = 60.0,
) -> Tuple[Dict[str, object], bool]:
    """One kill-and-restart run; returns ``(report, ok)``.

    ``kill_mode="time"`` kills at a seed-derived fraction of the
    victim's expected runtime; ``"acks"`` polls the ack log and kills
    right after the ``kill_after_acks``-th acknowledgment (a
    seed-derived count when ``None``) — the sharpest way to land on a
    group-commit boundary.  ``snapshot_every`` > 0 interleaves
    same-partition re-layouts (checkpoint boundaries) every that many
    submissions, so kills also land mid-snapshot.
    """
    rng = np.random.default_rng(seed ^ 0x5EED)
    owned = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="repro-killchaos-")
    root = os.path.join(workdir, "journal")
    acked_path = os.path.join(workdir, "acked.log")
    flight_path = os.path.join(workdir, "flight.ring")
    spec = {
        "root": root,
        "acked_path": acked_path,
        "flightrec": flight_path,
        "seed": seed,
        "nprocs": nprocs,
        "files": files,
        "n_ops": n_ops,
        "op_delay_s": op_delay_s,
        "max_batch": max_batch,
        "batch_window_s": batch_window_s,
        "snapshot_every": snapshot_every,
    }
    spec_path = os.path.join(workdir, "spec.json")
    with open(spec_path, "w", encoding="utf-8") as fh:
        json.dump(spec, fh)

    src_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.durability.victim", spec_path],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    kill_point: Dict[str, object] = {"mode": kill_mode}
    killed = False
    try:
        # The victim prints READY once the service is up; kill timing
        # starts there so process start-up noise never skews it.
        line = proc.stdout.readline()
        if "READY" not in line:
            out, err = proc.communicate(timeout=timeout_s)
            raise RuntimeError(
                f"victim failed to start: {line!r} {out!r} {err!r}"
            )
        if kill_mode == "acks":
            target = kill_after_acks or int(rng.integers(1, max(2, n_ops)))
            kill_point["after_acks"] = target
            deadline = time.monotonic() + timeout_s
            while time.monotonic() < deadline:
                acked_now = sum(
                    len(v) for v in _read_acks(acked_path, files).values()
                )
                if acked_now >= target or proc.poll() is not None:
                    break
                time.sleep(0.0005)
        else:
            expected = n_ops * op_delay_s
            delay = float(rng.uniform(0.02, max(0.05, expected)))
            kill_point["after_s"] = delay
            time.sleep(delay)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
            killed = True
        proc.wait(timeout=timeout_s)
    finally:
        if proc.poll() is None:  # pragma: no cover - timeout safety net
            proc.kill()
            proc.wait()

    acked = _read_acks(acked_path, files)
    logical, physical, ops = kill_workload(
        seed, nprocs=nprocs, files=files, n_ops=n_ops
    )
    schedule = victim_schedule(ops, files, snapshot_every)

    # Post-mortem forensics: decode the victim's flight ring — from
    # the mmap file alone, no journal access — into its "last words",
    # and cross-check it against the ack log.  The service records each
    # op_finish *before* resolving its ticket, so every acked (file,
    # seq) must appear in the ring (modulo wrap: the ring is bounded,
    # so a wrapped run can only be checked for its newest acks), and a
    # SIGKILL must never yield a misparsed record — only counted torn
    # slots, of which a single 64-byte store leaves at most one.
    blackbox: Dict[str, object] = {}
    blackbox_ok = True
    try:
        from ..obs.forensics import decode_ring, finished_ops, reconstruct

        dump = decode_ring(flight_path)
        blackbox = reconstruct(dump)
        finished = finished_ops(dump)
        missing: Dict[str, List[int]] = {}
        for fname, seqs in acked.items():
            have = finished.get(fname, set())
            required = seqs if not dump.wrapped else seqs[-1:]
            gone = [s for s in required if s not in have]
            if gone:
                missing[fname] = gone
        if missing:
            blackbox["missing_acks"] = missing
            blackbox_ok = False
        blackbox_ok = blackbox_ok and dump.torn == 0
    except (OSError, ValueError) as exc:
        blackbox = {"error": str(exc)}
        blackbox_ok = False

    # Restart: recover the journal root into a fresh deployment.
    manager = DurabilityManager(root)
    fs = Clusterfile(ClusterConfig())
    report_files: Dict[str, object] = {}
    ok = True
    recovery = manager.recover_into(fs)
    for f in range(files):
        name = _file_name(f)
        rec = recovery.get(name, {})
        verdict = _verify_file(
            fs, name, nprocs, logical, physical, schedule[name],
            acked.get(name, []), int(rec.get("stamp", -1)),
        )
        ok = ok and verdict["ok"]
        verdict.update(
            {
                "records_replayed": rec.get("records_replayed", 0),
                "tail_bytes_discarded": rec.get("tail_bytes_discarded", 0),
                "recovery_time_s": rec.get("time_s", 0.0),
            }
        )
        report_files[name] = verdict
    manager.close()
    ok = ok and blackbox_ok
    report = {
        "seed": seed,
        "nprocs": nprocs,
        "files": files,
        "n_ops": n_ops,
        "kill_point": kill_point,
        "kill_mode": kill_mode,
        "killed": killed,
        "acked": {k: len(v) for k, v in acked.items()},
        "total_acked": sum(len(v) for v in acked.values()),
        "files_report": report_files,
        "durability": obs_metrics.snapshot("durability"),
        "blackbox": blackbox,
        "blackbox_ok": blackbox_ok,
        "ok": ok,
    }
    if owned and ok:
        _cleanup(workdir)
    else:
        report["workdir"] = workdir
    return report, ok


def _verify_file(
    fs: Clusterfile,
    name: str,
    nprocs: int,
    logical: Partition,
    physical: Partition,
    stamped_ops: List[Tuple[int, int, int, np.ndarray]],
    acked: List[int],
    stamp: int,
) -> Dict[str, object]:
    """The differential invariants for one file (module docstring).

    ``stamp`` — the recovered commit stamp — names the boundary of the
    durable prefix: group commits land in per-file admission order, so
    the recovered state must equal a serial replay of exactly the
    write ops with ``seq <= stamp``.  Every *acked* seq must lie at or
    below it (the ack followed the commit), and nothing above it may
    survive (no resurrected unacknowledged writes): both directions
    reduce to the byte comparison against the stamp-bounded replay.
    """
    acked_set = set(acked)
    write_seqs = {seq for seq, _n, _o, _p in stamped_ops}
    acked_covered = all(a <= stamp for a in acked_set)
    # Serial replay of the committed prefix on a journal-free twin.
    oracle = Clusterfile(ClusterConfig())
    oracle.create(name, physical)
    for node in range(nprocs):
        oracle.set_view(name, node, logical, element=node)
    replayed = 0
    for seq, node, offset, payload in stamped_ops:
        if seq <= stamp:
            oracle.write(name, [(node, offset, payload)])
            replayed += 1
    if name in fs.files:
        got = fs.linear_contents(name)
        want = oracle.linear_contents(name)
        n = min(got.size, want.size)
        byte_identical = bool(
            np.array_equal(got[:n], want[:n])
            and not got[n:].any()
            and not want[n:].any()
        )
    else:
        byte_identical = not acked_set
    return {
        "ok": bool(acked_covered and byte_identical),
        "acked": len(acked_set),
        "stamp": stamp,
        "writes_in_prefix": replayed,
        "writes_total": len(write_seqs),
        "acked_covered": bool(acked_covered),
        "byte_identical": bool(byte_identical),
    }


def _cleanup(workdir: str) -> None:
    for dirpath, dirnames, filenames in os.walk(workdir, topdown=False):
        for fn in filenames:
            try:
                os.remove(os.path.join(dirpath, fn))
            except OSError:
                pass
        try:
            os.rmdir(dirpath)
        except OSError:
            pass


def run_kill_restart_sweep(
    seeds: Sequence[int],
    nprocs: int = 4,
    files: int = 2,
    n_ops: int = 160,
    snapshot_every: int = 0,
    alternate_modes: bool = True,
    **kwargs,
) -> Tuple[List[Dict[str, object]], bool]:
    """A multi-seed kill-and-restart sweep (CLI + CI entry point).

    With ``alternate_modes`` odd seeds kill by ack count and even seeds
    by wall time, covering both boundary-aligned and arbitrary kills.
    """
    reports = []
    all_ok = True
    for seed in seeds:
        mode = "acks" if (alternate_modes and seed % 2) else "time"
        report, ok = run_kill_restart(
            seed,
            nprocs=nprocs,
            files=files,
            n_ops=n_ops,
            kill_mode=mode,
            snapshot_every=snapshot_every,
            **kwargs,
        )
        reports.append(report)
        all_ok = all_ok and ok
    return reports, all_ok
