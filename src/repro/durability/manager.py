"""The durability manager: group commit, checkpoints, recovery.

:class:`DurabilityManager` owns one directory tree of per-file journal
state::

    <root>/<quoted file name>/
        manifest.json   # partition, replication, epoch, last stamp
        snapshot.bin    # serial-equivalent logical snapshot (atomic)
        sf<k>.wal       # per-subfile redo journals (CRC-chained)
        commit.wal      # per-file commit log (group-commit boundaries)

The protocol is redo-only write-ahead logging with the *ack* as the
commit point:

* **Group commit** — :meth:`commit_write` is called once per executed
  service batch (riding the service's existing batch coalescing), with
  the per-file lock still held.  It appends one redo record per touched
  subfile segment (stamp = the operation's ticket seq, payload = the
  subfile bytes after the batch), flushes the touched data journals,
  then appends a single commit record naming every data journal's
  length (its *cut*) and the batch's seqs, and flushes that.  Only
  after both flushes does the service resolve the batch's tickets — so
  an acknowledged write is always covered by a commit record whose data
  records reached the OS first.
* **Recovery** — :meth:`recover_into` rebuilds every manifested file:
  load the snapshot (if any), scan the commit log, pick the **latest
  commit whose cuts are fully satisfied** by the intact prefixes of
  the data journals, and replay exactly the records inside those cuts,
  in order.  Torn tails beyond the chosen cuts are crash debris —
  counted (``durability.recovery.tail_bytes_discarded``) and dropped,
  never an error.  A corrupt *snapshot* or unreadable manifest raises
  :class:`RecoveryError` — that is data loss, not debris.  Recovery
  ends by checkpointing the recovered state, so the journals restart
  empty at a bumped epoch.
* **Checkpoint** — write the snapshot (atomic rename), then the
  manifest at ``epoch + 1``, then fresh journals stamped with the new
  epoch.  A kill between any two steps recovers consistently: a new
  snapshot with an old manifest replays old-epoch records that are
  idempotent over it (redo payloads capture post-state), and a new
  manifest with old journals invalidates them by epoch mismatch.

Because redo payloads are captured *after* the batch applied (from the
subfile stores, under the file lock), replaying a prefix of commits
reproduces exactly the store state after that prefix's last batch —
byte-identical to a serial re-execution of the acknowledged operations,
which is what the differential chaos suite asserts.
"""

from __future__ import annotations

import json
import os
import time
import urllib.parse
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..clusterfile.engine import IOEngine
from ..core.serialize import partition_from_obj, partition_to_obj
from ..obs import flightrec
from ..obs import metrics as obs_metrics
from .journal import (
    HEADER_SIZE,
    KIND_COMMIT,
    KIND_DATA,
    JournalWriter,
    REC_COMMIT,
    REC_WRITE,
    RecoveryError,
    scan_journal,
)
from .snapshot import read_snapshot_file, write_snapshot_file

__all__ = ["DurabilityManager", "MANIFEST_NAME", "SNAPSHOT_NAME"]

MANIFEST_NAME = "manifest.json"
SNAPSHOT_NAME = "snapshot.bin"
COMMIT_LOG = "commit.wal"

#: Directory reserved for namespace metadata state (no file manifest).
NAMESPACE_DIR = "_namespace"

#: Redo segments of one batch within a subfile merge into a single
#: spanning record when the gap between them is at most this many
#: bytes.  Payloads are post-batch state read back under the file
#: lock, so the interior gap bytes are equally correct to replay; the
#: bound caps journal bloat at GAP bytes per merged pair.
_COALESCE_GAP = 4096

#: Entries kept in the (view, offset, nbytes) -> touched-segments cache.
#: Real workloads revisit a small set of access shapes (fixed record
#: sizes at strided offsets), so the mapping math that turns a view
#: write into subfile segments — the dominant per-record commit cost —
#: hits this cache almost always; 4096 shapes outlasts any plausible
#: working set while bounding memory.
_SEGMENT_CACHE_CAPACITY = 4096


def _quote(name: str) -> str:
    """A filesystem-safe, collision-free directory name."""
    return urllib.parse.quote(name, safe="-_.")


def _canonical_json(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _manifest_text(manifest: Dict[str, object]) -> str:
    """Canonical manifest JSON with a self-checksum: ``crc`` is the
    CRC-32 of the canonical body without it, so a bit flip that happens
    to stay valid JSON is still detected at recovery."""
    import zlib

    body = _canonical_json(manifest)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return _canonical_json({**manifest, "crc": crc})


def _parse_manifest(text: str) -> Dict[str, object]:
    """Parse + verify a manifest; raises ``ValueError`` on damage."""
    import zlib

    m = json.loads(text)
    if not isinstance(m, dict):
        raise ValueError("manifest is not an object")
    if "crc" in m:
        crc = int(m.pop("crc"))
        body = _canonical_json(m)
        if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != crc:
            raise ValueError("manifest checksum mismatch")
    return m


def _atomic_write_text(path: str, text: str, sync: bool = False) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        if sync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)


class _FileJournal:
    """Open journal state for one file (writers + manifest facts)."""

    __slots__ = ("name", "dir", "epoch", "stamp", "data", "commit")

    def __init__(self, name: str, directory: str, epoch: int, stamp: int):
        self.name = name
        self.dir = directory
        self.epoch = epoch
        self.stamp = stamp  # highest committed seq (-1: none)
        self.data: Dict[int, JournalWriter] = {}
        self.commit: Optional[JournalWriter] = None

    def data_path(self, subfile: int) -> str:
        return os.path.join(self.dir, f"sf{subfile}.wal")

    def commit_path(self) -> str:
        return os.path.join(self.dir, COMMIT_LOG)

    def open_fresh(self, num_subfiles: int, sync: bool) -> None:
        """Truncate every journal to an empty file at self.epoch."""
        self.close_writers()
        for path in os.listdir(self.dir):
            # Journals from a previous partition (more subfiles) would
            # otherwise survive as stale epoch-mismatched files.
            if path.endswith(".wal") and path.startswith("sf"):
                os.remove(os.path.join(self.dir, path))
        self.data = {
            s: JournalWriter(self.data_path(s), KIND_DATA, subfile=s,
                             epoch=self.epoch, sync=sync)
            for s in range(num_subfiles)
        }
        self.commit = JournalWriter(self.commit_path(), KIND_COMMIT,
                                    epoch=self.epoch, sync=sync)

    def close_writers(self) -> None:
        for w in self.data.values():
            w.close()
        self.data = {}
        if self.commit is not None:
            self.commit.close()
            self.commit = None


class DurabilityManager:
    """Write-ahead journaling and crash recovery for one deployment.

    Parameters
    ----------
    root:
        Directory holding all journal state (created if absent).
    sync:
        ``False`` (default) flushes to the OS page cache on commit —
        sufficient for process-kill durability, which is the failure
        domain the chaos suite exercises.  ``True`` additionally fsyncs
        every commit (power-loss durability) at a large latency cost.
    """

    def __init__(self, root: str, sync: bool = False):
        self.root = root
        self.sync = sync
        os.makedirs(root, exist_ok=True)
        self._files: Dict[str, _FileJournal] = {}
        #: LRU of (id(view), offset, nbytes) -> (view, segments).  The
        #: stored view reference both validates the entry (same object,
        #: not a recycled id) and pins the id against reuse; a re-set
        #: view is a new object, so its stale entries simply age out.
        self._segments: "OrderedDict[Tuple[int, int, int], tuple]" = (
            OrderedDict()
        )
        self._m_records = obs_metrics.counter("durability.journal.records")
        self._m_bytes = obs_metrics.counter("durability.journal.bytes")
        self._m_commits = obs_metrics.counter("durability.journal.commits")
        self._m_snapshots = obs_metrics.counter("durability.snapshots")
        self._m_snap_bytes = obs_metrics.counter("durability.snapshot.bytes")
        self._m_rec_files = obs_metrics.counter("durability.recovery.files")
        self._m_rec_records = obs_metrics.counter(
            "durability.recovery.records_replayed"
        )
        self._m_rec_tail = obs_metrics.counter(
            "durability.recovery.tail_bytes_discarded"
        )
        self._h_commit_s = obs_metrics.histogram("durability.commit_s")
        self._h_commit_records = obs_metrics.histogram(
            "durability.commit.records"
        )
        self._h_recovery_s = obs_metrics.histogram(
            "durability.recovery.time_s"
        )

    # -- paths ----------------------------------------------------------------

    def file_dir(self, name: str) -> str:
        return os.path.join(self.root, _quote(name))

    def namespace_dir(self) -> str:
        return os.path.join(self.root, NAMESPACE_DIR)

    def last_stamp(self, name: str) -> int:
        """Highest committed seq for a file (-1 when none)."""
        fj = self._files.get(name)
        return -1 if fj is None else fj.stamp

    def journaled_files(self) -> List[str]:
        return sorted(self._files)

    # -- registration ---------------------------------------------------------

    def register_file(self, fs, name: str) -> _FileJournal:
        """Start journaling a file (idempotent).

        Registration *is* a checkpoint: the file's current logical
        state becomes the base snapshot and journaling starts from
        empty journals.  If the directory holds state from a previous
        process that was never recovered, its epoch is superseded — the
        old journals describe a history this process did not replay,
        and appending to them would interleave two incarnations.
        """
        fj = self._files.get(name)
        if fj is not None:
            return fj
        d = self.file_dir(name)
        os.makedirs(d, exist_ok=True)
        epoch, stamp = 0, -1
        manifest = os.path.join(d, MANIFEST_NAME)
        if os.path.exists(manifest):
            try:
                with open(manifest, "r", encoding="utf-8") as fh:
                    prev = _parse_manifest(fh.read())
                epoch = int(prev.get("epoch", 0)) + 1
                stamp = int(prev.get("stamp", -1))
            except (ValueError, OSError):
                epoch = 1  # unreadable: supersede whatever was there
        fj = _FileJournal(name, d, epoch, stamp)
        self._files[name] = fj
        self.checkpoint(fs, name)
        return fj

    def drop_file(self, name: str) -> None:
        """Forget a file and delete its journal directory (unlink)."""
        fj = self._files.pop(name, None)
        if fj is not None:
            fj.close_writers()
        d = self.file_dir(name)
        if os.path.isdir(d):
            for entry in os.listdir(d):
                os.remove(os.path.join(d, entry))
            os.rmdir(d)

    # -- group commit ---------------------------------------------------------

    def _touched_segments(
        self, fs, name: str, node: int, offset: int, nbytes: int
    ) -> List[Tuple[int, int, int]]:
        """The subfile byte segments one view write lands on, computed
        from the mapping functions exactly as the engine computes them
        (mode-independent: thread or process pool, batched or not).

        Cached per (view, offset, nbytes): the mapping math dominates
        the per-record commit cost, and workloads revisit a small set
        of access shapes, so the hit rate is effectively 100% in steady
        state — this is what keeps group commit inside its overhead
        budget on the coalesced write path."""
        view = fs.views[(name, node)]
        key = (id(view), offset, nbytes)
        hit = self._segments.get(key)
        if hit is not None and hit[0] is view:
            self._segments.move_to_end(key)
            return hit[1]
        lo, hi = offset, offset + nbytes - 1
        out: List[Tuple[int, int, int]] = []
        for link in view.links.values():
            starts, _lengths = link.proj_view.segments_in(lo, hi)
            if starts.size == 0:
                continue
            l_s, r_s = IOEngine._map_extremities(view, link, lo, hi)
            s_starts, s_lens = link.proj_subfile.segments_in(l_s, r_s)
            for a, n in zip(s_starts, s_lens):
                if n > 0:
                    out.append((link.subfile, int(a), int(n)))
        self._segments[key] = (view, out)
        if len(self._segments) > _SEGMENT_CACHE_CAPACITY:
            self._segments.popitem(last=False)
        return out

    def commit_write(
        self, fs, name: str, ops: Sequence[Tuple[int, int, int, int]]
    ) -> int:
        """Durably journal one executed write batch; returns the commit
        stamp.

        ``ops`` is ``[(seq, node, offset, nbytes), ...]`` in batch
        order.  Must be called *after* the batch applied to the stores
        and *before* its tickets resolve, with the file's lock held —
        the redo payloads are read back from the subfile stores, so
        every journaled byte carries the post-batch state.

        Because payloads are post-state and recovery replays whole
        commit groups in order, the batch's segments within a subfile
        can be *coalesced*: nearby segments (gap up to
        ``_COALESCE_GAP``) merge into one spanning record stamped with
        the batch's commit stamp — the interior bytes also read back
        post-batch state, so replaying the span is exactly as correct
        as replaying each piece, at a fraction of the per-record cost.
        """
        t0 = time.perf_counter()
        fj = self._files.get(name)
        if fj is None:
            fj = self.register_file(fs, name)
        if not ops:
            return fj.stamp
        stamp = max(op[0] for op in ops)
        # The commit being cut is itself an event: a SIGKILL between
        # commit_start and commit leaves a mid-commit marker in the
        # flight ring that forensics surfaces as "last words".
        rec = flightrec.active()
        fkey = rec.file_key(name) if rec is not None else 0
        if rec is not None:
            rec.record(
                flightrec.EV_COMMIT_START, file=fkey, a=stamp, b=len(ops)
            )
        stores = fs.open(name).stores
        writers = fj.data
        seg_of = self._touched_segments
        # Segment intervals per subfile, then coalesce and emit one
        # record per merged run — and one write syscall per touched
        # journal (append_many goes straight to the OS); flush() only
        # matters in sync (fsync) mode.
        per_subfile: Dict[int, list] = {}
        for seq, node, offset, nbytes in ops:
            if nbytes <= 0:
                continue
            for subfile, start, n in seg_of(fs, name, node, offset, nbytes):
                per_subfile.setdefault(subfile, []).append(
                    (start, start + n)
                )
        records = 0
        payload_bytes = 0
        for subfile, intervals in per_subfile.items():
            intervals.sort()
            merged = [list(intervals[0])]
            for a, b in intervals[1:]:
                last = merged[-1]
                if a <= last[1] + _COALESCE_GAP:
                    if b > last[1]:
                        last[1] = b
                else:
                    merged.append([a, b])
            store = stores[subfile]
            items = [
                (stamp, a, store.read_bytes(a, b - 1)) for a, b in merged
            ]
            writer = writers[subfile]
            writer.append_many(REC_WRITE, items)
            writer.flush()
            records += len(items)
            payload_bytes += sum(b - a for a, b in merged)
        # The commit body is compact JSON built by hand (keys in
        # subfile order, no whitespace): recovery only json.loads it,
        # and the string build costs a fraction of the encoder.
        cuts = ",".join(
            f'"{s}":{w.length}' for s, w in sorted(fj.data.items())
        )
        seqs = ",".join(str(s) for s in sorted(op[0] for op in ops))
        body = f'{{"cuts":{{{cuts}}},"seqs":[{seqs}]}}'
        fj.commit.append(REC_COMMIT, stamp, 0, body.encode("utf-8"))
        fj.commit.flush()
        fj.stamp = max(fj.stamp, stamp)
        if rec is not None:
            rec.record(flightrec.EV_COMMIT, file=fkey, a=stamp, b=records)
        self._m_records.inc(records)
        self._m_bytes.inc(payload_bytes)
        self._m_commits.inc()
        self._h_commit_records.observe(records)
        self._h_commit_s.observe(time.perf_counter() - t0)
        return stamp

    # -- checkpoint -----------------------------------------------------------

    def checkpoint(self, fs, name: str,
                   extra_meta: Optional[Dict[str, object]] = None) -> str:
        """Snapshot a file's logical state and restart its journals.

        The snapshot is serial-equivalent (see
        :mod:`repro.durability.snapshot`): its bytes depend only on the
        logical contents, never on the partition or writer layout —
        recovery bookkeeping (epoch, stamp, partition) lives in the
        manifest beside it.  Returns the snapshot path.
        """
        fj = self._files.get(name)
        if fj is None:
            fj = self.register_file(fs, name)
            return os.path.join(fj.dir, SNAPSHOT_NAME)
        cfile = fs.open(name)
        length = cfile.file_length()
        payload = cfile.linear_contents(length)
        meta = {"length": int(length)}
        if extra_meta:
            meta.update(extra_meta)
        snap_path = os.path.join(fj.dir, SNAPSHOT_NAME)
        size = write_snapshot_file(snap_path, payload, meta, sync=self.sync)
        fj.epoch += 1
        _atomic_write_text(
            os.path.join(fj.dir, MANIFEST_NAME),
            _manifest_text(
                {
                    "version": 1,
                    "name": name,
                    "partition": partition_to_obj(cfile.physical),
                    "replication": cfile.replication,
                    "epoch": fj.epoch,
                    "stamp": fj.stamp,
                }
            ),
            sync=self.sync,
        )
        fj.open_fresh(cfile.num_subfiles, self.sync)
        self._m_snapshots.inc()
        self._m_snap_bytes.inc(size)
        rec = flightrec.active()
        if rec is not None:
            rec.record(
                flightrec.EV_CHECKPOINT, file=rec.file_key(name), a=fj.epoch
            )
        return snap_path

    # -- recovery -------------------------------------------------------------

    def recover_into(self, fs) -> Dict[str, Dict[str, object]]:
        """Rebuild every manifested file into ``fs``; returns a per-file
        report (``stamp``, ``seqs`` replayed, records/tail counts).

        After recovery each file is checkpointed (snapshot of the
        recovered state, empty journals at a bumped epoch), so the
        manager is immediately ready to journal new writes.
        """
        report: Dict[str, Dict[str, object]] = {}
        if not os.path.isdir(self.root):
            return report
        for entry in sorted(os.listdir(self.root)):
            d = os.path.join(self.root, entry)
            manifest = os.path.join(d, MANIFEST_NAME)
            if not os.path.isdir(d) or not os.path.exists(manifest):
                continue
            t0 = time.perf_counter()
            try:
                with open(manifest, "r", encoding="utf-8") as fh:
                    m = _parse_manifest(fh.read())
                name = str(m["name"])
                partition = partition_from_obj(m["partition"])
                replication = int(m.get("replication", 1))
                epoch = int(m.get("epoch", 0))
            except (KeyError, TypeError, ValueError, OSError) as exc:
                raise RecoveryError(
                    f"manifest unreadable under {d!r}: {exc}"
                ) from exc
            if name in fs.files:
                fs.unlink(name)
            cfile = fs.create(name, partition, replication=replication)
            stamp = int(m.get("stamp", -1))
            snap_path = os.path.join(d, SNAPSHOT_NAME)
            loaded_snapshot = False
            if os.path.exists(snap_path):
                payload, _smeta = read_snapshot_file(snap_path)
                self._load_linear(cfile, payload)
                loaded_snapshot = True
            replayed, seqs, tail = self._replay_journals(
                cfile, d, epoch, partition.num_elements
            )
            if seqs:
                stamp = max(stamp, max(seqs))
            fj = _FileJournal(name, d, epoch, stamp)
            self._files[name] = fj
            self.checkpoint(fs, name)
            elapsed = time.perf_counter() - t0
            self._m_rec_files.inc()
            self._m_rec_records.inc(replayed)
            self._m_rec_tail.inc(tail)
            self._h_recovery_s.observe(elapsed)
            rec = flightrec.active()
            if rec is not None:
                rec.record(
                    flightrec.EV_RECOVERY,
                    file=rec.file_key(name),
                    a=replayed,
                    b=tail,
                )
            report[name] = {
                "stamp": stamp,
                "seqs": seqs,
                "records_replayed": replayed,
                "tail_bytes_discarded": tail,
                "snapshot_loaded": loaded_snapshot,
                "time_s": elapsed,
            }
        return report

    @staticmethod
    def _load_linear(cfile, payload: np.ndarray) -> None:
        """Distribute a linear snapshot payload into the subfile stores
        (mirrors included)."""
        from ..redistribution.executor import distribute

        pieces = distribute(payload, cfile.physical)
        for s, piece in enumerate(pieces):
            if piece.size == 0:
                continue
            for store in cfile.replica_stores(s):
                store.view(0, piece.size - 1)[:] = piece

    def _replay_journals(
        self, cfile, d: str, epoch: int, num_subfiles: int
    ) -> Tuple[int, List[int], int]:
        """Replay the journals under ``d`` into ``cfile``'s stores.

        Returns ``(records_replayed, committed_seqs, tail_discarded)``.
        """
        commit_scan = scan_journal(
            os.path.join(d, COMMIT_LOG),
            expect_kind=KIND_COMMIT,
            expect_epoch=epoch,
        )
        data_scans = {}
        for s in range(num_subfiles):
            data_scans[s] = scan_journal(
                os.path.join(d, f"sf{s}.wal"),
                expect_kind=KIND_DATA,
                expect_epoch=epoch,
            )
        # The latest commit whose cuts every data journal's intact
        # prefix satisfies.  Satisfiability is monotone (cuts only
        # grow), so the last satisfied commit covers all before it.
        chosen = None
        seqs: List[int] = []
        for rec in commit_scan.records:
            try:
                body = json.loads(rec.payload.decode("utf-8"))
                cuts = {int(k): int(v) for k, v in body["cuts"].items()}
                commit_seqs = [int(x) for x in body.get("seqs", [])]
            except (ValueError, KeyError, UnicodeDecodeError):
                break  # an unparsable commit ends the trusted prefix
            if any(
                data_scans.get(s) is None
                or data_scans[s].valid_bytes < cut
                for s, cut in cuts.items()
            ):
                break  # its data never fully reached the OS: torn group
            chosen = cuts
            seqs.extend(commit_seqs)
        replayed = 0
        tail = commit_scan.tail_discarded
        for s, scan in data_scans.items():
            cut = 0 if chosen is None else chosen.get(s, 0)
            stores = cfile.replica_stores(s)
            for rec in scan.records_until(cut):
                if rec.rtype != REC_WRITE:
                    continue
                buf = np.frombuffer(rec.payload, dtype=np.uint8)
                if buf.size == 0:
                    continue
                for store in stores:
                    store.view(
                        rec.offset, rec.offset + buf.size - 1
                    )[:] = buf
                replayed += 1
            # Everything beyond the chosen cut is uncommitted debris
            # (the 12-byte header is structure, not data).
            journal_total = scan.valid_bytes + scan.tail_discarded
            base = max(cut, HEADER_SIZE if scan.header_ok else 0)
            tail += max(0, journal_total - base)
        return replayed, sorted(set(seqs)), tail

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        for fj in self._files.values():
            fj.close_writers()

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
