"""The kill-chaos victim: a journaled service meant to die.

``python -m repro.durability.victim <spec.json>`` hosts a
:class:`~repro.service.FileService` with a
:class:`~repro.durability.DurabilityManager` over the deterministic
workload :func:`repro.durability.chaos.kill_workload` derives from the
spec's seed.  It prints ``READY`` when the service is up (the parent
starts its kill clock there), appends ``<file>,<seq>`` to the ack log
— flushed per line — the moment each ticket resolves, and prints
``DONE`` if it survives the whole workload.  It never handles signals:
the parent's SIGKILL is the point.

The ack log is written in per-file admission order by a single waiter
thread, so a torn final line is the only artifact a kill can leave in
it — exactly the torn-tail discipline the journals use.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from queue import Queue

from ..clusterfile.fs import Clusterfile
from ..obs import flightrec
from ..service.service import FileService
from ..simulation.cluster import ClusterConfig
from .chaos import _file_name, kill_workload
from .manager import DurabilityManager


def main(spec_path: str) -> int:
    with open(spec_path, "r", encoding="utf-8") as fh:
        spec = json.load(fh)
    if spec.get("flightrec"):
        # Armed before any service work: every op/commit/lock event of
        # this process's short life lands in the crash-surviving ring
        # the parent will decode after killing us.
        flightrec.arm(
            spec["flightrec"],
            capacity=int(spec.get("flightrec_capacity", 4096)),
        )
    nprocs = int(spec["nprocs"])
    files = int(spec["files"])
    logical, physical, ops = kill_workload(
        int(spec["seed"]), nprocs=nprocs, files=files,
        n_ops=int(spec["n_ops"]),
    )
    fs = Clusterfile(ClusterConfig())
    manager = DurabilityManager(spec["root"])
    for f in range(files):
        name = _file_name(f)
        fs.create(name, physical)
        for node in range(nprocs):
            fs.set_view(name, node, logical, element=node)
        manager.register_file(fs, name)
    svc = FileService(
        fs,
        workers=2,
        max_batch=int(spec.get("max_batch", 4)),
        batch_window_s=float(spec.get("batch_window_s", 0.0)),
        durability=manager,
    )

    ack_fh = open(spec["acked_path"], "w", encoding="utf-8")
    tickets: "Queue" = Queue()

    def _acker() -> None:
        # One writer, tickets in submission order: acks land in the
        # log in per-file admission order, and only after resolve —
        # i.e. only after the group commit that covers them.
        while True:
            item = tickets.get()
            if item is None:
                return
            item.result()
            ack_fh.write(f"{item.file},{item.seq}\n")
            ack_fh.flush()

    acker = threading.Thread(target=_acker, daemon=True)
    acker.start()

    print("READY", flush=True)
    op_delay = float(spec.get("op_delay_s", 0.0))
    snapshot_every = int(spec.get("snapshot_every", 0))
    for i, (f, node, offset, payload) in enumerate(ops):
        name = _file_name(f)
        if snapshot_every and i and i % snapshot_every == 0:
            # A same-partition re-layout: a checkpoint boundary under
            # the file lock, so kills land mid-snapshot too.
            svc.submit_relayout(name, physical)
        tickets.put(svc.submit_write(name, node, offset, payload))
        if op_delay:
            time.sleep(op_delay)
    svc.drain()
    tickets.put(None)
    acker.join()
    svc.close()
    manager.close()
    ack_fh.close()
    print("DONE", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1]))
