"""Durable namespace metadata: journaled ops + fold-to-snapshot.

The inode tree (:class:`repro.namespace.tree.Namespace`) lives in
memory; this module makes it outlive its process with the same
redo-journal + checkpoint discipline the data path uses:

* every metadata mutation (`mkdir`, `create`, `unlink`, `rmdir`,
  `rename`) appends one canonical-JSON op record to ``meta.wal``
  (kind :data:`~repro.durability.journal.KIND_META`) and flushes it
  *before* the call returns — an acknowledged metadata change is
  always on disk;
* a checkpoint folds the whole tree into one canonical snapshot
  (:mod:`repro.durability.snapshot` framing, JSON payload: inodes
  sorted by id plus the id allocator and change stamp) and restarts
  the journal empty at a bumped epoch;
* recovery loads the snapshot, replays the journal's intact record
  prefix through the ordinary ``Namespace`` methods, and checkpoints.

Replay reproduces **identical inode ids**: the snapshot restores the
``_next_id`` allocator, ids are allocated sequentially, and the journal
preserves op order — so every id-keyed structure downstream (service
queues, locks, ``fid-<id>`` backing names) binds to exactly the same
files after a restart.  Rename continuity is the same argument: a
rename record re-links the same id, so the backing name never changes.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from ..core.partition import Partition
from ..core.serialize import partition_from_obj, partition_to_obj
from ..obs import metrics as obs_metrics
from .journal import (
    KIND_META,
    JournalWriter,
    REC_META,
    RecoveryError,
    scan_journal,
)
from .snapshot import read_snapshot_file, write_snapshot_file

__all__ = ["NamespaceJournal"]

SNAPSHOT_FILE = "tree.bin"
JOURNAL_FILE = "meta.wal"

#: Inode-meta values that are library objects get tagged encodings so
#: the snapshot stays plain JSON a foreign tool can parse.
_PARTITION_TAG = "__partition__"


def _encode_meta(meta: Dict[str, object]) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for k, v in meta.items():
        if isinstance(v, Partition):
            out[k] = {_PARTITION_TAG: partition_to_obj(v)}
        else:
            out[k] = v
    return out


def _decode_meta(meta: Dict[str, object]) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for k, v in meta.items():
        if isinstance(v, dict) and _PARTITION_TAG in v:
            out[k] = partition_from_obj(v[_PARTITION_TAG])
        else:
            out[k] = v
    return out


def _canonical(obj) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


class NamespaceJournal:
    """Journal + snapshot persistence for one :class:`Namespace` tree.

    Construct via :meth:`open` (fresh start: checkpoints the given tree
    and journals from there) or :meth:`recover` (rebuild the tree from
    disk, then checkpoint).  Direct construction only sets up paths.
    """

    def __init__(self, root: str, sync: bool = False):
        self.root = root
        self.sync = sync
        os.makedirs(root, exist_ok=True)
        self.epoch = 0
        self._writer: Optional[JournalWriter] = None
        self._seq = 0
        self._m_records = obs_metrics.counter(
            "durability.journal.meta_records"
        )
        self._m_replayed = obs_metrics.counter(
            "durability.recovery.meta_ops_replayed"
        )

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.root, SNAPSHOT_FILE)

    @property
    def journal_path(self) -> str:
        return os.path.join(self.root, JOURNAL_FILE)

    # -- construction ---------------------------------------------------------

    @classmethod
    def open(cls, root: str, tree, sync: bool = False) -> "NamespaceJournal":
        """Start journaling ``tree`` (superseding any prior on-disk
        state — see :meth:`recover` to load it instead)."""
        nj = cls(root, sync=sync)
        if os.path.exists(nj.snapshot_path):
            try:
                _payload, meta = read_snapshot_file(nj.snapshot_path)
                nj.epoch = int(meta.get("epoch", 0))
            except RecoveryError:
                pass  # superseded by the checkpoint below anyway
        nj.checkpoint(tree)
        return nj

    @classmethod
    def recover(
        cls, root: str, cache_capacity: int = 1024, sync: bool = False
    ) -> Tuple[object, "NamespaceJournal", Dict[str, object]]:
        """Rebuild the tree from disk: ``(tree, journal, report)``.

        Missing state yields a fresh empty tree; a corrupt *snapshot*
        raises :class:`RecoveryError`; a torn journal tail is dropped
        and counted.  Ends with a checkpoint, so the returned journal
        is live and empty.
        """
        from ..namespace.tree import Namespace

        nj = cls(root, sync=sync)
        tree = Namespace(cache_capacity=cache_capacity)
        replayed = 0
        tail = 0
        if os.path.exists(nj.snapshot_path):
            payload, meta = read_snapshot_file(nj.snapshot_path)
            nj.epoch = int(meta.get("epoch", 0))
            cls._load_tree(tree, bytes(payload))
        scan = scan_journal(
            nj.journal_path, expect_kind=KIND_META, expect_epoch=nj.epoch
        )
        tail += scan.tail_discarded
        for rec in scan.records:
            if rec.rtype != REC_META:
                continue
            try:
                op = json.loads(rec.payload.decode("utf-8"))
            except ValueError:
                break  # treat like a torn tail: stop replaying
            cls._apply(tree, op)
            replayed += 1
        nj._m_replayed.inc(replayed)
        nj.checkpoint(tree)
        report = {"ops_replayed": replayed, "tail_bytes_discarded": tail}
        return tree, nj, report

    # -- journaling -----------------------------------------------------------

    def record(self, op: Dict[str, object]) -> None:
        """Durably append one metadata op (flushed before returning)."""
        if self._writer is None:
            raise ValueError("namespace journal not open; use open()/recover()")
        self._writer.append(REC_META, self._seq, 0, _canonical(op))
        self._writer.flush()
        self._seq += 1
        self._m_records.inc()

    def checkpoint(self, tree) -> None:
        """Fold the tree to a snapshot and restart the journal empty."""
        payload = self._dump_tree(tree)
        self.epoch += 1
        write_snapshot_file(
            self.snapshot_path,
            payload,
            {"kind": "namespace", "epoch": self.epoch},
            sync=self.sync,
        )
        if self._writer is not None:
            self._writer.close()
        self._writer = JournalWriter(
            self.journal_path, KIND_META, epoch=self.epoch, sync=self.sync
        )
        self._seq = 0

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    # -- tree <-> bytes -------------------------------------------------------

    @staticmethod
    def _dump_tree(tree) -> bytes:
        """The canonical JSON fold of the whole tree (ids sorted)."""
        with tree._lock:
            inodes = [
                {
                    "id": n.id,
                    "kind": n.kind,
                    "name": n.name,
                    "parent": n.parent,
                    "created": n.created,
                    "changed": n.changed,
                    "meta": _encode_meta(n.meta),
                }
                for _fid, n in sorted(tree._inodes.items())
            ]
            obj = {
                "version": 1,
                "next_id": tree._next_id,
                "stamp": tree._stamp,
                "inodes": inodes,
            }
        return _canonical(obj)

    @staticmethod
    def _load_tree(tree, payload: bytes) -> None:
        from ..namespace.tree import ROOT_ID, Inode

        try:
            obj = json.loads(payload.decode("utf-8"))
        except ValueError as exc:
            raise RecoveryError(
                f"namespace snapshot payload unreadable: {exc}"
            ) from exc
        if obj.get("version") != 1:
            raise RecoveryError(
                f"unsupported namespace snapshot version {obj.get('version')}"
            )
        with tree._lock:
            inodes: Dict[int, Inode] = {}
            children: Dict[int, Dict[str, int]] = {}
            for rec in obj["inodes"]:
                node = Inode(
                    id=int(rec["id"]),
                    kind=str(rec["kind"]),
                    name=str(rec["name"]),
                    parent=int(rec["parent"]),
                    created=int(rec["created"]),
                    changed=int(rec["changed"]),
                    meta=_decode_meta(rec.get("meta", {})),
                )
                inodes[node.id] = node
                if node.kind == "dir":
                    children[node.id] = {}
            if ROOT_ID not in inodes:
                raise RecoveryError("namespace snapshot has no root inode")
            for node in inodes.values():
                if node.id == ROOT_ID:
                    continue
                parent = children.get(node.parent)
                if parent is None:
                    raise RecoveryError(
                        f"inode {node.id} has non-directory parent "
                        f"{node.parent}"
                    )
                parent[node.name] = node.id
            tree._inodes = inodes
            tree._children = children
            tree._next_id = int(obj["next_id"])
            tree._stamp = int(obj["stamp"])
            tree.cache.clear()

    # -- op replay ------------------------------------------------------------

    @staticmethod
    def _apply(tree, op: Dict[str, object]) -> None:
        kind = op.get("op")
        if kind == "mkdir":
            tree.mkdir(str(op["path"]), parents=bool(op.get("parents")))
        elif kind == "create":
            meta = _decode_meta(op.get("meta", {}))
            tree.create(
                str(op["path"]), parents=bool(op.get("parents")), **meta
            )
        elif kind == "unlink":
            tree.unlink(str(op["path"]))
        elif kind == "rmdir":
            tree.rmdir(str(op["path"]))
        elif kind == "rename":
            tree.rename(str(op["src"]), str(op["dst"]))
        else:
            raise RecoveryError(f"unknown namespace journal op {kind!r}")
