"""Append-only, CRC-chained journal files (the write-ahead log).

One journal file is a 12-byte header followed by a sequence of records.
Every record's checksum covers its body *and* chains to the previous
record's checksum (the first record chains to the CRC of the header),
so a scan can tell three failure modes apart without any out-of-band
state:

* a **torn tail** — the process died mid-append: the last record is
  short or its CRC does not match.  The scan stops at the last intact
  record and reports how many tail bytes it discarded;
* **bit rot / overwrite** — a record's bytes changed after commit: its
  CRC breaks, and (because of chaining) so does every record after it;
* **cross-file confusion** — a journal replayed against the wrong
  subfile or epoch: the header carries both, and the scan refuses to
  yield records from a header that does not match what the reader
  expects.

The format is deliberately dumb: fixed little-endian framing,
``zlib.crc32`` (ubiquitous, fast, good enough for torn-write
detection — this is not a cryptographic log), and no compaction.
Compaction is the checkpoint's job: a snapshot plus *empty* journals at
a bumped epoch supersedes any journal content from earlier epochs.

Layout::

    header  := magic "RJL1" | kind u8 | version u8 | subfile u16 | epoch u32
    record  := crc u32 | body
    body    := prev_crc u32 | rtype u8 | stamp u64 | offset u64
               | length u32 | payload[length]

``crc = crc32(body)`` and ``prev_crc`` is the previous record's ``crc``
(the header's CRC for the first record) — the chain.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import BinaryIO, List, Optional, Sequence, Tuple

__all__ = [
    "JOURNAL_MAGIC",
    "JOURNAL_VERSION",
    "KIND_DATA",
    "KIND_COMMIT",
    "KIND_META",
    "REC_WRITE",
    "REC_COMMIT",
    "REC_META",
    "RecoveryError",
    "JournalRecord",
    "JournalScan",
    "JournalWriter",
    "scan_journal",
]

JOURNAL_MAGIC = b"RJL1"
JOURNAL_VERSION = 1

#: Journal *file* kinds (what stream this file is).
KIND_DATA = 1  # per-subfile redo data
KIND_COMMIT = 2  # per-file commit records (group-commit boundaries)
KIND_META = 3  # namespace metadata operations

#: Record types within a stream.
REC_WRITE = 1  # redo bytes at a subfile offset
REC_COMMIT = 2  # a group commit (payload: canonical JSON)
REC_META = 3  # one namespace operation (payload: canonical JSON)

_HEADER = struct.Struct("<4sBBHI")  # magic, kind, version, subfile, epoch
_BODY = struct.Struct("<IBQQI")  # prev_crc, rtype, stamp, offset, length
_CRC = struct.Struct("<I")

HEADER_SIZE = _HEADER.size  # 12
RECORD_OVERHEAD = _CRC.size + _BODY.size  # 4 + 25 = 29 bytes per record


class RecoveryError(RuntimeError):
    """Recovery found damage it must not silently repair.

    Torn journal *tails* are expected crash debris and are dropped
    silently (counted, not raised).  ``RecoveryError`` is reserved for
    damage that makes the recovered state untrustworthy: a corrupt
    snapshot body, an unreadable manifest, a journal whose header
    belongs to a different file or kind.  This is the only exception
    the durability layer raises past its API.
    """


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def pack_header(kind: int, subfile: int, epoch: int) -> bytes:
    return _HEADER.pack(JOURNAL_MAGIC, kind, JOURNAL_VERSION, subfile, epoch)


@dataclass
class JournalRecord:
    """One intact record, as yielded by :func:`scan_journal`."""

    rtype: int
    stamp: int
    offset: int
    payload: bytes
    #: Byte offset *one past* this record in the journal file — the
    #: value a commit record's ``cuts`` refer to.
    end: int


@dataclass
class JournalScan:
    """What a journal scan found: the intact prefix, and the damage."""

    kind: int = 0
    subfile: int = 0
    epoch: int = 0
    header_ok: bool = False
    records: List[JournalRecord] = field(default_factory=list)
    #: Length in bytes of the valid prefix (header included).
    valid_bytes: int = 0
    #: Bytes after the valid prefix (torn/corrupt tail), discarded.
    tail_discarded: int = 0

    def records_until(self, cut: int) -> List[JournalRecord]:
        """The records whose bytes lie entirely within ``[0, cut)``."""
        return [r for r in self.records if r.end <= cut]


class JournalWriter:
    """Appends CRC-chained records to one journal file.

    A writer always starts a *fresh* journal (truncating any previous
    file): the recovery protocol never appends to a journal it did not
    write — it replays old epochs into a snapshot and starts new, empty
    journals at a bumped epoch.

    The file is open *unbuffered*: every append is one ``write(2)``
    straight into the OS page cache, so a record is kill-durable the
    moment :meth:`append`/:meth:`append_many` returns — including the
    header written at construction, which must be durable from birth
    (a commit record's cuts name *every* data journal at its current
    length, so an untouched journal whose header never reached the OS
    would make every later commit look torn after a kill).  This also
    keeps the group-commit hot path at one syscall per touched journal
    with no separate flush step.  :meth:`flush` therefore only matters
    with ``sync=True``, where it fsyncs for power-loss durability.
    """

    def __init__(self, path: str, kind: int, subfile: int = 0,
                 epoch: int = 0, sync: bool = False):
        self.path = path
        self.kind = kind
        self.subfile = subfile
        self.epoch = epoch
        self.sync = sync
        header = pack_header(kind, subfile, epoch)
        self._fh: Optional[BinaryIO] = open(path, "wb", buffering=0)
        self._fh.write(header)
        self._chain = _crc(header)
        self._length = len(header)
        if sync:
            os.fsync(self._fh.fileno())

    @property
    def length(self) -> int:
        """Bytes written so far (header included) — the journal length a
        commit record's cut refers to after a :meth:`flush`."""
        return self._length

    def append(self, rtype: int, stamp: int, offset: int,
               payload: bytes) -> int:
        """Append one record; returns the journal length after it.

        The write goes straight to the OS (unbuffered file), so the
        record is kill-durable on return; write ordering across
        journals follows call ordering.
        """
        if self._fh is None:
            raise ValueError(f"journal {self.path} is closed")
        prefix = _BODY.pack(self._chain, rtype, stamp, offset, len(payload))
        crc = zlib.crc32(payload, zlib.crc32(prefix)) & 0xFFFFFFFF
        self._fh.write(_CRC.pack(crc) + prefix + payload)
        self._chain = crc
        self._length += RECORD_OVERHEAD + len(payload)
        return self._length

    def append_many(
        self, rtype: int, items: "Sequence[Tuple[int, int, bytes]]"
    ) -> int:
        """Append ``(stamp, offset, payload)`` records in one write;
        returns the journal length after the last one.

        Identical on-disk bytes to repeated :meth:`append` calls — the
        CRC chain threads through every record — but the group commit
        path calls this once per touched subfile, not once per record,
        which keeps the per-record interpreter cost off the hot path.
        """
        if self._fh is None:
            raise ValueError(f"journal {self.path} is closed")
        if len(items) == 1:  # the common case once segments coalesce
            stamp, offset, payload = items[0]
            return self.append(rtype, stamp, offset, payload)
        chain = self._chain
        length = self._length
        parts = []
        for stamp, offset, payload in items:
            prefix = _BODY.pack(chain, rtype, stamp, offset, len(payload))
            chain = zlib.crc32(payload, zlib.crc32(prefix)) & 0xFFFFFFFF
            parts.append(_CRC.pack(chain))
            parts.append(prefix)
            parts.append(payload)
            length += RECORD_OVERHEAD + len(payload)
        self._fh.write(b"".join(parts))
        self._chain = chain
        self._length = length
        return length

    def flush(self) -> None:
        """No-op for kill-durability (writes are unbuffered); fsyncs
        when the writer was opened with ``sync=True``."""
        if self._fh is None:
            return
        if self.sync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is None:
            return
        self.flush()
        self._fh.close()
        self._fh = None


def scan_journal(path: str, expect_kind: Optional[int] = None,
                 expect_epoch: Optional[int] = None) -> JournalScan:
    """Scan a journal file, returning its intact record prefix.

    Never raises on damage: a missing file, bad header, torn tail or
    broken CRC chain all degrade to a (possibly empty) valid prefix
    plus a ``tail_discarded`` count.  ``expect_kind`` / ``expect_epoch``
    mismatches invalidate the whole file (its records belong to another
    stream or a superseded epoch, so replaying them would corrupt
    state).
    """
    scan = JournalScan()
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError:
        return scan
    total = len(raw)
    if total < HEADER_SIZE:
        scan.tail_discarded = total
        return scan
    try:
        magic, kind, version, subfile, epoch = _HEADER.unpack_from(raw, 0)
    except struct.error:  # pragma: no cover - length checked above
        scan.tail_discarded = total
        return scan
    if (
        magic != JOURNAL_MAGIC
        or version != JOURNAL_VERSION
        or (expect_kind is not None and kind != expect_kind)
        or (expect_epoch is not None and epoch != expect_epoch)
    ):
        scan.tail_discarded = total
        return scan
    scan.kind, scan.subfile, scan.epoch = kind, subfile, epoch
    scan.header_ok = True
    chain = _crc(raw[:HEADER_SIZE])
    pos = HEADER_SIZE
    while pos + RECORD_OVERHEAD <= total:
        (crc,) = _CRC.unpack_from(raw, pos)
        prev_crc, rtype, stamp, offset, length = _BODY.unpack_from(
            raw, pos + _CRC.size
        )
        end = pos + RECORD_OVERHEAD + length
        if end > total:
            break  # torn: payload truncated
        body = raw[pos + _CRC.size : end]
        if prev_crc != chain or _crc(body) != crc:
            break  # torn or corrupt: stop at the last intact record
        scan.records.append(
            JournalRecord(
                rtype=rtype,
                stamp=stamp,
                offset=offset,
                payload=body[_BODY.size :],
                end=end,
            )
        )
        chain = crc
        pos = end
    scan.valid_bytes = pos
    scan.tail_discarded = total - pos
    return scan
