"""Durability: write-ahead journals, snapshots, crash recovery.

The last unguarded failure domain in the reproduction was the server
process itself dying between operations.  This package closes it with
three cooperating pieces, all below the public API (the ViPIOS
discipline — clients see the same calls, now crash-consistent):

* :mod:`~repro.durability.journal` — append-only, CRC-chained record
  framing shared by the data, commit and metadata logs, plus the
  tail-tolerant scanner and the one documented exception,
  :class:`RecoveryError`;
* :mod:`~repro.durability.snapshot` — the portable checkpoint format
  whose bytes are *serial-equivalent*: a pure function of the file's
  logical contents, identical regardless of node count, partition, or
  executor mode (the scda property);
* :mod:`~repro.durability.manager` — :class:`DurabilityManager`, the
  group-commit and recovery protocol threaded through
  :class:`~repro.service.FileService` (journal stamp = ticket seq);
* :mod:`~repro.durability.nslog` — :class:`NamespaceJournal`, the same
  discipline for the inode tree (journaled metadata ops, fold-to-JSON
  snapshots, id-preserving replay);
* :mod:`~repro.durability.chaos` — kill-and-restart scenarios for the
  ``tools chaos`` CLI: SIGKILL a subprocess-hosted service at a random
  point, recover, and compare byte-for-byte against a serial replay of
  the acknowledged-ticket prefix.

Everything is measured under ``durability.*`` in the process-wide
metrics registry: journal record/byte/commit counters, snapshot sizes,
and recovery histograms (time, records replayed, tail bytes
discarded).
"""

from .chaos import kill_workload, run_kill_restart, run_kill_restart_sweep
from .journal import (
    JournalRecord,
    JournalScan,
    JournalWriter,
    RecoveryError,
    scan_journal,
)
from .manager import DurabilityManager
from .nslog import NamespaceJournal
from .snapshot import (
    parse_snapshot,
    read_snapshot_file,
    snapshot_bytes,
    write_snapshot_file,
)

__all__ = [
    "DurabilityManager",
    "kill_workload",
    "run_kill_restart",
    "run_kill_restart_sweep",
    "NamespaceJournal",
    "JournalRecord",
    "JournalScan",
    "JournalWriter",
    "RecoveryError",
    "scan_journal",
    "snapshot_bytes",
    "parse_snapshot",
    "write_snapshot_file",
    "read_snapshot_file",
]
