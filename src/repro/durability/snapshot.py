"""Portable, serial-equivalent snapshots of a file's logical bytes.

The format reproduces the scda property (Griesbach & Burstedde — see
PAPERS.md): the on-disk bytes are a pure function of the file's
*logical* contents, independent of how many writers produced them, what
partition the file is physically stored under, or which executor mode
(serial, parallel, windowed; thread or process pool) moved the bytes.
Two runs that wrote the same logical file — one rank serially or eight
ranks through nested-FALLS views — emit byte-identical snapshots, so
any snapshot can be verified against the naive per-byte oracle and
diffed across configurations with ``cmp``.

That property falls out of two rules:

* the payload is the file's **linear** byte sequence (holes and bytes
  before the displacement read as zero) — partition-free by
  construction;
* the metadata is canonical JSON (sorted keys, no whitespace) and
  carries only logical facts (length, shape, dtype...) — never writer
  count, partition, epoch or sequence stamps.  Recovery bookkeeping
  lives in the per-file manifest *next to* the snapshot, not in it.

Layout (little-endian)::

    magic "RSNP" | version u8 | pad[3] | meta_len u32 | payload_len u64
    | meta (canonical JSON, UTF-8) | payload | crc u32

``crc = crc32`` of everything before it.  Snapshot files are written to
a temporary sibling and atomically renamed into place, so a crash
mid-snapshot leaves either the old snapshot or the new one — never a
torn hybrid (a torn temporary is ignored by recovery).  Unlike journal
tails, a *named* snapshot that fails its CRC is not crash debris — it
is data loss, and reading it raises :class:`RecoveryError`.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Dict, Optional, Tuple

import numpy as np

from .journal import RecoveryError

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "snapshot_bytes",
    "parse_snapshot",
    "write_snapshot_file",
    "read_snapshot_file",
]

SNAPSHOT_MAGIC = b"RSNP"
SNAPSHOT_VERSION = 1

_FIXED = struct.Struct("<4sB3xIQ")  # magic, version, pad, meta_len, payload_len
_CRC = struct.Struct("<I")


def _canonical_meta(meta: Optional[Dict[str, object]]) -> bytes:
    return json.dumps(
        meta or {}, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def snapshot_bytes(payload, meta: Optional[Dict[str, object]] = None) -> bytes:
    """Serialise logical ``payload`` bytes into the snapshot format.

    ``payload`` is a uint8 array or anything buffer-like (``bytes``,
    ``bytearray``, ``memoryview``).
    """
    if isinstance(payload, (bytes, bytearray, memoryview)):
        data = np.frombuffer(payload, dtype=np.uint8)
    else:
        data = np.ascontiguousarray(payload, dtype=np.uint8).reshape(-1)
    mblob = _canonical_meta(meta)
    head = _FIXED.pack(
        SNAPSHOT_MAGIC, SNAPSHOT_VERSION, len(mblob), int(data.size)
    )
    body = head + mblob + data.tobytes()
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


def parse_snapshot(blob: bytes) -> Tuple[np.ndarray, Dict[str, object]]:
    """Parse and verify snapshot bytes -> ``(payload, meta)``.

    Raises :class:`RecoveryError` on any structural or checksum damage —
    a snapshot is all-or-nothing (there is no meaningful prefix to
    salvage the way a journal scan salvages records).
    """
    if len(blob) < _FIXED.size + _CRC.size:
        raise RecoveryError(f"snapshot truncated ({len(blob)} bytes)")
    magic, version, meta_len, payload_len = _FIXED.unpack_from(blob, 0)
    if magic != SNAPSHOT_MAGIC:
        raise RecoveryError(f"bad snapshot magic {magic!r}")
    if version != SNAPSHOT_VERSION:
        raise RecoveryError(f"unsupported snapshot version {version}")
    end = _FIXED.size + meta_len + payload_len
    if end + _CRC.size != len(blob):
        raise RecoveryError(
            f"snapshot length mismatch: header implies {end + _CRC.size} "
            f"bytes, file has {len(blob)}"
        )
    (crc,) = _CRC.unpack_from(blob, end)
    if zlib.crc32(blob[:end]) & 0xFFFFFFFF != crc:
        raise RecoveryError("snapshot checksum mismatch")
    try:
        meta = json.loads(blob[_FIXED.size : _FIXED.size + meta_len])
    except ValueError as exc:
        raise RecoveryError(f"snapshot metadata unreadable: {exc}") from exc
    payload = np.frombuffer(
        blob, dtype=np.uint8, count=payload_len, offset=_FIXED.size + meta_len
    ).copy()
    return payload, meta


def write_snapshot_file(path: str, payload,
                        meta: Optional[Dict[str, object]] = None,
                        sync: bool = False) -> int:
    """Atomically write a snapshot; returns its size in bytes."""
    blob = snapshot_bytes(payload, meta)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
        if sync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    return len(blob)


def read_snapshot_file(path: str) -> Tuple[np.ndarray, Dict[str, object]]:
    """Read and verify a snapshot file -> ``(payload, meta)``.

    ``FileNotFoundError`` when absent; :class:`RecoveryError` on damage.
    """
    with open(path, "rb") as fh:
        return parse_snapshot(fh.read())
