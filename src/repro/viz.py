"""ASCII rendering of FALLS structures and partitions.

The paper explains its representation with byte-ruler diagrams (figures
1-3); this module draws the same pictures in text so examples, docs and
debugging sessions can *see* a partition:

>>> from repro import Falls, Partition
>>> from repro.viz import render_falls
>>> print(render_falls(Falls(3, 5, 6, 3), width=24))
 0         1         2
 0123456789012345678901234
 ...###...###...###......

Partitions render one lane per element plus an ownership ruler, views
render their mapping arrows as index lists.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .core.falls import Falls
from .core.indexset import falls_set_indices, pattern_element_indices
from .core.partition import Partition
from .core.periodic import PeriodicFallsSet

__all__ = [
    "render_falls",
    "render_partition",
    "render_periodic",
    "render_plan",
    "ownership_string",
]

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyz"


def _ruler(width: int) -> List[str]:
    tens = "".join(str((i // 10) % 10) if i % 10 == 0 else " " for i in range(width))
    ones = "".join(str(i % 10) for i in range(width))
    return [tens, ones]


def render_falls(
    falls: Falls | Iterable[Falls],
    width: Optional[int] = None,
    mark: str = "#",
    gap: str = ".",
) -> str:
    """Draw the selected bytes of a (set of) FALLS on a byte ruler."""
    falls_list = [falls] if isinstance(falls, Falls) else list(falls)
    if not falls_list:
        return "(empty)"
    idx = set(falls_set_indices(falls_list).tolist())
    stop = max(idx)
    if width is None:
        width = stop + 1
    line = "".join(
        mark if i in idx else gap for i in range(width)
    )
    return "\n".join(_ruler(width) + [line])


def ownership_string(partition: Partition, length: int) -> str:
    """One glyph per byte: which element owns it ('.' = before the
    displacement)."""
    owners = ["."] * length
    for e in range(partition.num_elements):
        offs = pattern_element_indices(
            partition.elements[e], partition.size, partition.displacement, length
        )
        glyph = _GLYPHS[e % len(_GLYPHS)]
        for o in offs.tolist():
            owners[o] = glyph
    return "".join(owners)


def render_partition(partition: Partition, length: Optional[int] = None) -> str:
    """Draw a partition: ruler, ownership line, one lane per element.

    ``length`` defaults to displacement + two pattern periods, enough to
    see the tiling.
    """
    if length is None:
        length = partition.displacement + 2 * partition.size
    lines = _ruler(length)
    lines.append(ownership_string(partition, length))
    for e in range(partition.num_elements):
        offs = set(
            pattern_element_indices(
                partition.elements[e],
                partition.size,
                partition.displacement,
                length,
            ).tolist()
        )
        glyph = _GLYPHS[e % len(_GLYPHS)]
        lines.append(
            "".join(glyph if i in offs else "." for i in range(length))
            + f"   element {e} ({partition.element_size(e)} B/period)"
        )
    header = (
        f"Partition: {partition.num_elements} elements, "
        f"pattern size {partition.size}, displacement {partition.displacement}"
    )
    return "\n".join([header] + lines)


def render_periodic(pfs: PeriodicFallsSet, length: Optional[int] = None) -> str:
    """Draw a periodic FALLS family (intersections, projections)."""
    if length is None:
        length = pfs.displacement + 2 * pfs.period
    starts, lens = pfs.segments_in(0, length - 1)
    marked = set()
    for s, ln in zip(starts.tolist(), lens.tolist()):
        marked.update(range(s, s + ln))
    line = "".join("#" if i in marked else "." for i in range(length))
    header = (
        f"PeriodicFallsSet: displacement {pfs.displacement}, period "
        f"{pfs.period}, {pfs.size_per_period} B/period in "
        f"{pfs.fragment_count_per_period} fragment(s)"
    )
    return "\n".join([header] + _ruler(length) + [line])


def render_plan(plan) -> str:
    """Draw a redistribution plan as a source x destination matrix.

    Each cell shows bytes per period moved between the element pair (a
    dot for none); the margins total per row/column.  This is the
    communication matrix view of the schedule — all-to-all patterns and
    identity diagonals are visible at a glance.
    """
    ns, nd = plan.src.num_elements, plan.dst.num_elements
    cells = {(t.src_element, t.dst_element): t.bytes_per_period
             for t in plan.transfers}
    width = max(6, max((len(str(v)) for v in cells.values()), default=1) + 1)
    header = " src\\dst |" + "".join(f"{d:>{width}}" for d in range(nd)) + "   total"
    lines = [
        f"Redistribution plan: {plan.message_count} transfers"
        + ("  [identity]" if plan.is_identity else ""),
        header,
        "-" * len(header),
    ]
    for s in range(ns):
        row = [cells.get((s, d), 0) for d in range(nd)]
        body = "".join(
            f"{v if v else '.':>{width}}" for v in row
        )
        lines.append(f" {s:>7} |{body}{sum(row):>8}")
    totals = [sum(cells.get((s, d), 0) for s in range(ns)) for d in range(nd)]
    lines.append(
        f" {'total':>7} |"
        + "".join(f"{v:>{width}}" for v in totals)
        + f"{sum(totals):>8}"
    )
    return "\n".join(lines)
