"""The flight recorder: a crash-surviving mmap ring of binary events.

PR 8 made acknowledged *data* survive SIGKILL; this module does the
same for *telemetry*.  A :class:`FlightRecorder` is an always-on,
bounded ring of fixed-width binary event records — op start/finish,
batch dispatch, group commit, lock grant, worker crash — written from
hot paths into a ``MAP_SHARED`` memory mapping of a plain file.  Like
the PR 8 journals, the mapping's bytes reach the OS page cache the
moment they are stored, so the ring survives process death with **no
fsync and no flush on the hot path**: after a SIGKILL, the file holds
the victim's last words, decodable by :mod:`repro.obs.forensics`
(``python -m repro.tools blackbox``) with no cooperation from the dead
process.

Design constraints, in order:

* **hot-path cost** — one lock acquire, one ``struct`` pack, one
  64-byte store into the mapping.  No syscall, no allocation beyond
  the packed slot, no formatting.  When no recorder is armed, the cost
  at every instrumented site is a single module-global read.
* **crash consistency** — every slot carries a CRC-32 over its body
  and a never-repeating sequence number.  A decoder scans all slots
  and keeps exactly those whose CRC verifies: a slot torn by a kill
  mid-store fails its CRC and is *counted, never misparsed*; ordering
  is recovered from the sequence numbers, not file position, so ring
  wrap needs no head pointer that could itself tear.
* **self-description** — tenants and file names are interned once into
  a small string table inside the same file, so a post-mortem decode
  needs the ring file *alone* (no journal, no namespace, no process).

Layout (all little-endian)::

    file    := header[64] | intern[64 * 32] | slot[capacity * 64]
    header  := magic "RFR1" | version u16 | slot u16 | capacity u32
               | pid u32 | created_ns u64
    intern  := kind u8 | key u32 | len u8 | name[26]
    slot    := crc u32 | body[60]
    body    := seq u64 | etype u8 | pad[3] | t_ns u64 | trace u64
               | tseq i64 | tenant u32 | file u32 | a u64 | b u64

``seq`` starts at 1 and only grows; slot position is ``seq %
capacity``, so the ring wraps by overwriting the oldest slot.  ``crc =
crc32(body)``.  An all-zero slot was never written.
"""

from __future__ import annotations

import itertools
import mmap
import os
import struct
import threading
import time
import zlib
from typing import Dict, Optional, Tuple

from . import metrics as obs_metrics

__all__ = [
    "EVENT_NAMES",
    "EV_OP_START",
    "EV_OP_FINISH",
    "EV_BATCH",
    "EV_COMMIT_START",
    "EV_COMMIT",
    "EV_LOCK_GRANT",
    "EV_LOCK_RELEASE",
    "EV_WORKER_CRASH",
    "EV_CHECKPOINT",
    "EV_RECOVERY",
    "FlightRecorder",
    "active",
    "arm",
    "disarm",
    "trace_num",
]

RING_MAGIC = b"RFR1"
RING_VERSION = 1

#: Event types.  ``a``/``b`` are two event-specific u64 arguments.
EV_OP_START = 1  # a=view offset, b=payload/read bytes
EV_OP_FINISH = 2  # a=view offset, b=0 ok / 1 failed
EV_BATCH = 3  # a=batch size, b=0 — dispatch of one *multi-op* coalesced
#               batch (a singleton batch is implied by its op_start)
EV_COMMIT_START = 4  # a=commit stamp, b=ops in the group
EV_COMMIT = 5  # a=commit stamp, b=redo records appended
EV_LOCK_GRANT = 6  # a=1 write / 0 read — contended grants and multi-op
#                    batches (an uncontended singleton's hold is exactly
#                    its op window, so op_start already names it)
EV_LOCK_RELEASE = 7  # paired with a recorded grant
EV_WORKER_CRASH = 8  # a=worker index (or 2**32-1: unknown)
EV_CHECKPOINT = 9  # a=new epoch
EV_RECOVERY = 10  # a=records replayed, b=tail bytes discarded

EVENT_NAMES = {
    EV_OP_START: "op_start",
    EV_OP_FINISH: "op_finish",
    EV_BATCH: "batch",
    EV_COMMIT_START: "commit_start",
    EV_COMMIT: "commit",
    EV_LOCK_GRANT: "lock_grant",
    EV_LOCK_RELEASE: "lock_release",
    EV_WORKER_CRASH: "worker_crash",
    EV_CHECKPOINT: "checkpoint",
    EV_RECOVERY: "recovery",
}

#: Intern-entry kinds (what the key names).
INTERN_TENANT = 1
INTERN_FILE = 2

HEADER = struct.Struct("<4sHHIIQ")
HEADER_BYTES = 64
INTERN_ENTRY = struct.Struct("<BIB26s")
INTERN_SLOTS = 64
INTERN_BYTES = INTERN_SLOTS * 32
BODY = struct.Struct("<QB3xQQqIIQQ")
CRC = struct.Struct("<I")
SLOT = struct.Struct("<I60s")  # crc + body, packed in one allocation
SLOT_BYTES = 64
SLOTS_OFFSET = HEADER_BYTES + INTERN_BYTES

assert CRC.size + BODY.size == SLOT.size == SLOT_BYTES
assert INTERN_ENTRY.size == 32

#: ``flightrec.events`` counter updates are batched this many records
#: at a time (flushed on close): the metrics counter is diagnostic,
#: and a per-record inc would be a third of the hot path's cost.
_EVENTS_FLUSH = 256


def trace_num(trace_id: Optional[str]) -> int:
    """The numeric payload of a trace id (``"op-00000042"`` -> 42).

    Non-numeric ids hash stably instead, and ``None`` is 0 — the
    recorder stores a u64 either way and forensics renders it back
    with the standard ``op-`` prefix when it fits."""
    if not trace_id:
        return 0
    tail = trace_id.rsplit("-", 1)[-1]
    if tail.isdigit():
        return int(tail)
    return zlib.crc32(trace_id.encode("utf-8")) & 0xFFFFFFFF


def _key(name: str) -> int:
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


class FlightRecorder:
    """One mmap-backed event ring, owned by this process.

    ``capacity`` is the slot count; the ring retains the last
    ``capacity`` events (64 bytes each — the default 4096 slots cost
    256 KiB of page cache).  All methods are thread-safe; the write
    path takes no lock at all and performs no I/O syscalls.
    """

    def __init__(self, path: str, capacity: int = 4096):
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.path = path
        self.capacity = capacity
        size = SLOTS_OFFSET + capacity * SLOT_BYTES
        fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.ftruncate(fd, size)
            self._mm: Optional[mmap.mmap] = mmap.mmap(fd, size)
        finally:
            os.close(fd)
        header = HEADER.pack(
            RING_MAGIC, RING_VERSION, SLOT_BYTES, capacity,
            os.getpid() & 0xFFFFFFFF, time.monotonic_ns(),
        )
        self._mm[:len(header)] = header
        self._lock = threading.Lock()  # intern table + close; NOT record()
        # The hot path is lock-free: itertools.count.__next__ is a
        # single C call — atomic under the GIL — so concurrent record()
        # calls draw distinct seqs and therefore store distinct slots
        # (same slot needs seqs a full `capacity` apart, impossible in
        # one scheduling window).  A threading.Lock here measurably
        # stalls the service: every acquire/release is a GIL handoff
        # point on the worker/submitter critical path.
        self._count = itertools.count(1)
        self._seq = 0  # last sequence number written (0: none yet)
        self._interned: Dict[Tuple[int, str], int] = {}
        self._next_intern = 0
        self._m_events = obs_metrics.counter("flightrec.events")
        self._m_rings = obs_metrics.counter("flightrec.rings")
        self._m_dropped_interns = obs_metrics.counter(
            "flightrec.interns_dropped"
        )
        self._m_rings.inc()
        # record() is installed per instance as a closure with every
        # hot value prebound: on a ~1 us operation budget, even the
        # handful of attribute loads a method body would do are
        # measurable on the service's worker critical path.
        self.record = self._bind_record()

    # -- interning -----------------------------------------------------------

    def _intern(self, kind: int, name: str) -> int:
        """The u32 key for a name, writing it into the ring's string
        table on first sight (so a decode of the dead file can resolve
        it).  A full table drops the entry — the key still identifies
        the name across events, it just renders as hex."""
        memo = self._interned
        k = memo.get((kind, name))
        if k is not None:
            return k
        k = _key(name)
        with self._lock:
            if (kind, name) not in memo:
                if self._next_intern < INTERN_SLOTS and self._mm is not None:
                    raw = name.encode("utf-8")[:26]
                    off = HEADER_BYTES + self._next_intern * 32
                    self._mm[off:off + 32] = INTERN_ENTRY.pack(
                        kind, k, len(raw), raw
                    )
                    self._next_intern += 1
                else:
                    self._m_dropped_interns.inc()
                memo[(kind, name)] = k
        return k

    def tenant_key(self, name: str) -> int:
        return self._intern(INTERN_TENANT, name)

    def file_key(self, name: str) -> int:
        return self._intern(INTERN_FILE, name)

    # -- recording -----------------------------------------------------------

    def _bind_record(self):
        """Build the hot-path ``record(etype, trace=0, tseq=-1,
        tenant=0, file=0, a=0, b=0) -> seq`` closure.

        The slot write is a single 64-byte slice store into the shared
        mapping — kill-durable the moment it lands, with no syscall and
        **no lock** (see ``_count`` in ``__init__``).  Returns the
        event's sequence number, or 0 once the recorder is closed
        (``close()`` unmaps the ring, so the store raises and the
        event is dropped, exactly like any other post-close record).
        """
        mm = self._mm

        def record(
            etype: int,
            trace: int = 0,
            tseq: int = -1,
            tenant: int = 0,
            file: int = 0,
            a: int = 0,
            b: int = 0,
            _now=time.monotonic_ns,
            _pack=BODY.pack,
            _spack=SLOT.pack,
            _crc32=zlib.crc32,
            _next=self._count.__next__,
            _cap=self.capacity,
            _inc=self._m_events.inc,
        ) -> int:
            seq = _next()
            body = _pack(seq, etype, _now(), trace, tseq, tenant, file, a, b)
            off = SLOTS_OFFSET + (seq % _cap) * SLOT_BYTES
            try:
                mm[off:off + SLOT_BYTES] = _spack(_crc32(body), body)
            except ValueError:  # closed: dropped, ring already sealed
                return 0
            self._seq = seq
            if not seq % _EVENTS_FLUSH:
                # Exactly one thread draws each seq, so each flush
                # boundary is credited exactly once.
                _inc(_EVENTS_FLUSH)
            return seq

        return record

    @property
    def events(self) -> int:
        """Events recorded so far (monotonic; the ring retains the
        last ``capacity`` of them)."""
        return self._seq

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Unmap the ring.  The file stays behind — that is the point:
        it is the post-mortem artifact."""
        with self._lock:
            mm = self._mm
            self._mm = None
        if mm is not None:
            # Credit the tail the periodic flush has not covered yet.
            self._m_events.inc(self._seq % _EVENTS_FLUSH)
            mm.close()

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- the process-wide recorder ------------------------------------------------
#
# Hot paths read the module global directly (``flightrec.active()`` or
# the _RECORDER attribute): when nothing is armed the per-site cost is
# one global load and a None check.

_RECORDER: Optional[FlightRecorder] = None
_ARM_LOCK = threading.Lock()


def active() -> Optional[FlightRecorder]:
    """The armed process-wide recorder, or ``None``."""
    return _RECORDER


def arm(path: str, capacity: int = 4096) -> FlightRecorder:
    """Arm the process-wide recorder on ``path`` (replacing and closing
    any previous one)."""
    global _RECORDER
    rec = FlightRecorder(path, capacity=capacity)
    with _ARM_LOCK:
        prev, _RECORDER = _RECORDER, rec
    if prev is not None:
        prev.close()
    return rec


def disarm() -> Optional[FlightRecorder]:
    """Disarm and close the process-wide recorder; returns it (closed)
    so callers can read ``path``/``events``."""
    global _RECORDER
    with _ARM_LOCK:
        prev, _RECORDER = _RECORDER, None
    if prev is not None:
        prev.close()
    return prev
