"""Trace context: process-unique operation ids that link spans across threads.

A request admitted to the :class:`~repro.service.FileService` lives on
three threads — the client's (admission), the dispatcher's (lock
registration, batching) and a worker's (engine execution) — so its
story cannot be told by thread-local span nesting alone.  The trace
context closes that gap with two tiny pieces:

* :func:`new_trace_id` — a process-unique id (``op-00000042``), stamped
  on every service :class:`~repro.service.Ticket` at admission and on
  every engine operation root span;
* :func:`trace_context` — a thread-local binding that lets a layer
  executing *on behalf of* a request (a worker running a batch) tag the
  spans it produces with that request's id without threading the id
  through every call signature.

The id is deliberately dumb: monotonic, cheap, unique within the
process.  Exporters and the ``/stats`` endpoint treat it as an opaque
string, so swapping in W3C trace ids later costs nothing.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["new_trace_id", "current_trace_id", "trace_context"]

_COUNTER = itertools.count(1)


class _Context(threading.local):
    trace_id: Optional[str] = None


_CTX = _Context()


def new_trace_id(prefix: str = "op") -> str:
    """A fresh process-unique trace id (``op-00000001``, ...)."""
    return f"{prefix}-{next(_COUNTER):08d}"


def current_trace_id() -> Optional[str]:
    """The trace id bound to this thread, or ``None``."""
    return _CTX.trace_id


@contextmanager
def trace_context(trace_id: Optional[str]) -> Iterator[Optional[str]]:
    """Bind ``trace_id`` as this thread's current trace id for the
    duration (restores the previous binding on exit)."""
    prev = _CTX.trace_id
    _CTX.trace_id = trace_id
    try:
        yield trace_id
    finally:
        _CTX.trace_id = prev
