"""Trace exporters: nested JSON, Chrome ``chrome://tracing``, and text.

* :func:`trace_to_dict` / :func:`trace_to_json` — a faithful nested
  dump (names, attributes, both clocks) for programmatic consumption;
* :func:`trace_to_chrome` — the Chrome Trace Event format (load in
  ``chrome://tracing`` or https://ui.perfetto.dev).  Wall-clock spans
  appear under the *wall clock* process, modelled event-queue spans
  under the *simulation clock* process, so a single timeline shows the
  compute-node phases next to the network/CPU/disk activity they cause;
* :func:`render_trace` — an indented text tree for terminals and logs.

All exporters accept a single :class:`~repro.obs.span.Span` or a list
of root spans (a :class:`~repro.obs.span.Tracer`'s ``roots``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Union

from .span import Span

__all__ = [
    "trace_to_dict",
    "trace_to_json",
    "trace_to_chrome",
    "chrome_to_json",
    "render_trace",
    "span_to_dict",
    "span_from_dict",
]

_WALL_PID = 1
_SIM_PID = 2


def _as_roots(trace: Union[Span, Sequence[Span]]) -> List[Span]:
    return [trace] if isinstance(trace, Span) else list(trace)


def _jsonable(value: object) -> object:
    """Attributes may hold dicts/tuples/numpy scalars; make them JSON-safe."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    try:  # numpy integers / floats
        return value.item()  # type: ignore[attr-defined]
    except AttributeError:
        return str(value)


def trace_to_dict(trace: Union[Span, Sequence[Span]]) -> List[dict]:
    """Nested dict form of a span tree (one dict per root)."""

    def one(sp: Span) -> dict:
        d: dict = {"name": sp.name}
        if sp.attrs:
            d["attrs"] = {k: _jsonable(v) for k, v in sp.attrs.items()}
        if sp.wall_start_s is not None and sp.wall_end_s is not None:
            d["wall_us"] = sp.wall_us
        if sp.sim_start_s is not None and sp.sim_end_s is not None:
            d["sim_start_us"] = sp.sim_start_s * 1e6
            d["sim_us"] = sp.sim_s * 1e6
        if sp.children:
            d["children"] = [one(c) for c in sp.children]
        return d

    return [one(r) for r in _as_roots(trace)]


def trace_to_json(trace: Union[Span, Sequence[Span]], indent: int = 2) -> str:
    """The nested dump as a JSON string."""
    return json.dumps(trace_to_dict(trace), indent=indent)


def span_to_dict(sp: Span) -> dict:
    """A *faithful* (lossless, round-trippable) dict form of one span.

    Unlike :func:`trace_to_dict` — which reduces clocks to durations for
    human consumption — this keeps raw start/end timestamps on both
    clocks, so a span built in a worker process can be shipped across
    the process boundary and grafted into the parent's tree without
    losing ordering (``perf_counter`` is ``CLOCK_MONOTONIC`` on Linux
    and therefore comparable across processes on one machine).
    """
    return {
        "name": sp.name,
        "attrs": {str(k): _jsonable(v) for k, v in sp.attrs.items()},
        "wall_start_s": sp.wall_start_s,
        "wall_end_s": sp.wall_end_s,
        "sim_start_s": sp.sim_start_s,
        "sim_end_s": sp.sim_end_s,
        "children": [span_to_dict(c) for c in sp.children],
    }


def span_from_dict(d: dict) -> Span:
    """Rebuild a :class:`Span` tree from :func:`span_to_dict` output."""
    sp = Span(d["name"], attrs=dict(d.get("attrs", {})))
    sp.wall_start_s = d.get("wall_start_s")
    sp.wall_end_s = d.get("wall_end_s")
    sp.sim_start_s = d.get("sim_start_s")
    sp.sim_end_s = d.get("sim_end_s")
    sp.children = [span_from_dict(c) for c in d.get("children", [])]
    return sp


def _tid_for(sp: Span, tids: Dict[str, int]) -> int:
    """Stable small thread id per logical lane (compute node, I/O node,
    resource name), allocated in first-appearance order."""
    if "compute" in sp.attrs:
        lane = f"compute{sp.attrs['compute']}"
    elif "io_node" in sp.attrs:
        lane = f"io{sp.attrs['io_node']}"
    else:
        lane = sp.name if sp.sim_start_s is not None else "main"
    return tids.setdefault(lane, len(tids))


def trace_to_chrome(trace: Union[Span, Sequence[Span]]) -> List[dict]:
    """Chrome Trace Event list (``ph: "X"`` complete events).

    Wall spans are re-based so the earliest one starts at ts=0; sim
    spans use the event-queue timeline directly (it starts at 0).
    """
    roots = _as_roots(trace)
    starts = [
        s.wall_start_s
        for r in roots
        for s in r.walk()
        if s.wall_start_s is not None
    ]
    has_sim = any(
        sp.sim_start_s is not None and sp.sim_end_s is not None
        for r in roots
        for sp in r.walk()
    )
    if not starts and not has_sim:
        # No timed spans -> a valid, genuinely empty trace file, not a
        # pair of orphan process-metadata records.
        return []
    origin = min(starts) if starts else 0.0

    events: List[dict] = []
    wall_tids: Dict[str, int] = {}
    sim_tids: Dict[str, int] = {}
    for root in roots:
        for sp in root.walk():
            args = {k: _jsonable(v) for k, v in sp.attrs.items()}
            if sp.wall_start_s is not None and sp.wall_end_s is not None:
                events.append(
                    {
                        "name": sp.name,
                        "ph": "X",
                        "pid": _WALL_PID,
                        "tid": _tid_for(sp, wall_tids),
                        "ts": (sp.wall_start_s - origin) * 1e6,
                        "dur": sp.wall_us,
                        "args": args,
                    }
                )
            if sp.sim_start_s is not None and sp.sim_end_s is not None:
                events.append(
                    {
                        "name": sp.name,
                        "ph": "X",
                        "pid": _SIM_PID,
                        "tid": _tid_for(sp, sim_tids),
                        "ts": sp.sim_start_s * 1e6,
                        "dur": sp.sim_s * 1e6,
                        "args": args,
                    }
                )

    meta: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _WALL_PID,
            "args": {"name": "wall clock (measured)"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": _SIM_PID,
            "args": {"name": "simulation clock (modelled)"},
        },
    ]
    for pid, tids in ((_WALL_PID, wall_tids), (_SIM_PID, sim_tids)):
        for lane, tid in tids.items():
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
    return meta + events


def chrome_to_json(trace: Union[Span, Sequence[Span]], indent: int = 1) -> str:
    """The Chrome event list as a JSON string (the file you load)."""
    return json.dumps(trace_to_chrome(trace), indent=indent)


def render_trace(trace: Union[Span, Sequence[Span]]) -> str:
    """An indented text rendering of the span tree."""
    lines: List[str] = []

    def walk(sp: Span, depth: int) -> None:
        clocks = []
        if sp.wall_start_s is not None and sp.wall_end_s is not None:
            clocks.append(f"{sp.wall_us:10.1f} us wall")
        if sp.sim_start_s is not None and sp.sim_end_s is not None:
            clocks.append(
                f"sim [{sp.sim_start_s * 1e6:.1f}, {sp.sim_end_s * 1e6:.1f}] us"
            )
        attrs = " ".join(
            f"{k}={v}" for k, v in sp.attrs.items() if not isinstance(v, dict)
        )
        text = "  " * depth + sp.name
        if clocks:
            text += "  (" + ", ".join(clocks) + ")"
        if attrs:
            text += "  " + attrs
        lines.append(text)
        for c in sp.children:
            walk(c, depth + 1)

    for root in _as_roots(trace):
        walk(root, 0)
    return "\n".join(lines)
