"""Prometheus text-format exposition of the metrics registry.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
into the Prometheus text exposition format (version 0.0.4 — what a
``/metrics`` endpoint serves and a Prometheus server scrapes):

* counters become ``repro_<name>_total`` (dots -> underscores);
* gauges expose their last observed value;
* histograms become native Prometheus histograms — cumulative
  ``_bucket{le="..."}`` series over the non-empty log buckets plus
  ``_sum`` and ``_count`` — so a scraper computes any quantile with
  ``histogram_quantile()`` at the histogram's error bound.

:func:`parse_prometheus_text` is the matching strict parser.  It exists
so the test suite (and the chaos-averse operator) can verify that what
we serve actually parses as the format — every sample line, every
``# TYPE`` declaration, bucket monotonicity, counter/sum/count
consistency.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry, get_registry

__all__ = ["render_prometheus", "parse_prometheus_text", "prometheus_name"]

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?[0-9]+))?$"
)
_LABEL = re.compile(r'^(?P<k>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<v>(?:[^"\\]|\\.)*)"$')


def prometheus_name(dotted: str, prefix: str = "repro") -> str:
    """A registry name (``service.wait_s``) as a valid Prometheus
    metric name (``repro_service_wait_s``)."""
    return f"{prefix}_{_INVALID.sub('_', dotted)}"


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(
    registry: Optional[MetricsRegistry] = None, prefix: str = "repro"
) -> str:
    """The registry in Prometheus text exposition format."""
    reg = registry if registry is not None else get_registry()
    lines: List[str] = []

    for dotted, value in reg.snapshot().items():
        name = prometheus_name(dotted, prefix) + "_total"
        lines.append(f"# HELP {name} Counter {dotted}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {value}")

    hist_names = set(reg.histograms())
    for dotted, summary in reg.gauges().items():
        if dotted in hist_names:
            continue
        name = prometheus_name(dotted, prefix)
        lines.append(f"# HELP {name} Gauge {dotted} (last observed value)")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(summary['last'])}")

    for dotted, hist in reg.histograms().items():
        name = prometheus_name(dotted, prefix)
        lines.append(
            f"# HELP {name} Histogram {dotted} "
            f"(log buckets, relative error <= {hist.error_bound:.4f})"
        )
        lines.append(f"# TYPE {name} histogram")
        for le, cum in hist.buckets():
            lines.append(f'{name}_bucket{{le="{_fmt(le)}"}} {cum}')
        lines.append(f"{name}_sum {_fmt(hist.sum)}")
        lines.append(f"{name}_count {hist.count}")

    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, dict]:
    """Strictly parse Prometheus text exposition; raises ``ValueError``
    on any malformed line or inconsistent histogram.

    Returns ``{metric_name: {"type": ..., "samples": [(labels, value),
    ...]}}`` keyed by the *family* name (without ``_bucket``/``_sum``/
    ``_count`` suffixes for histograms).
    """
    families: Dict[str, dict] = {}
    declared: Dict[str, str] = {}
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: bad TYPE line {line!r}")
            declared[parts[2]] = parts[3]
            families.setdefault(parts[2], {"type": parts[3], "samples": []})
            continue
        if line.startswith("#"):
            continue  # HELP and comments
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: bad sample line {line!r}")
        name, labels_raw = m.group("name"), m.group("labels")
        labels: Dict[str, str] = {}
        if labels_raw:
            for part in labels_raw.split(","):
                lm = _LABEL.match(part.strip())
                if lm is None:
                    raise ValueError(f"line {lineno}: bad label {part!r}")
                labels[lm.group("k")] = lm.group("v")
        value_raw = m.group("value")
        try:
            value = float(value_raw.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(f"line {lineno}: bad value {value_raw!r}") from None
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and declared.get(base) in ("histogram", "summary"):
                family = base
                break
        if family not in declared:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE")
        families[family]["samples"].append((name, labels, value))

    for family, info in families.items():
        if info["type"] != "histogram":
            continue
        buckets: List[Tuple[float, float]] = [
            (float(labels["le"].replace("+Inf", "inf")), v)
            for name, labels, v in info["samples"]
            if name.endswith("_bucket")
        ]
        if not buckets or buckets[-1][0] != math.inf:
            raise ValueError(f"{family}: histogram missing +Inf bucket")
        cums = [c for _le, c in buckets]
        if cums != sorted(cums):
            raise ValueError(f"{family}: bucket counts not cumulative")
        count = next(
            v for name, _l, v in info["samples"] if name.endswith("_count")
        )
        if count != buckets[-1][1]:
            raise ValueError(f"{family}: _count != +Inf bucket")
    return families
