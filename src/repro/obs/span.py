"""Hierarchical spans over two clocks.

A :class:`Span` is one named phase of work.  It can carry

* a **wall-clock** duration — real ``perf_counter`` time of our
  algorithms (the paper's *measured* numbers: ``t_i``, ``t_m``,
  ``t_g``), and/or
* a **simulation-clock** interval — modelled time on the discrete-event
  timeline (the paper's *modelled* numbers: network serialisation, I/O
  node CPU queueing, disk positioning),

plus free-form attributes and child spans.  One span tree therefore
shows compute-node phases interleaved with the modelled network/disk
events they trigger — exactly the shape of the paper's §8 evaluation.

Two ways to build trees:

* **explicit** — ``parent.measure("phase")`` / ``parent.record(...)`` /
  ``parent.record_sim(...)`` attach children to a span you hold;
* **implicit** — :func:`open_span` nests under the thread's current
  span (or becomes a root of the thread's active :class:`Tracer`), so
  layers that never see each other's objects — the I/O engine, the
  redistribution executor, the event queue — still land in one tree.

Spans are plain data; exporters live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "open_span",
    "tracked_span",
    "current_span",
    "active_tracer",
    "span_retained",
]


@dataclass
class Span:
    """One named phase: wall and/or simulated time, attributes, children."""

    name: str
    attrs: Dict[str, object] = field(default_factory=dict)
    #: ``perf_counter`` timestamps (seconds); ``None`` until started/ended.
    wall_start_s: Optional[float] = None
    wall_end_s: Optional[float] = None
    #: Simulation-clock interval (seconds on the event-queue timeline).
    sim_start_s: Optional[float] = None
    sim_end_s: Optional[float] = None
    children: List["Span"] = field(default_factory=list)

    # -- clock properties ----------------------------------------------------

    @property
    def wall_s(self) -> float:
        """Wall-clock duration in seconds (0.0 while incomplete)."""
        if self.wall_start_s is None or self.wall_end_s is None:
            return 0.0
        return self.wall_end_s - self.wall_start_s

    @property
    def wall_us(self) -> float:
        """Wall-clock duration in microseconds."""
        return self.wall_s * 1e6

    @property
    def sim_s(self) -> float:
        """Simulated duration in seconds (0.0 when not a sim span)."""
        if self.sim_start_s is None or self.sim_end_s is None:
            return 0.0
        return self.sim_end_s - self.sim_start_s

    # -- tree construction ---------------------------------------------------

    def annotate(self, **attrs: object) -> "Span":
        """Merge attributes into this span (chainable)."""
        self.attrs.update(attrs)
        return self

    def child(self, name: str, **attrs: object) -> "Span":
        """Attach and return an un-clocked child span."""
        sp = Span(name, attrs=dict(attrs))
        self.children.append(sp)
        return sp

    @contextmanager
    def measure(self, name: str, **attrs: object) -> Iterator["Span"]:
        """Time a child span with the wall clock (exception-safe)."""
        sp = self.child(name, **attrs)
        sp.wall_start_s = time.perf_counter()
        try:
            yield sp
        finally:
            sp.wall_end_s = time.perf_counter()

    def record(self, name: str, wall_s: float, **attrs: object) -> "Span":
        """Attach a child with an externally measured wall duration.

        The end timestamp is "now", so exported timelines stay roughly
        ordered; the *duration* is exactly ``wall_s``.
        """
        sp = self.child(name, **attrs)
        sp.wall_end_s = time.perf_counter()
        sp.wall_start_s = sp.wall_end_s - wall_s
        return sp

    def record_sim(
        self, name: str, sim_start_s: float, sim_end_s: float, **attrs: object
    ) -> "Span":
        """Attach a child living purely on the simulation clock."""
        sp = self.child(name, **attrs)
        sp.sim_start_s = sim_start_s
        sp.sim_end_s = sim_end_s
        return sp

    # -- queries -------------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, pre-order."""
        yield self
        for c in self.children:
            yield from c.walk()

    def find_all(self, name: str) -> List["Span"]:
        """Every descendant (or self) with the given name, in tree order."""
        return [s for s in self.walk() if s.name == name]

    def find(self, name: str) -> Optional["Span"]:
        """The first span named ``name``, or ``None``."""
        for s in self.walk():
            if s.name == name:
                return s
        return None

    def phase_names(self) -> List[str]:
        """Distinct span names in the tree, in first-appearance order."""
        seen: Dict[str, None] = {}
        for s in self.walk():
            seen.setdefault(s.name)
        return list(seen)


class _Context(threading.local):
    def __init__(self) -> None:
        self.stack: List[Span] = []
        self.tracer: Optional["Tracer"] = None


_CTX = _Context()


def current_span() -> Optional[Span]:
    """The innermost span opened by :func:`open_span` on this thread."""
    return _CTX.stack[-1] if _CTX.stack else None


def active_tracer() -> Optional["Tracer"]:
    """The tracer activated on this thread, if any."""
    return _CTX.tracer


def span_retained() -> bool:
    """Whether the innermost open span will outlive its ``with`` block.

    True when a tracer is active or the innermost span has an enclosing
    parent; False for a standalone root nobody is collecting.  Expensive
    observability (serializing worker span trees across the process
    boundary) keys off this so untraced operations don't pay for it.
    """
    return _CTX.tracer is not None or len(_CTX.stack) > 1


@contextmanager
def open_span(name: str, **attrs: object) -> Iterator[Span]:
    """Open a wall-clocked span in the thread's trace context.

    Nesting: under the current span when one is open; otherwise as a
    new root of the active tracer; otherwise standalone (the caller
    keeps the returned span — nothing is lost, nothing accumulates).
    """
    sp = Span(name, attrs=dict(attrs))
    parent = current_span()
    if parent is not None:
        parent.children.append(sp)
    elif _CTX.tracer is not None:
        _CTX.tracer.roots.append(sp)
    _CTX.stack.append(sp)
    sp.wall_start_s = time.perf_counter()
    try:
        yield sp
    finally:
        sp.wall_end_s = time.perf_counter()
        _CTX.stack.pop()


@contextmanager
def tracked_span(name: str, **attrs: object) -> Iterator[Optional[Span]]:
    """Like :func:`open_span`, but a no-op when nobody is listening.

    Hot paths (the redistribution executor's per-transfer loop) use this
    so they only pay for span bookkeeping inside a traced operation.
    Yields ``None`` when no span is open and no tracer is active.
    """
    if current_span() is None and _CTX.tracer is None:
        yield None
        return
    with open_span(name, **attrs) as sp:
        yield sp


class Tracer:
    """A collection point for root spans plus activation scoping.

    Activating a tracer makes every :func:`open_span` root on this
    thread land in :attr:`roots`, so a tool can capture one end-to-end
    trace across layers without threading a span through every call:

    .. code-block:: python

        tracer = Tracer("write-trace")
        with tracer.activate():
            fs.write("m", accesses)          # spans collect themselves
        print(tracer.roots[0].phase_names())
    """

    def __init__(self, name: str = "trace"):
        self.name = name
        self.roots: List[Span] = []

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Install as the thread's active tracer for the duration."""
        prev = _CTX.tracer
        _CTX.tracer = self
        try:
            yield self
        finally:
            _CTX.tracer = prev

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Activate and open one root span in a single step."""
        with self.activate():
            with open_span(name, **attrs) as sp:
                yield sp

    def clear(self) -> None:
        self.roots.clear()
