"""Per-tenant SLO objectives and multi-window burn-rate alerting.

The flight recorder (:mod:`repro.obs.flightrec`) closes the
observability loop backwards — what happened before a crash.  This
module closes it forwards: from the per-tenant latency histograms the
service already maintains (``service.tenant.<t>.wait_s``) to a
page-able signal, with nothing new on the hot path.

An :class:`SloObjective` is the classic latency SLO: "``target``
fraction of tenant ``t``'s requests complete within ``threshold_s``
seconds".  The error *budget* is ``1 - target``; the **burn rate** over
a window is the fraction of requests in that window that violated the
threshold, divided by the budget — burn 1.0 consumes the budget exactly
at the sustainable pace, burn 14.4 exhausts a 30-day budget in ~2 days.

:class:`SloTracker` periodically samples cumulative ``(good, total)``
pairs from the histograms (:meth:`~SloTracker.tick`, driven by the
telemetry sampler or on demand by ``/stats``), differentiates them over
a ladder of windows, and applies the Google-SRE multi-window rule: an
alert fires only when *both* a long window and its paired short window
exceed the burn threshold — the long window filters noise, the short
one guarantees the condition is still happening.

Good counts come from the histogram's cumulative buckets at the largest
bucket edge ``<= threshold_s``; with the default ~9%-wide log buckets
the good count is underestimated by at most one bucket's width, which
only makes alerts marginally *more* eager, never blind.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from . import metrics as obs_metrics
from .metrics import MetricsRegistry

__all__ = [
    "SloObjective",
    "SloTracker",
    "DEFAULT_WINDOWS",
    "DEFAULT_BURN_RULES",
]

#: Window ladder (seconds), short to long.
DEFAULT_WINDOWS: Tuple[int, ...] = (60, 300, 3600)

#: Multi-window alert rules: (long_window_s, short_window_s,
#: burn_threshold, severity).  Both windows must exceed the threshold.
DEFAULT_BURN_RULES: Tuple[Tuple[int, int, float, str], ...] = (
    (300, 60, 14.4, "page"),
    (3600, 300, 6.0, "ticket"),
)


@dataclass(frozen=True)
class SloObjective:
    """``target`` fraction of ``tenant``'s requests within
    ``threshold_s`` seconds (measured on service wait time)."""

    tenant: str
    threshold_s: float
    target: float

    def __post_init__(self) -> None:
        if self.threshold_s <= 0:
            raise ValueError(f"threshold_s must be > 0, got {self.threshold_s}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad fraction."""
        return 1.0 - self.target

    @classmethod
    def parse(cls, spec: str) -> "SloObjective":
        """Parse ``"tenant=<threshold_s>@<target>"`` — the CLI form,
        e.g. ``"t0=0.05@0.99"`` (99% of t0's requests under 50 ms)."""
        try:
            tenant, rest = spec.split("=", 1)
            threshold, target = rest.split("@", 1)
            return cls(tenant.strip(), float(threshold), float(target))
        except ValueError as exc:
            raise ValueError(
                f"bad SLO spec {spec!r} (want 'tenant=<threshold_s>@<target>',"
                f" e.g. 't0=0.05@0.99'): {exc}"
            ) from None


def _good_total(hist, threshold_s: float) -> Tuple[int, int]:
    """Cumulative (good, total) from a histogram: good = samples at or
    under the largest bucket edge ``<= threshold_s``."""
    good = 0
    total = 0
    for le, cum in hist.buckets():
        total = cum
        if le <= threshold_s:
            good = cum
    return good, total


class SloTracker:
    """Samples per-tenant histograms into windows and computes burn.

    ``tick()`` is cheap (one ``buckets()`` call per objective) and
    idempotent within ``min_tick_s`` — both the background telemetry
    sampler and an on-demand ``/stats`` render can call it without
    flooding the history.
    """

    def __init__(
        self,
        objectives: Sequence[SloObjective],
        registry: Optional[MetricsRegistry] = None,
        windows: Sequence[int] = DEFAULT_WINDOWS,
        burn_rules: Sequence[Tuple[int, int, float, str]] = DEFAULT_BURN_RULES,
        clock: Callable[[], float] = time.monotonic,
        min_tick_s: float = 1.0,
        source: str = "service.tenant.{tenant}.wait_s",
    ):
        self.objectives: Dict[str, SloObjective] = {
            o.tenant: o for o in objectives
        }
        self.registry = registry or obs_metrics.get_registry()
        self.windows = tuple(sorted(windows))
        self.burn_rules = tuple(burn_rules)
        self.clock = clock
        self.min_tick_s = min_tick_s
        self.source = source
        horizon = max(self.windows) if self.windows else 3600
        # (t, good, total) samples per tenant; enough history for the
        # longest window at the fastest tick rate, bounded.
        self._maxlen = max(16, int(horizon / max(min_tick_s, 0.01)) + 2)
        self._history: Dict[str, Deque[Tuple[float, int, int]]] = {
            t: deque(maxlen=self._maxlen) for t in self.objectives
        }
        self._last_tick = -float("inf")
        self._active_alerts: Dict[Tuple[str, int, int], dict] = {}
        self._m_alerts = self.registry.counter("slo.alerts")
        self._m_ticks = self.registry.counter("slo.ticks")
        for o in self.objectives.values():
            self.registry.gauge(f"slo.{o.tenant}.objective.threshold_s").observe(
                o.threshold_s
            )
            self.registry.gauge(f"slo.{o.tenant}.objective.target").observe(
                o.target
            )

    # -- sampling ------------------------------------------------------------

    def tick(self, force: bool = False) -> None:
        """Sample cumulative (good, total) per objective; no-op when
        the last tick was under ``min_tick_s`` ago (unless forced)."""
        now = self.clock()
        if not force and now - self._last_tick < self.min_tick_s:
            return
        self._last_tick = now
        self._m_ticks.inc()
        for tenant, obj in self.objectives.items():
            hist = self.registry.histograms().get(
                self.source.format(tenant=tenant)
            )
            if hist is None:
                good, total = 0, 0
            else:
                good, total = _good_total(hist, obj.threshold_s)
            self._history[tenant].append((now, good, total))
        # Refresh the burn-rate gauges so Prometheus sees them without
        # a /stats render.
        for tenant in self.objectives:
            for w, burn in self.burn_rates(tenant).items():
                self.registry.gauge(f"slo.{tenant}.burn_rate.{w}s").observe(
                    burn
                )

    # -- burn math -----------------------------------------------------------

    def _window_delta(
        self, tenant: str, window_s: int
    ) -> Tuple[int, int]:
        """(bad, total) request deltas over the trailing window."""
        hist = self._history.get(tenant)
        if not hist:
            return 0, 0
        t_now, good_now, total_now = hist[-1]
        t_lo = t_now - window_s
        # Oldest sample still inside the window; fall back to the
        # earliest retained one (short uptime: window covers all).
        base = hist[0]
        for sample in hist:
            if sample[0] >= t_lo:
                break
            base = sample
        _, good_0, total_0 = base
        d_total = total_now - total_0
        d_good = good_now - good_0
        return max(0, d_total - d_good), max(0, d_total)

    def burn_rate(self, tenant: str, window_s: int) -> float:
        """Bad fraction over the window divided by the error budget
        (0.0 when the window saw no traffic)."""
        obj = self.objectives[tenant]
        bad, total = self._window_delta(tenant, window_s)
        if total == 0:
            return 0.0
        return (bad / total) / obj.budget

    def burn_rates(self, tenant: str) -> Dict[int, float]:
        return {w: self.burn_rate(tenant, w) for w in self.windows}

    # -- alerting ------------------------------------------------------------

    def alerts(self) -> List[dict]:
        """Currently-firing multi-window burn alerts (both the long and
        the paired short window over threshold).  Newly-firing alerts
        bump the ``slo.alerts`` counter once per transition."""
        firing: List[dict] = []
        seen: Dict[Tuple[str, int, int], dict] = {}
        for tenant, obj in self.objectives.items():
            for long_w, short_w, threshold, severity in self.burn_rules:
                burn_long = self.burn_rate(tenant, long_w)
                burn_short = self.burn_rate(tenant, short_w)
                if burn_long >= threshold and burn_short >= threshold:
                    alert = {
                        "tenant": tenant,
                        "severity": severity,
                        "long_window_s": long_w,
                        "short_window_s": short_w,
                        "burn_threshold": threshold,
                        "burn_long": burn_long,
                        "burn_short": burn_short,
                        "threshold_s": obj.threshold_s,
                        "target": obj.target,
                    }
                    key = (tenant, long_w, short_w)
                    seen[key] = alert
                    firing.append(alert)
                    if key not in self._active_alerts:
                        self._m_alerts.inc()
        self._active_alerts = seen
        return firing

    # -- exposition ----------------------------------------------------------

    def payload(self) -> dict:
        """The ``slo`` section of ``/stats``: per-tenant objective,
        overall compliance, burn rate per window, plus firing alerts."""
        tenants = {}
        for tenant, obj in self.objectives.items():
            hist = self._history.get(tenant)
            good, total = (hist[-1][1], hist[-1][2]) if hist else (0, 0)
            tenants[tenant] = {
                "objective": {
                    "threshold_s": obj.threshold_s,
                    "target": obj.target,
                    "budget": obj.budget,
                },
                "good": good,
                "total": total,
                "compliance": (good / total) if total else 1.0,
                "burn_rate": {
                    f"{w}s": self.burn_rate(tenant, w) for w in self.windows
                },
            }
        return {"tenants": tenants, "alerts": self.alerts()}
