"""Post-mortem forensics: decode a dead process's flight-recorder ring.

The counterpart of :mod:`repro.obs.flightrec` that runs in the
*survivor*: given the ring file a killed process left behind, rebuild
the story of its final operations from the mmap ring **alone** — no
journal access, no namespace, no cooperation from the dead process.

Three layers:

* :func:`decode_ring` — scan every slot, keep exactly the records
  whose CRC verifies, order them by sequence number, and count torn
  slots (a kill mid-store) separately from never-written ones.  Torn
  records are detected, never misparsed — the same discipline the
  write-ahead journals apply to data.
* :func:`reconstruct` — fold the event stream into the "last words":
  the operations that were in flight (started, never finished), the
  locks that were granted and never released, the group commit the
  victim was cutting when it died, and the final N events as a
  relative-time timeline.
* :func:`render_blackbox` — the human-readable report
  (``python -m repro.tools blackbox`` prints it; the kill-restart
  chaos harness attaches the JSON form to every report).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .flightrec import (
    BODY,
    CRC,
    EVENT_NAMES,
    EV_BATCH,
    EV_COMMIT,
    EV_COMMIT_START,
    EV_LOCK_GRANT,
    EV_LOCK_RELEASE,
    EV_OP_FINISH,
    EV_OP_START,
    EV_WORKER_CRASH,
    HEADER,
    HEADER_BYTES,
    INTERN_BYTES,
    INTERN_ENTRY,
    INTERN_FILE,
    INTERN_SLOTS,
    INTERN_TENANT,
    RING_MAGIC,
    RING_VERSION,
    SLOT_BYTES,
    SLOTS_OFFSET,
)

__all__ = [
    "RingEvent",
    "RingDump",
    "decode_ring",
    "finished_ops",
    "reconstruct",
    "render_blackbox",
]


@dataclass
class RingEvent:
    """One CRC-verified event, as stored."""

    seq: int
    etype: int
    t_ns: int
    trace: int
    tseq: int
    tenant: int
    file: int
    a: int
    b: int

    @property
    def name(self) -> str:
        return EVENT_NAMES.get(self.etype, f"etype{self.etype}")

    @property
    def trace_id(self) -> str:
        """The trace id rendered back in the standard ``op-`` form."""
        return f"op-{self.trace:08d}" if self.trace else ""


@dataclass
class RingDump:
    """Everything a ring file yields to a post-mortem scan."""

    path: str
    pid: int = 0
    created_ns: int = 0
    capacity: int = 0
    events: List[RingEvent] = field(default_factory=list)
    #: Slots holding bytes that fail their CRC — a store torn by the
    #: kill (or bit rot).  Detected and counted, never parsed.
    torn: int = 0
    #: Slots never written (all zero).
    empty: int = 0
    #: Whether the ring overwrote old events (events lost to wrap).
    wrapped: bool = False
    names: Dict[Tuple[int, int], str] = field(default_factory=dict)

    def tenant_name(self, key: int) -> str:
        return self.names.get((INTERN_TENANT, key), f"tenant#{key:08x}")

    def file_name(self, key: int) -> str:
        return self.names.get((INTERN_FILE, key), f"file#{key:08x}")


def decode_ring(path: str) -> RingDump:
    """Decode a ring file into its verified event sequence.

    Raises ``ValueError`` only when the file is not a flight-recorder
    ring at all (bad magic/version/size); damage *inside* a valid ring
    degrades to counts, never an exception.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    if len(raw) < SLOTS_OFFSET:
        raise ValueError(f"{path!r} is too short to be a flight ring")
    magic, version, slot, capacity, pid, created_ns = HEADER.unpack_from(
        raw, 0
    )
    if magic != RING_MAGIC or version != RING_VERSION or slot != SLOT_BYTES:
        raise ValueError(
            f"{path!r} is not a flight ring "
            f"(magic={magic!r} version={version} slot={slot})"
        )
    dump = RingDump(
        path=path, pid=pid, created_ns=created_ns, capacity=capacity
    )
    for i in range(INTERN_SLOTS):
        off = HEADER_BYTES + i * 32
        kind, key, length, name = INTERN_ENTRY.unpack_from(raw, off)
        if kind:
            dump.names[(kind, key)] = name[:length].decode(
                "utf-8", errors="replace"
            )
    end = min(len(raw), SLOTS_OFFSET + capacity * SLOT_BYTES)
    for off in range(SLOTS_OFFSET, end - SLOT_BYTES + 1, SLOT_BYTES):
        cell = raw[off:off + SLOT_BYTES]
        if not any(cell):
            dump.empty += 1
            continue
        (crc,) = CRC.unpack_from(cell, 0)
        body = cell[CRC.size:]
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            dump.torn += 1
            continue
        dump.events.append(RingEvent(*BODY.unpack(body)))
    dump.events.sort(key=lambda e: e.seq)
    if dump.events:
        dump.wrapped = dump.events[-1].seq > capacity
    return dump


def finished_ops(dump: RingDump) -> Dict[str, Set[int]]:
    """Per file name, the ticket seqs whose ``op_finish`` (success)
    made it into the retained window — what the ring proves the dead
    process completed."""
    out: Dict[str, Set[int]] = {}
    for e in dump.events:
        if e.etype == EV_OP_FINISH and e.b == 0:
            out.setdefault(dump.file_name(e.file), set()).add(e.tseq)
    return out


def _event_dict(e: RingEvent, dump: RingDump, t_end: int) -> dict:
    d = {
        "seq": e.seq,
        "event": e.name,
        "t_rel_s": (e.t_ns - t_end) / 1e9,
        "a": e.a,
        "b": e.b,
    }
    if e.trace:
        d["trace_id"] = e.trace_id
    if e.tseq >= 0:
        d["ticket_seq"] = e.tseq
    if e.file:
        d["file"] = dump.file_name(e.file)
    if e.tenant:
        d["tenant"] = dump.tenant_name(e.tenant)
    return d


def reconstruct(dump: RingDump, last: int = 32) -> dict:
    """The dead process's last words, folded from the event stream.

    Returns a JSON-ready dict: the final ``last`` events as a
    relative-time timeline (t=0 at the newest event, negative seconds
    before it), the in-flight operations (``op_start`` without a
    matching ``op_finish``), the batch being executed, the locks still
    held (grants minus releases per file), the commit being cut
    (``commit_start`` without its ``commit``), the last durable commit
    per file, and any worker-crash events.
    """
    events = dump.events
    t_end = events[-1].t_ns if events else 0
    in_flight: Dict[Tuple[int, int, int], RingEvent] = {}
    lock_depth: Dict[int, int] = {}
    lock_mode: Dict[int, int] = {}
    cutting: Dict[int, RingEvent] = {}
    last_commit: Dict[int, RingEvent] = {}
    last_batch: Optional[RingEvent] = None
    crashes: List[RingEvent] = []
    for e in events:
        key = (e.trace, e.tseq, e.file)
        if e.etype == EV_OP_START:
            in_flight[key] = e
        elif e.etype == EV_OP_FINISH:
            in_flight.pop(key, None)
        elif e.etype == EV_BATCH:
            last_batch = e
        elif e.etype == EV_LOCK_GRANT:
            lock_depth[e.file] = lock_depth.get(e.file, 0) + 1
            lock_mode[e.file] = e.a
        elif e.etype == EV_LOCK_RELEASE:
            lock_depth[e.file] = lock_depth.get(e.file, 0) - 1
        elif e.etype == EV_COMMIT_START:
            cutting[e.file] = e
        elif e.etype == EV_COMMIT:
            cutting.pop(e.file, None)
            last_commit[e.file] = e
        elif e.etype == EV_WORKER_CRASH:
            crashes.append(e)
    return {
        "path": dump.path,
        "pid": dump.pid,
        "capacity": dump.capacity,
        "events": len(events),
        "torn": dump.torn,
        "wrapped": dump.wrapped,
        "timeline": [
            _event_dict(e, dump, t_end) for e in events[-last:]
        ],
        "in_flight": [
            _event_dict(e, dump, t_end) for e in in_flight.values()
        ],
        "batch_in_progress": (
            _event_dict(last_batch, dump, t_end)
            if last_batch is not None
            and any(s.seq > last_batch.seq for s in in_flight.values())
            else None
        ),
        "held_locks": [
            {
                "file": dump.file_name(f),
                "mode": "w" if lock_mode.get(f) else "r",
                "depth": depth,
            }
            for f, depth in sorted(lock_depth.items())
            if depth > 0
        ],
        "commit_in_progress": [
            _event_dict(e, dump, t_end) for e in cutting.values()
        ],
        "last_commit": {
            dump.file_name(f): _event_dict(e, dump, t_end)
            for f, e in sorted(last_commit.items())
        },
        "worker_crashes": [
            _event_dict(e, dump, t_end) for e in crashes
        ],
    }


def _fmt_event(d: dict) -> str:
    parts = [f"[{d['t_rel_s']:+10.6f}s]", f"{d['event']:<13}"]
    for k in ("file", "ticket_seq", "trace_id", "tenant"):
        if k in d:
            parts.append(f"{k.replace('ticket_seq', 'seq')}={d[k]}")
    if d.get("a") or d.get("b"):
        parts.append(f"a={d['a']} b={d['b']}")
    return " ".join(parts)


def render_blackbox(recon: dict) -> str:
    """The human-readable blackbox report for one reconstruction."""
    lines = [
        f"flight ring {recon['path']} (pid {recon['pid']})",
        f"  {recon['events']} event(s) decoded, {recon['torn']} torn, "
        f"wrapped={recon['wrapped']}",
    ]
    if recon["worker_crashes"]:
        lines.append("  worker crashes:")
        for d in recon["worker_crashes"]:
            lines.append("    " + _fmt_event(d))
    lines.append("  last words:")
    for d in recon["in_flight"]:
        lines.append("    in-flight   " + _fmt_event(d))
    for d in recon["commit_in_progress"]:
        lines.append("    mid-commit  " + _fmt_event(d))
    for h in recon["held_locks"]:
        lines.append(
            f"    held lock   file={h['file']} mode={h['mode']} "
            f"depth={h['depth']}"
        )
    if not (
        recon["in_flight"]
        or recon["commit_in_progress"]
        or recon["held_locks"]
    ):
        lines.append("    (idle at death: no in-flight state)")
    if recon["last_commit"]:
        lines.append("  last durable commit per file:")
        for name, d in recon["last_commit"].items():
            lines.append(
                f"    {name}: stamp={d['a']} records={d['b']} "
                f"at {d['t_rel_s']:+.6f}s"
            )
    lines.append(f"  final {len(recon['timeline'])} events:")
    for d in recon["timeline"]:
        lines.append("    " + _fmt_event(d))
    return "\n".join(lines)
