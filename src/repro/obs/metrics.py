"""Process-wide named counters, gauges, and bounded histograms.

The span tree answers "where did this operation spend its time"; the
metrics registry answers "what has this process done so far" — plan
cache hits and evictions, pair-pruning effectiveness, bytes and
messages moved by the I/O engine.  Counters are monotonic integers,
cheap enough for hot paths, and thread-safe.  Distributions (queue
depth, batch size, per-stage latencies) live in fixed-footprint
log-bucket :class:`~repro.obs.histogram.Histogram` s — quantiles and
slow-op exemplars without retaining samples.

Consumers read a :func:`snapshot`; tests and benchmarks carve out their
window with :func:`reset` or by diffing two snapshots.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from .histogram import Histogram

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "inc",
    "observe",
    "snapshot",
    "reset_metrics",
    "stage_histograms_enabled",
    "set_stage_histograms",
]


class Counter:
    """A monotonic named counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A sampled value: tracks last/max/sum/count under one name.

    Where a :class:`Counter` answers "how many so far", a gauge answers
    "how big was it when sampled" — queue depth at admission, batch
    size at dispatch, per-request wait time.  ``sum``/``count`` give
    the mean without storing samples; ``max`` gives the high-water
    mark.  All updates are lock-guarded (gauges live on contended
    paths by design).
    """

    __slots__ = ("name", "last", "max", "sum", "count", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.last = 0.0
        self.max = 0.0
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.last = value
            if value > self.max:
                self.max = value
            self.sum += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            return {
                "last": self.last,
                "max": self.max,
                "sum": self.sum,
                "count": self.count,
                "mean": self.sum / self.count if self.count else 0.0,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name} last={self.last} max={self.max})"


class MetricsRegistry:
    """A name -> :class:`Counter` map with dotted-prefix conventions.

    Names are dotted paths (``plan_cache.hits``,
    ``engine.write.payload_bytes``); prefix filters operate on those
    paths.  Separate registries are handy in tests; production code
    uses the process-wide one from :func:`get_registry`.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()
        #: Bumped by :meth:`reset`; lets hot paths cache instrument
        #: handles and notice when a reset invalidated them.
        self.generation = 0

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def observe(self, name: str, value: float) -> None:
        self.gauge(name).observe(value)

    def histogram(self, name: str, **kwargs) -> Histogram:
        """The histogram registered under ``name`` (created on first
        use; ``kwargs`` configure growth/range/exemplars on creation)."""
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.get(name)
                if h is None:
                    h = self._histograms[name] = Histogram(name, **kwargs)
        return h

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, int]:
        """Current counter values, optionally restricted to a prefix."""
        with self._lock:
            items = list(self._counters.items())
        if prefix is not None:
            dotted = prefix if prefix.endswith(".") else prefix + "."
            items = [
                (k, c) for k, c in items if k.startswith(dotted) or k == prefix
            ]
        return {k: c.value for k, c in sorted(items)}

    @staticmethod
    def _filtered(items, prefix: Optional[str]):
        if prefix is None:
            return items
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return [(k, v) for k, v in items if k.startswith(dotted) or k == prefix]

    def gauges(self, prefix: Optional[str] = None) -> Dict[str, Dict[str, float]]:
        """Current distribution summaries, optionally restricted to a
        prefix.  Histograms are included with the same legacy keys as
        gauges (``last``/``max``/``sum``/``count``/``mean``) plus their
        quantiles, so consumers survive a gauge -> histogram migration."""
        with self._lock:
            items = list(self._gauges.items()) + list(self._histograms.items())
        return {k: v.as_dict() for k, v in sorted(self._filtered(items, prefix))}

    def histograms(self, prefix: Optional[str] = None) -> Dict[str, Histogram]:
        """The live histogram objects, optionally restricted to a prefix
        (for exposition: quantiles, buckets, exemplars)."""
        with self._lock:
            items = list(self._histograms.items())
        return dict(sorted(self._filtered(items, prefix)))

    def reset(self, prefix: Optional[str] = None) -> None:
        """Drop counters, gauges and histograms (all, or under a dotted
        prefix)."""
        with self._lock:
            self.generation += 1
            if prefix is None:
                self._counters.clear()
                self._gauges.clear()
                self._histograms.clear()
                return
            dotted = prefix if prefix.endswith(".") else prefix + "."
            for store in (self._counters, self._gauges, self._histograms):
                for k in [
                    k for k in store if k.startswith(dotted) or k == prefix
                ]:
                    del store[k]


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _REGISTRY


def counter(name: str) -> Counter:
    """A process-wide counter by name."""
    return _REGISTRY.counter(name)


def inc(name: str, n: int = 1) -> None:
    """Increment a process-wide counter."""
    _REGISTRY.inc(name, n)


def gauge(name: str) -> Gauge:
    """A process-wide gauge by name."""
    return _REGISTRY.gauge(name)


def observe(name: str, value: float) -> None:
    """Record one sample on a process-wide gauge."""
    _REGISTRY.observe(name, value)


def histogram(name: str, **kwargs) -> Histogram:
    """A process-wide histogram by name."""
    return _REGISTRY.histogram(name, **kwargs)


# Per-stage engine histograms can be switched off so the telemetry
# benchmark can price them (and an operator can shed the last few
# percent on a hot path); everything else — counters, service
# histograms, span trees — is always on.
_STAGE_HISTOGRAMS = True


def stage_histograms_enabled() -> bool:
    """Whether the engine records per-stage latency histograms."""
    return _STAGE_HISTOGRAMS


def set_stage_histograms(enabled: bool) -> None:
    """Toggle the engine's per-stage latency histograms."""
    global _STAGE_HISTOGRAMS
    _STAGE_HISTOGRAMS = bool(enabled)


def snapshot(prefix: Optional[str] = None) -> Dict[str, int]:
    """Snapshot of the process-wide registry."""
    return _REGISTRY.snapshot(prefix)


def reset_metrics(prefix: Optional[str] = None) -> None:
    """Reset process-wide counters (all, or under a prefix)."""
    _REGISTRY.reset(prefix)
