"""Process-wide named counters.

The span tree answers "where did this operation spend its time"; the
metrics registry answers "what has this process done so far" — plan
cache hits and evictions, pair-pruning effectiveness, bytes and
messages moved by the I/O engine.  Counters are monotonic integers,
cheap enough for hot paths, and thread-safe.

Consumers read a :func:`snapshot`; tests and benchmarks carve out their
window with :func:`reset` or by diffing two snapshots.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

__all__ = [
    "Counter",
    "MetricsRegistry",
    "get_registry",
    "counter",
    "inc",
    "snapshot",
    "reset_metrics",
]


class Counter:
    """A monotonic named counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self._value})"


class MetricsRegistry:
    """A name -> :class:`Counter` map with dotted-prefix conventions.

    Names are dotted paths (``plan_cache.hits``,
    ``engine.write.payload_bytes``); prefix filters operate on those
    paths.  Separate registries are handy in tests; production code
    uses the process-wide one from :func:`get_registry`.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, int]:
        """Current values, optionally restricted to a dotted prefix."""
        with self._lock:
            items = list(self._counters.items())
        if prefix is not None:
            dotted = prefix if prefix.endswith(".") else prefix + "."
            items = [
                (k, c) for k, c in items if k.startswith(dotted) or k == prefix
            ]
        return {k: c.value for k, c in sorted(items)}

    def reset(self, prefix: Optional[str] = None) -> None:
        """Drop counters (all, or those under a dotted prefix)."""
        with self._lock:
            if prefix is None:
                self._counters.clear()
                return
            dotted = prefix if prefix.endswith(".") else prefix + "."
            for k in [
                k
                for k in self._counters
                if k.startswith(dotted) or k == prefix
            ]:
                del self._counters[k]


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _REGISTRY


def counter(name: str) -> Counter:
    """A process-wide counter by name."""
    return _REGISTRY.counter(name)


def inc(name: str, n: int = 1) -> None:
    """Increment a process-wide counter."""
    _REGISTRY.inc(name, n)


def snapshot(prefix: Optional[str] = None) -> Dict[str, int]:
    """Snapshot of the process-wide registry."""
    return _REGISTRY.snapshot(prefix)


def reset_metrics(prefix: Optional[str] = None) -> None:
    """Reset process-wide counters (all, or under a prefix)."""
    _REGISTRY.reset(prefix)
