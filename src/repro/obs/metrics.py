"""Process-wide named counters.

The span tree answers "where did this operation spend its time"; the
metrics registry answers "what has this process done so far" — plan
cache hits and evictions, pair-pruning effectiveness, bytes and
messages moved by the I/O engine.  Counters are monotonic integers,
cheap enough for hot paths, and thread-safe.

Consumers read a :func:`snapshot`; tests and benchmarks carve out their
window with :func:`reset` or by diffing two snapshots.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "get_registry",
    "counter",
    "gauge",
    "inc",
    "observe",
    "snapshot",
    "reset_metrics",
]


class Counter:
    """A monotonic named counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A sampled value: tracks last/max/sum/count under one name.

    Where a :class:`Counter` answers "how many so far", a gauge answers
    "how big was it when sampled" — queue depth at admission, batch
    size at dispatch, per-request wait time.  ``sum``/``count`` give
    the mean without storing samples; ``max`` gives the high-water
    mark.  All updates are lock-guarded (gauges live on contended
    paths by design).
    """

    __slots__ = ("name", "last", "max", "sum", "count", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.last = 0.0
        self.max = 0.0
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.last = value
            if value > self.max:
                self.max = value
            self.sum += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            return {
                "last": self.last,
                "max": self.max,
                "sum": self.sum,
                "count": self.count,
                "mean": self.sum / self.count if self.count else 0.0,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name} last={self.last} max={self.max})"


class MetricsRegistry:
    """A name -> :class:`Counter` map with dotted-prefix conventions.

    Names are dotted paths (``plan_cache.hits``,
    ``engine.write.payload_bytes``); prefix filters operate on those
    paths.  Separate registries are handy in tests; production code
    uses the process-wide one from :func:`get_registry`.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def observe(self, name: str, value: float) -> None:
        self.gauge(name).observe(value)

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, int]:
        """Current counter values, optionally restricted to a prefix."""
        with self._lock:
            items = list(self._counters.items())
        if prefix is not None:
            dotted = prefix if prefix.endswith(".") else prefix + "."
            items = [
                (k, c) for k, c in items if k.startswith(dotted) or k == prefix
            ]
        return {k: c.value for k, c in sorted(items)}

    def gauges(self, prefix: Optional[str] = None) -> Dict[str, Dict[str, float]]:
        """Current gauge summaries, optionally restricted to a prefix."""
        with self._lock:
            items = list(self._gauges.items())
        if prefix is not None:
            dotted = prefix if prefix.endswith(".") else prefix + "."
            items = [
                (k, g) for k, g in items if k.startswith(dotted) or k == prefix
            ]
        return {k: g.as_dict() for k, g in sorted(items)}

    def reset(self, prefix: Optional[str] = None) -> None:
        """Drop counters and gauges (all, or under a dotted prefix)."""
        with self._lock:
            if prefix is None:
                self._counters.clear()
                self._gauges.clear()
                return
            dotted = prefix if prefix.endswith(".") else prefix + "."
            for store in (self._counters, self._gauges):
                for k in [
                    k for k in store if k.startswith(dotted) or k == prefix
                ]:
                    del store[k]


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _REGISTRY


def counter(name: str) -> Counter:
    """A process-wide counter by name."""
    return _REGISTRY.counter(name)


def inc(name: str, n: int = 1) -> None:
    """Increment a process-wide counter."""
    _REGISTRY.inc(name, n)


def gauge(name: str) -> Gauge:
    """A process-wide gauge by name."""
    return _REGISTRY.gauge(name)


def observe(name: str, value: float) -> None:
    """Record one sample on a process-wide gauge."""
    _REGISTRY.observe(name, value)


def snapshot(prefix: Optional[str] = None) -> Dict[str, int]:
    """Snapshot of the process-wide registry."""
    return _REGISTRY.snapshot(prefix)


def reset_metrics(prefix: Optional[str] = None) -> None:
    """Reset process-wide counters (all, or under a prefix)."""
    _REGISTRY.reset(prefix)
