"""Fixed-footprint HDR-style latency histograms with slow-op exemplars.

A :class:`Histogram` buckets observations on a logarithmic grid, so it
answers quantile queries (p50/p90/p99) with a *bounded relative error*
while storing a fixed number of integers — no matter how many samples a
long-running ``serve`` process feeds it.  This replaces the temptation
to keep raw sample lists (unbounded memory) and the lossy
last/max/sum/count summary of a plain gauge (no quantiles at all).

Design, following HdrHistogram and Prometheus native histograms:

* bucket ``i`` covers ``[lowest * growth**i, lowest * growth**(i+1))``;
  with the default ``growth = 2**(1/8)`` a bucket is ~9% wide and the
  geometric-midpoint representative is at most ``sqrt(growth) - 1``
  (~4.4%) away from any value in the bucket — that is the quantile
  error bound (:attr:`error_bound`);
* ``sum``/``count``/``max``/``min``/``last`` are tracked exactly, so
  totals reconcile to the sample (tests assert this across threads);
* values ``<= 0`` land in a dedicated zero bucket; values outside
  ``[lowest, highest)`` clamp into the first/last bucket (the range
  covers 0.1 microseconds to ~115 days of seconds by default);
* the top-``exemplar_k`` largest observations are retained as
  **exemplars** — value plus whatever identifying attributes the caller
  supplies (a trace id, a byte count) — so "p99 is high" comes with
  the trace ids of the operations that made it high.

All updates take the instance lock; histograms are built for contended
paths (service admission, engine completion).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple

__all__ = ["Histogram"]

#: Default bucket growth factor: 8 buckets per octave (~9% wide).
DEFAULT_GROWTH = 2.0 ** (1.0 / 8.0)
#: Default smallest resolvable value (0.1 us when observing seconds).
DEFAULT_LOWEST = 1e-7
#: Default largest resolvable value (~115 days in seconds).
DEFAULT_HIGHEST = 1e7
#: Default number of slow-op exemplars retained.
DEFAULT_EXEMPLARS = 5


class Histogram:
    """A bounded log-bucket histogram with exact totals and exemplars."""

    __slots__ = (
        "name",
        "growth",
        "lowest",
        "highest",
        "exemplar_k",
        "_log_growth",
        "_log_lowest",
        "_counts",
        "_zero_count",
        "count",
        "sum",
        "max",
        "min",
        "last",
        "_exemplars",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        growth: float = DEFAULT_GROWTH,
        lowest: float = DEFAULT_LOWEST,
        highest: float = DEFAULT_HIGHEST,
        exemplar_k: int = DEFAULT_EXEMPLARS,
    ):
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        if not 0 < lowest < highest:
            raise ValueError(f"need 0 < lowest < highest, got {lowest}, {highest}")
        self.name = name
        self.growth = growth
        self.lowest = lowest
        self.highest = highest
        self.exemplar_k = exemplar_k
        self._log_growth = math.log(growth)
        self._log_lowest = math.log(lowest)
        n_buckets = int(math.ceil((math.log(highest) - self._log_lowest) / self._log_growth))
        self._counts = [0] * n_buckets
        self._zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self.min = math.inf
        self.last = 0.0
        #: ``(value, attrs)`` pairs, ascending by value, at most ``exemplar_k``.
        self._exemplars: List[Tuple[float, Dict[str, object]]] = []
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def _index(self, value: float) -> int:
        i = int((math.log(value) - self._log_lowest) / self._log_growth)
        if i < 0:
            return 0
        if i >= len(self._counts):
            return len(self._counts) - 1
        return i

    def observe(self, value: float, **exemplar: object) -> None:
        """Record one sample.  Keyword arguments (``trace_id=...``,
        ``bytes=...``) make the sample an exemplar *candidate*: it is
        retained if it ranks among the ``exemplar_k`` largest seen."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.last = value
            if value > self.max:
                self.max = value
            if value < self.min:
                self.min = value
            if value <= 0.0:
                self._zero_count += 1
            else:
                # _index(), inlined: observe() sits on the engine's
                # per-operation path and the call overhead is measurable
                # in the telemetry-overhead benchmark.
                counts = self._counts
                i = int((math.log(value) - self._log_lowest) / self._log_growth)
                if i < 0:
                    i = 0
                elif i >= len(counts):
                    i = len(counts) - 1
                counts[i] += 1
            if exemplar:
                ex = self._exemplars
                if len(ex) < self.exemplar_k:
                    ex.append((value, dict(exemplar)))
                    ex.sort(key=lambda p: p[0])
                elif ex and value > ex[0][0]:
                    ex[0] = (value, dict(exemplar))
                    ex.sort(key=lambda p: p[0])

    # -- queries -------------------------------------------------------------

    @property
    def error_bound(self) -> float:
        """Worst-case relative error of a quantile estimate (the
        geometric midpoint of a bucket vs its edges)."""
        return math.sqrt(self.growth) - 1.0

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _bucket_bounds(self, i: int) -> Tuple[float, float]:
        lo = math.exp(self._log_lowest + i * self._log_growth)
        return lo, lo * self.growth

    def _quantile_locked(self, q: float) -> float:
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        seen = self._zero_count
        if target <= seen:
            return 0.0
        for i, c in enumerate(self._counts):
            if not c:
                continue
            seen += c
            if seen >= target:
                lo, hi = self._bucket_bounds(i)
                rep = math.sqrt(lo * hi)
                # Exact extrema tighten the edge quantiles.
                return min(max(rep, self.min), self.max)
        return self.max  # pragma: no cover - counts always reconcile

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` in (0, 1], within
        :attr:`error_bound` relative error."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        with self._lock:
            return self._quantile_locked(q)

    def as_dict(self) -> Dict[str, float]:
        """Summary with the legacy gauge keys (``last``/``max``/``sum``/
        ``count``/``mean``) plus quantiles — drop-in for consumers of
        :meth:`Gauge.as_dict`."""
        with self._lock:
            d = {
                "last": self.last,
                "max": self.max if self.count else 0.0,
                "sum": self.sum,
                "count": self.count,
                "mean": self.sum / self.count if self.count else 0.0,
                "p50": self._quantile_locked(0.50) if self.count else 0.0,
                "p90": self._quantile_locked(0.90) if self.count else 0.0,
                "p99": self._quantile_locked(0.99) if self.count else 0.0,
            }
        return d

    def exemplars(self) -> List[Dict[str, object]]:
        """The retained slowest observations, slowest first, each a dict
        of ``{"value": v, **attrs}``."""
        with self._lock:
            pairs = list(self._exemplars)
        return [
            {"value": v, **attrs} for v, attrs in sorted(pairs, reverse=True, key=lambda p: p[0])
        ]

    def buckets(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs over the non-empty
        buckets, ending with ``(inf, count)`` — the Prometheus
        histogram shape."""
        out: List[Tuple[float, int]] = []
        with self._lock:
            cum = self._zero_count
            if cum:
                out.append((self.lowest, cum))
            for i, c in enumerate(self._counts):
                if c:
                    cum += c
                    out.append((self._bucket_bounds(i)[1], cum))
            out.append((math.inf, self.count))
        return out

    @property
    def bucket_count(self) -> int:
        """Number of allocated buckets — fixed at construction, the
        memory-boundedness guarantee."""
        return len(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Histogram({self.name} count={self.count} "
            f"p50={self.quantile(0.5):.3g} max={self.max:.3g})"
        )
