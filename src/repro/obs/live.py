"""Live telemetry: an HTTP stats endpoint and a periodic registry sampler.

Two pieces that turn the in-process registry into something an operator
can watch while ``repro.tools serve`` is running:

* :class:`StatsServer` — a stdlib ``ThreadingHTTPServer`` on localhost
  serving ``GET /metrics`` (Prometheus text exposition, scrapable) and
  ``GET /stats`` (a JSON snapshot: counters, distribution summaries
  with quantiles, slow-op exemplars, derived cache hit rates, uptime,
  and the sampler's recent time series).  Bind port 0 for an ephemeral
  port — tests do — and read the actual address from :attr:`url`.
* :class:`TelemetrySampler` — a daemon thread that snapshots the
  registry every ``interval_s`` into a bounded ring buffer
  (``deque(maxlen=...)``), so a post-mortem or the ``/stats`` endpoint
  can show *trends* (queue depth climbing, hit rate decaying) rather
  than a single end-of-run total.

Both are deliberately dependency-free and safe to run alongside the
service's own worker threads: the registry is internally locked, and
neither piece ever blocks a request path.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Deque, Dict, List, Optional

from .metrics import MetricsRegistry, get_registry
from .prometheus import render_prometheus
from .slo import SloTracker

__all__ = ["StatsServer", "TelemetrySampler", "stats_payload"]


def _derived_hit_rates(counters: Dict[str, int]) -> Dict[str, float]:
    """``<stem>.hit_rate`` for every ``<stem>.hits``/``<stem>.misses``
    counter pair with at least one event (``plan_cache.global.hits`` ->
    ``plan_cache.global.hit_rate``)."""
    out: Dict[str, float] = {}
    for key, hits in counters.items():
        if not key.endswith(".hits"):
            continue
        stem = key[: -len(".hits")]
        total = hits + counters.get(stem + ".misses", 0)
        if total:
            out[stem + ".hit_rate"] = hits / total
    return out


def _namespace_section(counters: Dict[str, int]) -> Dict[str, dict]:
    """Lookup-cache health grouped per cache: every
    ``namespace.<cache>.<event>`` counter folded into
    ``{cache: {hits, misses, ..., hit_rate}}``."""
    caches: Dict[str, dict] = {}
    for key, value in counters.items():
        if not key.startswith("namespace."):
            continue
        parts = key.split(".")
        if len(parts) != 3:
            continue
        caches.setdefault(parts[1], {})[parts[2]] = value
    for stats in caches.values():
        total = stats.get("hits", 0) + stats.get("misses", 0)
        if total:
            stats["hit_rate"] = stats["hits"] / total
    return caches


def _tenants_section(reg: MetricsRegistry, counters: Dict[str, int]) -> Dict[str, dict]:
    """Per-tenant scheduling health: queue-depth quantiles from the
    ``service.tenant.<t>.queue_depth`` histograms plus the tenant's
    admission counters."""
    tenants: Dict[str, dict] = {}
    for key, hist in reg.histograms("service.tenant").items():
        parts = key.split(".")
        if len(parts) != 4 or parts[3] != "queue_depth":
            continue
        tenant = parts[2]
        summary = hist.as_dict()
        tenants[tenant] = {
            "queue_depth": {
                k: summary[k] for k in ("p50", "p90", "p99", "max", "count")
            },
            "enqueued": counters.get(f"service.tenant.{tenant}.enqueued", 0),
            "rejected": counters.get(f"service.tenant.{tenant}.rejected", 0),
        }
    return tenants


def _durability_section(reg: MetricsRegistry, counters: Dict[str, int]) -> dict:
    """Journal/commit/recovery health from the ``durability.*`` metrics
    the journal manager maintains: record and byte throughput, group
    commits cut, recovery work done, and commit-latency quantiles."""
    section: dict = {
        "journal": {
            "records": counters.get("durability.journal.records", 0),
            "bytes": counters.get("durability.journal.bytes", 0),
            "commits": counters.get("durability.journal.commits", 0),
        },
        "snapshots": counters.get("durability.snapshots", 0),
        "recovery": {
            "files": counters.get("durability.recovery.files", 0),
            "records_replayed": counters.get(
                "durability.recovery.records_replayed", 0
            ),
            "tail_bytes_discarded": counters.get(
                "durability.recovery.tail_bytes_discarded", 0
            ),
        },
    }
    commit = reg.histograms().get("durability.commit_s")
    if commit is not None:
        summary = commit.as_dict()
        section["commit_s"] = {
            k: summary[k] for k in ("p50", "p90", "p99", "max", "count")
        }
    return section


def stats_payload(
    registry: Optional[MetricsRegistry] = None,
    sampler: Optional["TelemetrySampler"] = None,
    started_at: Optional[float] = None,
    slo: Optional["SloTracker"] = None,
) -> dict:
    """The JSON-ready ``/stats`` document for a registry."""
    reg = registry if registry is not None else get_registry()
    counters = reg.snapshot()
    payload: dict = {
        "counters": counters,
        "distributions": reg.gauges(),
        "exemplars": {
            name: hist.exemplars()
            for name, hist in reg.histograms().items()
            if hist.exemplars()
        },
    }
    # The plan cache keeps its own counters (it predates the registry);
    # surface them here so one /stats poll answers "is the cache
    # working" without a second endpoint.
    from ..redistribution.plan_cache import plan_cache_stats

    cache = dict(plan_cache_stats())
    total = cache.get("hits", 0) + cache.get("misses", 0)
    if total:
        cache["hit_rate"] = cache["hits"] / total
    payload["plan_cache"] = cache
    # Namespace lookup caches and tenant scheduling get the same
    # treatment: one /stats poll answers "are path lookups cached" and
    # "is any tenant backing up or being rejected".
    namespace = _namespace_section(counters)
    if namespace:
        payload["namespace"] = namespace
    tenants = _tenants_section(reg, counters)
    if tenants:
        payload["tenants"] = tenants
    # Durability only shows up once journaling has done *something* —
    # a stats poll against a journal-less service stays unchanged.
    if any(k.startswith("durability.") for k in counters):
        payload["durability"] = _durability_section(reg, counters)
    if slo is not None:
        slo.tick()
        payload["slo"] = slo.payload()
        payload["alerts"] = payload["slo"]["alerts"]
    derived = _derived_hit_rates(counters)
    if derived:
        payload["derived"] = derived
    if started_at is not None:
        payload["uptime_s"] = max(0.0, time.time() - started_at)
    if sampler is not None:
        payload["series"] = sampler.series(limit=32)
    return payload


class TelemetrySampler:
    """Periodic registry snapshots in a bounded ring buffer.

    Each sample is ``{"t": monotonic-ish seconds since start,
    "counters": {...}, "distributions": {...}}``.  ``capacity`` bounds
    memory: a 1 s interval and the default capacity retain the last
    ~8.5 minutes of history.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        interval_s: float = 1.0,
        capacity: int = 512,
        slo: Optional[SloTracker] = None,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.registry = registry if registry is not None else get_registry()
        self.slo = slo
        self.interval_s = float(interval_s)
        self._ring: Deque[dict] = deque(maxlen=capacity)
        self._stop = threading.Event()
        self._started_at = time.monotonic()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    def sample(self) -> dict:
        """Take one snapshot now and append it to the ring."""
        if self.slo is not None:
            self.slo.tick()
        s = {
            "t": time.monotonic() - self._started_at,
            "counters": self.registry.snapshot(),
            "distributions": self.registry.gauges(),
        }
        with self._lock:
            self._ring.append(s)
        return s

    def series(self, limit: Optional[int] = None) -> List[dict]:
        """The retained samples, oldest first (optionally the last
        ``limit`` of them)."""
        with self._lock:
            out = list(self._ring)
        if limit is not None:
            out = out[-limit:]
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()

    def start(self) -> "TelemetrySampler":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="telemetry-sampler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, final_sample: bool = True) -> List[dict]:
        """Stop the thread (prompt — the sleep is an ``Event.wait``),
        optionally take one last sample, and return the series."""
        self._stop.set()
        t = self._thread
        if t is not None:
            t.join(timeout=5.0)
            self._thread = None
        if final_sample:
            self.sample()
        return self.series()

    def __enter__(self) -> "TelemetrySampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class _StatsHandler(BaseHTTPRequestHandler):
    server: "_StatsHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        owner = self.server.owner
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            if owner.slo is not None:
                owner.slo.tick()
            body = render_prometheus(owner.registry).encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/stats":
            body = json.dumps(
                stats_payload(
                    owner.registry,
                    owner.sampler,
                    owner.started_at,
                    slo=owner.slo,
                ),
                indent=1,
                sort_keys=True,
            ).encode("utf-8")
            ctype = "application/json"
        else:
            self.send_error(404, "unknown path (try /metrics or /stats)")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # silence per-request stderr noise
        pass


class _StatsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    owner: "StatsServer"


class StatsServer:
    """``/metrics`` + ``/stats`` over HTTP for a metrics registry.

    Binds ``127.0.0.1`` only — this is an operator's local peek-hole,
    not a public API.  ``port=0`` asks the OS for an ephemeral port;
    :attr:`port` and :attr:`url` report what was bound.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
        sampler: Optional[TelemetrySampler] = None,
        slo: Optional[SloTracker] = None,
    ):
        self.registry = registry if registry is not None else get_registry()
        self.sampler = sampler
        self.slo = slo
        self.started_at = time.time()
        self._httpd: Optional[_StatsHTTPServer] = _StatsHTTPServer(
            (host, port), _StatsHandler
        )
        self._httpd.owner = self
        self._address = self._httpd.server_address
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._address[0]

    @property
    def port(self) -> int:
        return self._address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "StatsServer":
        if self._httpd is None:
            raise RuntimeError("StatsServer is closed")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="stats-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving, close the listening socket, join the thread.

        Safe to call whether or not :meth:`start` ever ran (stdlib
        ``shutdown()`` blocks forever unless ``serve_forever`` is
        active, so it is only issued when the serving thread exists)
        and safe to call twice.
        """
        httpd = self._httpd
        if httpd is None:
            return
        self._httpd = None
        t = self._thread
        self._thread = None
        if t is not None:
            httpd.shutdown()
        httpd.server_close()
        if t is not None:
            t.join(timeout=5.0)

    def __enter__(self) -> "StatsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
