"""Observability: hierarchical traces, bounded metrics, and live export.

The evaluation of the paper is a *phase-timing breakdown* (§8, Tables
1–2); this package makes every phase a first-class span so the table
numbers, the CLI trace dumps, and ad-hoc debugging all read from one
instrument:

* :mod:`repro.obs.span` — spans over two clocks (measured wall time and
  modelled simulation time), implicit thread-local nesting, tracers;
* :mod:`repro.obs.context` — process-unique trace ids that link a
  service ticket to the spans its request produced on other threads;
* :mod:`repro.obs.metrics` — the process-wide registry (counters plus
  fixed-footprint log-bucket histograms with quantiles and exemplars);
* :mod:`repro.obs.histogram` — the HDR-style histogram itself;
* :mod:`repro.obs.export` — JSON, Chrome ``chrome://tracing`` and text
  exporters;
* :mod:`repro.obs.prometheus` — Prometheus text exposition (and its
  strict parser, used by the tests);
* :mod:`repro.obs.live` — an HTTP ``/metrics`` + ``/stats`` endpoint
  and a periodic ring-buffer sampler for ``repro.tools serve``;
* :mod:`repro.obs.flightrec` — a crash-surviving mmap ring of binary
  hot-path events (the flight recorder);
* :mod:`repro.obs.forensics` — the post-mortem decoder that turns a
  dead process's ring into a timeline (``repro.tools blackbox``);
* :mod:`repro.obs.slo` — per-tenant latency SLOs with multi-window
  burn-rate alerts fed from the service histograms.
"""

from .context import current_trace_id, new_trace_id, trace_context
from .export import (
    chrome_to_json,
    render_trace,
    trace_to_chrome,
    trace_to_dict,
    trace_to_json,
)
from .histogram import Histogram
from .live import StatsServer, TelemetrySampler, stats_payload
from .metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    inc,
    observe,
    reset_metrics,
    set_stage_histograms,
    snapshot,
    stage_histograms_enabled,
)
from .flightrec import FlightRecorder
from .prometheus import parse_prometheus_text, prometheus_name, render_prometheus
from .slo import SloObjective, SloTracker
from .span import (
    Span,
    Tracer,
    active_tracer,
    current_span,
    open_span,
    tracked_span,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SloObjective",
    "SloTracker",
    "Span",
    "StatsServer",
    "TelemetrySampler",
    "Tracer",
    "active_tracer",
    "chrome_to_json",
    "counter",
    "current_span",
    "current_trace_id",
    "gauge",
    "get_registry",
    "histogram",
    "inc",
    "new_trace_id",
    "observe",
    "open_span",
    "parse_prometheus_text",
    "prometheus_name",
    "render_prometheus",
    "render_trace",
    "reset_metrics",
    "set_stage_histograms",
    "snapshot",
    "stage_histograms_enabled",
    "stats_payload",
    "trace_context",
    "trace_to_chrome",
    "trace_to_dict",
    "trace_to_json",
    "tracked_span",
]
