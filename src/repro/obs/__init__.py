"""Observability: hierarchical traces and process-wide metrics.

The evaluation of the paper is a *phase-timing breakdown* (§8, Tables
1–2); this package makes every phase a first-class span so the table
numbers, the CLI trace dumps, and ad-hoc debugging all read from one
instrument:

* :mod:`repro.obs.span` — spans over two clocks (measured wall time and
  modelled simulation time), implicit thread-local nesting, tracers;
* :mod:`repro.obs.metrics` — the process-wide counter registry (plan
  cache hits, pruning effectiveness, engine traffic);
* :mod:`repro.obs.export` — JSON, Chrome ``chrome://tracing`` and text
  exporters.
"""

from .export import (
    chrome_to_json,
    render_trace,
    trace_to_chrome,
    trace_to_dict,
    trace_to_json,
)
from .metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    inc,
    observe,
    reset_metrics,
    snapshot,
)
from .span import (
    Span,
    Tracer,
    active_tracer,
    current_span,
    open_span,
    tracked_span,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "active_tracer",
    "chrome_to_json",
    "counter",
    "current_span",
    "gauge",
    "get_registry",
    "inc",
    "observe",
    "open_span",
    "render_trace",
    "reset_metrics",
    "snapshot",
    "trace_to_chrome",
    "trace_to_dict",
    "trace_to_json",
    "tracked_span",
]
