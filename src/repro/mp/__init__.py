"""Multiprocess execution: shared-memory transport and worker pool.

The paper's redistribution pipeline is embarrassingly parallel across
I/O nodes, but CPython threads share one GIL, so the thread-based
service tops out well under core count on data-heavy paths.  ViPIOS
runs its I/O servers as independent *processes* below the API for
exactly this reason; this package does the same for the Clusterfile
engine:

* :mod:`repro.mp.shm` — framed SPSC ring buffers on
  ``multiprocessing.shared_memory`` (control plane), with a cleanup
  registry that guarantees segments are unlinked on exit;
* :mod:`repro.mp.transport` — :class:`SharedMemoryTransport`, a packed
  all-to-all exchange (counts matrix -> displacements -> one contiguous
  send region per rank, one bulk copy per peer) — the data plane;
* :mod:`repro.mp.pool` — :class:`ProcessPoolExecutorBackend`, a
  persistent pool of worker processes, each owning a contiguous range
  of subfiles, that executes the engine's server-side work on real
  cores.

Exports resolve lazily: ``repro.mp.pool`` pulls in the clusterfile
server models, which themselves use :mod:`repro.mp.shm` for storage —
eager imports here would cycle.
"""

from typing import TYPE_CHECKING

__all__ = [
    "ShmRing",
    "TransportError",
    "SharedMemoryTransport",
    "ProcessPoolExecutorBackend",
    "WorkerCrashed",
    "shm_segments_alive",
]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pool import ProcessPoolExecutorBackend, WorkerCrashed
    from .shm import ShmRing, TransportError, shm_segments_alive
    from .transport import SharedMemoryTransport

_HOMES = {
    "ShmRing": "shm",
    "TransportError": "shm",
    "shm_segments_alive": "shm",
    "SharedMemoryTransport": "transport",
    "ProcessPoolExecutorBackend": "pool",
    "WorkerCrashed": "pool",
}


def __getattr__(name: str):
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{home}", __name__), name)
