"""A persistent pool of I/O-node worker processes.

:class:`ProcessPoolExecutorBackend` turns the engine's server-side work
— the projection scatters/gathers, buffer-cache accounting and disk-head
cost modelling of :class:`~repro.clusterfile.server.IOServer` — into
real multi-core execution.  Each worker process owns a **contiguous
range of subfiles** (``worker_for``), attaches their shared-memory
stores by name, and keeps its own :class:`~repro.simulation.cluster.
Cluster` replica for the device cost models, so per-subfile device
state (buffer-cache residency, disk-head position) evolves
deterministically inside the owning worker.

Plumbing per worker: one command ring (parent -> worker) and one result
ring (worker -> parent), both :class:`~repro.mp.shm.ShmRing`, carrying
small pickles only.  Bulk payloads move through the pool-wide
:class:`~repro.mp.transport.SharedMemoryTransport` — parent is rank 0,
worker ``w`` is rank ``w + 1`` — as packed all-to-all rounds: the
parent packs every message payload for a worker contiguously (counts ->
displacements), the worker does one bulk copy per round, and read
replies travel the same way in reverse.  No per-segment message objects
cross a process boundary.

Observability crosses the boundary too: every batch runs under a
worker-local span tree (``mp.worker`` root, ``server.write`` /
``server.read`` children carrying the usual ``cache_s`` / ``disk_s``
attributes) serialized back with the results, and the worker's counter
*deltas* are folded into the parent registry — ``tools trace`` and the
``/stats`` endpoint see one coherent picture.

Crash semantics: the parent owns every shared-memory segment (workers
only attach), so cleanup never depends on a worker exiting gracefully.
A worker death mid-exchange surfaces as :class:`WorkerCrashed` via the
transport's liveness checks; :meth:`close` (idempotent, also run at
interpreter exit) terminates survivors and unlinks all segments.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .shm import ShmRing, TransportError
from .transport import DEFAULT_REGION_BYTES, SharedMemoryTransport

__all__ = ["ProcessPoolExecutorBackend", "WorkerCrashed"]

DEFAULT_RING_BYTES = 4 << 20


class WorkerCrashed(TransportError):
    """A pool worker died while the parent was waiting on it."""


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------


def _attach_store(cache: Dict[str, object], name: str, subfile: int,
                  capacity: int):
    store = cache.get(name)
    if store is None:
        from ..clusterfile.storage import SharedMemoryStore

        store = cache[name] = SharedMemoryStore.attach(name, subfile, capacity)
        if len(cache) > 1024:  # relayout churns store names; bound the map
            oldest = next(iter(cache))
            cache.pop(oldest).close()  # type: ignore[union-attr]
    return store


def _server_write(cluster, config, store, job, payload, to_disk: bool):
    """One server-side write, byte- and cost-identical to
    :meth:`repro.clusterfile.server.IOServer.write` given the
    projection segments the parent precomputed."""
    from ..redistribution.gather_scatter import scatter_segments
    from ..simulation.disk import write_time_for_segments

    starts: np.ndarray = job["starts"]
    lengths: np.ndarray = job["lengths"]
    l_s, r_s = job["l_s"], job["r_s"]
    nbytes = int(payload.size)
    if nbytes == 0:
        return (0.0, 0.0, 0, 0)
    node = cluster.io_node_for(job["subfile"])
    window = store.view(l_s, r_s)
    contiguous = starts.size == 1 and lengths[0] == r_s - l_s + 1
    if contiguous:
        window[:] = payload
        runs = 1
        if config.contiguous_write_optimized:
            cache_s = 0.0
        else:
            cache_s = config.memory.copy_time(nbytes, runs=1)
    else:
        scatter_segments(window, (starts - l_s, lengths), payload)
        runs = int(starts.size)
        cache_s = config.memory.copy_time(nbytes, runs=runs)
    node.cache.write_runs(
        f"subfile{job['subfile']}",
        list(zip(starts.tolist(), lengths.tolist())),
    )
    disk_s = 0.0
    if to_disk:
        disk_s = write_time_for_segments(
            node.disk, zip(starts.tolist(), lengths.tolist())
        )
    return (cache_s, disk_s, nbytes, runs)


def _server_read(cluster, config, store, job, from_disk: bool):
    """One server-side read, mirroring
    :meth:`repro.clusterfile.server.IOServer.read`."""
    from ..redistribution.gather_scatter import gather_segments
    from ..simulation.disk import write_time_for_segments

    starts: np.ndarray = job["starts"]
    lengths: np.ndarray = job["lengths"]
    l_s, r_s = job["l_s"], job["r_s"]
    nbytes = int(job["nbytes"])
    if nbytes == 0:
        return np.empty(0, dtype=np.uint8), (0.0, 0.0, 0, 0)
    node = cluster.io_node_for(job["subfile"])
    window = store.read(l_s, r_s)
    payload = gather_segments(window, (starts - l_s, lengths))
    runs = int(starts.size)
    contiguous = runs == 1 and lengths[0] == r_s - l_s + 1
    if contiguous and config.contiguous_write_optimized:
        cache_s = 0.0
    else:
        cache_s = config.memory.copy_time(nbytes, runs=runs)
    disk_s = 0.0
    if from_disk:
        disk_s = write_time_for_segments(
            node.disk, zip(starts.tolist(), lengths.tolist())
        )
    return payload, (cache_s, disk_s, nbytes, runs)


def _worker_main(worker_id: int, cfg_bytes: bytes, transport_handle,
                 cmd_name: str, res_name: str,
                 flight_path: Optional[str] = None) -> None:
    """The worker process entry point: a command loop until shutdown."""
    from contextlib import nullcontext

    from ..obs import flightrec
    from ..obs import metrics as obs_metrics
    from ..obs.export import span_to_dict
    from ..obs.span import Tracer, open_span
    from ..redistribution.gather_scatter import scatter_segments
    from ..simulation.cluster import Cluster
    from . import shm as shm_mod

    # A forked child inherits the parent's segment-ownership registry;
    # drop it so this process never unlinks segments it does not own.
    shm_mod._OWNED.clear()
    shm_mod._ATTACHED.clear()

    # Same for the flight recorder: the inherited mapping belongs to the
    # parent (two writers with independent sequence counters would
    # corrupt one ring).  Each worker gets its *own* per-process ring —
    # a worker SIGKILL leaves its own decodable last words.
    if flight_path is not None:
        flightrec.arm(flight_path, capacity=1024)
    else:
        flightrec.disarm()

    rank = worker_id + 1
    parent = multiprocessing.parent_process()

    def parent_alive() -> bool:
        return parent is None or parent.is_alive()

    cmd_ring = ShmRing.attach(cmd_name)
    res_ring = ShmRing.attach(res_name)
    transport = SharedMemoryTransport.from_handle(transport_handle)
    cluster = Cluster(pickle.loads(cfg_bytes))
    config = cluster.config
    stores: Dict[str, object] = {}

    def payload_slices(jobs, block: np.ndarray) -> List[np.ndarray]:
        """Split the packed per-worker block back into per-job payloads
        (one bulk copy already happened inside the transport)."""
        out, off = [], 0
        for job in jobs:
            n = int(job["nbytes"])
            out.append(block[off : off + n])
            off += n
        return out

    while True:
        try:
            cmd = pickle.loads(
                cmd_ring.recv(timeout=None, liveness=parent_alive)
            )
        except TransportError:
            break  # parent died or tore the ring down: exit quietly
        op = cmd["op"]
        if op == "shutdown":
            break
        if op == "ping":
            res_ring.send(pickle.dumps({"ok": True, "pid": os.getpid()}))
            continue

        jobs = cmd.get("jobs", ())
        # Span trees are only built (and shipped home) when the parent
        # actually has a trace open; otherwise the batch runs span-free
        # and the result frame stays small.
        tracer = Tracer()
        ctx = tracer.activate() if cmd.get("trace") else nullcontext()
        before = obs_metrics.snapshot()
        result: dict = {"ok": True}
        try:
            with ctx:
                with open_span(
                    "mp.worker", worker=worker_id, pid=os.getpid(), op=op,
                    jobs=len(jobs),
                ):
                    if op == "write":
                        inbox = transport.alltoallv(rank, [],
                                                    liveness=parent_alive)
                        payloads = payload_slices(jobs, inbox[0])
                        costs = []
                        for job, payload in zip(jobs, payloads):
                            store = _attach_store(
                                stores, job["store"], job["subfile"],
                                job["capacity"],
                            )
                            with open_span(
                                "server.write", subfile=job["subfile"],
                                io_node=job["io_node"],
                            ) as sp:
                                cost = _server_write(
                                    cluster, config, store, job, payload,
                                    cmd["to_disk"],
                                )
                            sp.annotate(
                                bytes=cost[2], runs=cost[3],
                                cache_s=cost[0], disk_s=cost[1],
                            )
                            costs.append(cost)
                        result["costs"] = costs
                    elif op == "read":
                        # The exchange round comes *after* the per-job
                        # work, so a failing job must not abort the
                        # batch early: capture the error, keep the frame
                        # alignment with a zero-length payload, and join
                        # the round — peers are spinning in the barrier.
                        outbox = []
                        costs = []
                        job_error = None
                        for job in jobs:
                            try:
                                store = _attach_store(
                                    stores, job["store"], job["subfile"],
                                    job["capacity"],
                                )
                                with open_span(
                                    "server.read", subfile=job["subfile"],
                                    io_node=job["io_node"],
                                ) as sp:
                                    payload, cost = _server_read(
                                        cluster, config, store, job,
                                        cmd["from_disk"],
                                    )
                                sp.annotate(
                                    bytes=cost[2], runs=cost[3],
                                    cache_s=cost[0], disk_s=cost[1],
                                )
                            except Exception:
                                job_error = traceback.format_exc()
                                payload = np.empty(0, dtype=np.uint8)
                                cost = (0.0, 0.0, 0, 0)
                            outbox.append((0, payload))
                            costs.append(cost)
                        transport.alltoallv(rank, outbox,
                                            liveness=parent_alive)
                        if job_error is not None:
                            raise TransportError(job_error)
                        result["costs"] = costs
                    elif op == "shuffle":
                        # Round 1: receive this worker's packed transfer
                        # payloads; scatter them into fresh destination
                        # element buffers; round 2: ship the buffers back.
                        # Same round-safety rule as "read": job failures
                        # are deferred until round 2 has completed.
                        inbox = transport.alltoallv(rank, [],
                                                    liveness=parent_alive)
                        block, off = inbox[0], 0
                        buffers = []
                        job_error = None
                        for job in jobs:
                            dst = np.zeros(job["dst_len"], dtype=np.uint8)
                            try:
                                for t in job["transfers"]:
                                    n = int(t["nbytes"])
                                    scatter_segments(
                                        dst,
                                        (t["starts"], t["lengths"]),
                                        block[off : off + n],
                                    )
                                    off += n
                            except Exception:
                                job_error = traceback.format_exc()
                            buffers.append(dst)
                        transport.alltoallv(
                            rank, [(0, b) for b in buffers],
                            liveness=parent_alive,
                        )
                        if job_error is not None:
                            raise TransportError(job_error)
                        result["buffers"] = len(buffers)
                    else:  # pragma: no cover - protocol guard
                        raise TransportError(f"unknown command {op!r}")
            obs_metrics.inc("mp.worker.batches")
            obs_metrics.inc("mp.worker.jobs", len(jobs))
        except Exception:
            result = {"ok": False, "error": traceback.format_exc()}
        after = obs_metrics.snapshot()
        result["counters"] = {
            k: after[k] - before.get(k, 0)
            for k in after
            if after[k] != before.get(k, 0)
        }
        if tracer.roots:
            result["span"] = span_to_dict(tracer.roots[0])
        try:
            res_ring.send(pickle.dumps(result), liveness=parent_alive)
        except TransportError:
            break
    cmd_ring.close()
    res_ring.close()
    transport.close()
    for store in stores.values():
        store.close()  # type: ignore[union-attr]


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------


class ProcessPoolExecutorBackend:
    """A persistent process pool executing the engine's I/O-node work.

    Construct once (workers fork at construction; keep it early in the
    program's life), attach to a :class:`~repro.clusterfile.fs.
    Clusterfile` built on :class:`~repro.clusterfile.storage.
    SharedMemoryStorage`, and the engine's fault-free write/read paths
    fan their server-side loops out across the workers.  ``lock``
    serialises operations through the pool — the parallelism is *within*
    an operation, across subfiles.
    """

    def __init__(
        self,
        processes: int = 4,
        config=None,
        region_bytes: int = DEFAULT_REGION_BYTES,
        ring_bytes: int = DEFAULT_RING_BYTES,
        start_method: Optional[str] = None,
        flightrec_base: Optional[str] = None,
    ):
        if processes < 1:
            raise ValueError(f"need >= 1 worker process, got {processes}")
        if config is None:
            from ..simulation.cluster import ClusterConfig

            config = ClusterConfig()
        self.processes = processes
        self.config = config
        self.lock = threading.Lock()
        self.closed = False
        self._broken: Optional[str] = None
        self.transport = SharedMemoryTransport(processes + 1, region_bytes)
        self._cmd_rings: List[ShmRing] = []
        self._res_rings: List[ShmRing] = []
        self._procs: List[multiprocessing.process.BaseProcess] = []
        if start_method is None:
            start_method = os.environ.get("REPRO_MP_START", "fork")
        if start_method not in multiprocessing.get_all_start_methods():
            start_method = "spawn"
        ctx = multiprocessing.get_context(start_method)
        cfg_bytes = pickle.dumps(config)
        handle = self.transport.handle()
        # Workers record into sibling rings of the parent's: a pool
        # built in a process with an armed flight recorder at
        # ``ring.bin`` gives worker ``w`` its own ``ring.bin.w<w>``.
        if flightrec_base is None:
            from ..obs import flightrec as _flightrec

            armed = _flightrec.active()
            flightrec_base = armed.path if armed is not None else None
        try:
            for w in range(processes):
                cmd = ShmRing.create(ring_bytes, f"c{w}")
                res = ShmRing.create(ring_bytes, f"r{w}")
                self._cmd_rings.append(cmd)
                self._res_rings.append(res)
                wring = (
                    f"{flightrec_base}.w{w}"
                    if flightrec_base is not None
                    else None
                )
                proc = ctx.Process(
                    target=_worker_main,
                    args=(w, cfg_bytes, handle, cmd.name, res.name, wring),
                    daemon=True,
                    name=f"repro-io-worker-{w}",
                )
                proc.start()
                self._procs.append(proc)
            for w in range(processes):  # handshake: workers are up
                self._send(w, {"op": "ping"})
                self._recv(w, timeout=30.0)
        except BaseException:
            self.close()
            raise

    # -- topology ------------------------------------------------------------

    def worker_for(self, subfile: int, num_subfiles: int) -> int:
        """The worker owning a subfile: contiguous balanced blocks."""
        if num_subfiles <= 0:
            return 0
        return min(
            subfile * self.processes // num_subfiles, self.processes - 1
        )

    def _alive(self) -> bool:
        return all(p.is_alive() for p in self._procs)

    # -- control plane -------------------------------------------------------

    def _check_usable(self) -> None:
        if self._broken:  # before the closed check: breaking closes too
            raise WorkerCrashed(self._broken)
        if self.closed:
            raise TransportError("process pool is closed")

    def _send(self, w: int, cmd: dict) -> None:
        self._cmd_rings[w].send(pickle.dumps(cmd), liveness=self._alive)

    def _recv(self, w: int, timeout: float = 60.0) -> dict:
        try:
            raw = self._res_rings[w].recv(timeout=timeout,
                                          liveness=self._alive)
        except TransportError:
            self._mark_broken(w)
            raise
        return pickle.loads(raw)

    def _mark_broken(self, w: int) -> None:
        dead = [i for i, p in enumerate(self._procs) if not p.is_alive()]
        from ..obs import flightrec

        rec = flightrec.active()
        if rec is not None:
            for i in dead or [w]:
                rec.record(
                    flightrec.EV_WORKER_CRASH,
                    a=i if i >= 0 else 0xFFFFFFFF,
                )
        self._broken = (
            f"worker(s) {dead or [w]} died; pool shut down and all "
            f"shared-memory segments unlinked"
        )
        self.close()

    @staticmethod
    def _tracing(root) -> bool:
        """Whether worker span trees are worth building and shipping:
        only when the parent op span is actually being collected."""
        from ..obs.span import span_retained

        return root is not None and span_retained()

    def _collect(self, root=None) -> List[dict]:
        """Gather one result per worker; fold spans and counter deltas
        into the parent's trace/registry; surface worker errors."""
        from ..obs import metrics as obs_metrics
        from ..obs.export import span_from_dict

        results = [self._recv(w) for w in range(self.processes)]
        errors = [r["error"] for r in results if not r.get("ok")]
        for r in results:
            for name, delta in r.get("counters", {}).items():
                if delta > 0:
                    obs_metrics.inc(name, delta)
            if root is not None and "span" in r:
                root.children.append(span_from_dict(r["span"]))
        if errors:
            raise TransportError(
                "worker batch failed:\n" + "\n".join(errors)
            )
        return results

    # -- exchanges (caller holds ``self.lock``) -------------------------------

    def exchange_write(
        self,
        jobs: Sequence[Sequence[dict]],
        outbox: Sequence[Tuple[int, np.ndarray]],
        to_disk: bool,
        root=None,
    ) -> List[dict]:
        """Dispatch per-worker write batches; payloads go out in one
        packed all-to-all round; per-job costs come back on the rings."""
        self._check_usable()
        try:
            trace = self._tracing(root)
            for w in range(self.processes):
                self._send(w, {"op": "write", "jobs": list(jobs[w]),
                               "to_disk": to_disk, "trace": trace})
            self.transport.alltoallv(0, outbox, liveness=self._alive)
            return self._collect(root)
        except WorkerCrashed:
            raise
        except TransportError:
            if not self._alive():
                self._mark_broken(-1)
                self._check_usable()
            raise

    def exchange_read(
        self,
        jobs: Sequence[Sequence[dict]],
        from_disk: bool,
        root=None,
    ) -> Tuple[List[dict], List[np.ndarray]]:
        """Dispatch read batches; reply payloads arrive packed, one
        contiguous block per worker (``inbox[w + 1]``)."""
        self._check_usable()
        try:
            trace = self._tracing(root)
            for w in range(self.processes):
                self._send(w, {"op": "read", "jobs": list(jobs[w]),
                               "from_disk": from_disk, "trace": trace})
            inbox = self.transport.alltoallv(0, [], liveness=self._alive)
            return self._collect(root), inbox
        except WorkerCrashed:
            raise
        except TransportError:
            if not self._alive():
                self._mark_broken(-1)
                self._check_usable()
            raise

    def exchange_shuffle(
        self,
        jobs: Sequence[Sequence[dict]],
        outbox: Sequence[Tuple[int, np.ndarray]],
        root=None,
    ) -> Tuple[List[dict], List[np.ndarray]]:
        """Two packed rounds: transfer payloads out, destination-element
        buffers back (``inbox[w + 1]`` concatenates worker ``w``'s)."""
        self._check_usable()
        try:
            trace = self._tracing(root)
            for w in range(self.processes):
                self._send(w, {"op": "shuffle", "jobs": list(jobs[w]),
                               "trace": trace})
            self.transport.alltoallv(0, outbox, liveness=self._alive)
            inbox = self.transport.alltoallv(0, [], liveness=self._alive)
            return self._collect(root), inbox
        except WorkerCrashed:
            raise
        except TransportError:
            if not self._alive():
                self._mark_broken(-1)
                self._check_usable()
            raise

    # -- lifecycle -----------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Stop the workers and unlink every pool segment.  Idempotent;
        also reached from the shm module's exit hook via segment
        ownership, so a crash cannot leak shared memory."""
        if self.closed:
            return
        self.closed = True
        for w, proc in enumerate(self._procs):
            if proc.is_alive():
                try:
                    self._cmd_rings[w].send(
                        pickle.dumps({"op": "shutdown"}), timeout=0.5
                    )
                except TransportError:
                    pass
        for proc in self._procs:
            proc.join(timeout=timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for ring in self._cmd_rings + self._res_rings:
            ring.close()
        self.transport.close()

    def __enter__(self) -> "ProcessPoolExecutorBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close(timeout=0.5)
        except Exception:
            pass
