"""Packed all-to-all exchange over shared memory.

The data plane of the multiprocess engine, using the counts-then-
displacements alltoallv idiom (SNIPPETS.md Snippet 2, the diy/FTK
``redistribute``): each sender

1. computes its per-peer **sendcounts** row,
2. publishes the row into a shared *counts matrix* (the allgather),
3. derives displacements by prefix sum and packs **all** per-pair
   segments into one contiguous per-rank **send region**,

so every receiver does exactly one bulk copy per sender — no
per-segment message objects anywhere on the hot path.  Zero-byte
pairs cost nothing, a rank sending only to itself is one local copy,
and a single-rank exchange degenerates to a memcpy.

Synchronisation is a shared-memory barrier of monotonically increasing
per-rank epoch counters: two barriers per round (everything packed /
everything drained), polled with spin-then-sleep.  A rank that never
arrives — a crashed worker — turns into a clean
:class:`~repro.mp.shm.TransportError` via the timeout or a liveness
callback, never a hang.

The transport is process-agnostic: ranks may be worker processes (the
pool) or plain threads of one process (the tests), because all state
lives in shared memory.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .shm import (
    SPIN_COUNT,
    TransportError,
    attach_segment,
    create_segment,
    release_segment,
)

__all__ = ["SharedMemoryTransport"]

DEFAULT_REGION_BYTES = 32 << 20


class SharedMemoryTransport:
    """N-rank packed alltoallv through shared-memory regions.

    One process creates the transport; peers attach via the picklable
    :meth:`handle`.  Every rank calls :meth:`alltoallv` exactly once
    per round with its outbox — ``[(dst_rank, uint8 payload), ...]`` —
    and receives ``inbox[src]``: one contiguous ``uint8`` array per
    sender (empty when nothing was sent).
    """

    def __init__(
        self,
        nprocs: int,
        region_bytes: int = DEFAULT_REGION_BYTES,
        _attach: Optional[Tuple[str, str, str]] = None,
    ):
        if nprocs < 1:
            raise ValueError(f"need >= 1 rank, got {nprocs}")
        self.nprocs = nprocs
        self.region_bytes = int(region_bytes)
        if _attach is None:
            self.owner = True
            self._counts_shm = create_segment(nprocs * nprocs * 8, "counts")
            self._epoch_shm = create_segment(nprocs * 8, "epoch")
            self._data_shm = create_segment(
                max(nprocs * self.region_bytes, 8), "xchg"
            )
            init = True
        else:
            self.owner = False
            counts_name, epoch_name, data_name = _attach
            self._counts_shm = attach_segment(counts_name)
            self._epoch_shm = attach_segment(epoch_name)
            self._data_shm = attach_segment(data_name)
            init = False
        self._counts = np.ndarray(
            (nprocs, nprocs), dtype=np.int64, buffer=self._counts_shm.buf
        )
        self._epochs = np.ndarray(
            (nprocs,), dtype=np.int64, buffer=self._epoch_shm.buf
        )
        self._data = np.ndarray(
            (self._data_shm.size,), dtype=np.uint8, buffer=self._data_shm.buf
        )
        if init:
            self._counts[:] = 0
            self._epochs[:] = 0
        #: Per-attached-instance barrier epoch (each rank uses its own
        #: instance, so this is rank-local state).
        self._my_epoch = 0

    # -- lifecycle -----------------------------------------------------------

    def handle(self) -> Tuple[int, int, Tuple[str, str, str]]:
        """A picklable attachment handle for peer ranks."""
        return (
            self.nprocs,
            self.region_bytes,
            (
                self._counts_shm.name,
                self._epoch_shm.name,
                self._data_shm.name,
            ),
        )

    @classmethod
    def from_handle(cls, handle) -> "SharedMemoryTransport":
        nprocs, region_bytes, names = handle
        return cls(nprocs, region_bytes, _attach=tuple(names))

    def close(self) -> None:
        self._counts = None  # type: ignore[assignment]
        self._epochs = None  # type: ignore[assignment]
        self._data = None  # type: ignore[assignment]
        for shm in (self._counts_shm, self._epoch_shm, self._data_shm):
            release_segment(shm)

    # -- synchronisation -----------------------------------------------------

    def _barrier(
        self,
        rank: int,
        timeout: Optional[float],
        liveness: Optional[Callable[[], bool]],
    ) -> None:
        self._my_epoch += 1
        self._epochs[rank] = self._my_epoch
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        while bool((self._epochs < self._my_epoch).any()):
            spins += 1
            if spins > SPIN_COUNT:
                time.sleep(50e-6)
            if liveness is not None and spins % 1000 == 0 and not liveness():
                raise TransportError(
                    f"rank {rank}: peer died inside exchange barrier"
                )
            if deadline is not None and time.monotonic() > deadline:
                laggards = np.flatnonzero(
                    self._epochs < self._my_epoch
                ).tolist()
                raise TransportError(
                    f"rank {rank}: exchange barrier timed out after "
                    f"{timeout}s waiting for ranks {laggards}"
                )

    # -- the packed exchange -------------------------------------------------

    def _region(self, rank: int) -> np.ndarray:
        base = rank * self.region_bytes
        return self._data[base : base + self.region_bytes]

    def alltoallv(
        self,
        rank: int,
        outbox: Sequence[Tuple[int, np.ndarray]],
        timeout: Optional[float] = 60.0,
        liveness: Optional[Callable[[], bool]] = None,
    ) -> List[np.ndarray]:
        """One exchange round.  Must be called by all ``nprocs`` ranks.

        Returns ``inbox`` with one owned contiguous array per sender;
        ``inbox[src]`` concatenates every segment ``src`` addressed to
        this rank, in the order the sender enqueued them.
        """
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range 0..{self.nprocs - 1}")
        # 1. sendcounts row.
        counts_row = np.zeros(self.nprocs, dtype=np.int64)
        per_dst: List[List[np.ndarray]] = [[] for _ in range(self.nprocs)]
        for dst, payload in outbox:
            if not 0 <= dst < self.nprocs:
                raise ValueError(f"destination rank {dst} out of range")
            seg = np.ascontiguousarray(payload, dtype=np.uint8).reshape(-1)
            counts_row[dst] += seg.size
            per_dst[dst].append(seg)
        total = int(counts_row.sum())
        if total > self.region_bytes:
            raise TransportError(
                f"rank {rank}: outbox of {total} bytes exceeds the "
                f"{self.region_bytes}-byte send region"
            )
        # 2. + 3. publish the counts row (the allgather is the shared
        # matrix itself) and pack all segments at their displacements.
        self._counts[rank, :] = counts_row
        region = self._region(rank)
        displs = np.zeros(self.nprocs + 1, dtype=np.int64)
        np.cumsum(counts_row, out=displs[1:])
        for dst in range(self.nprocs):
            off = int(displs[dst])
            for seg in per_dst[dst]:
                region[off : off + seg.size] = seg
                off += seg.size
        self._barrier(rank, timeout, liveness)  # everything packed
        # 4. one bulk copy per sender.
        counts = self._counts.copy()
        inbox: List[np.ndarray] = []
        for src in range(self.nprocs):
            nbytes = int(counts[src, rank])
            sdispl = int(counts[src, :rank].sum())
            base = src * self.region_bytes
            inbox.append(
                self._data[base + sdispl : base + sdispl + nbytes].copy()
            )
        self._barrier(rank, timeout, liveness)  # everything drained
        return inbox
