"""Framed ring buffers on POSIX shared memory.

The control plane of the multiprocess engine: one single-producer /
single-consumer ring per direction per worker, carrying small pickled
command and result frames.  Bulk payloads never travel through rings —
they go through the packed exchange regions of
:class:`~repro.mp.transport.SharedMemoryTransport` — so rings stay
small and a frame never competes with data for space.

Wire format (all offsets 8-byte aligned)::

    [ head u64 | tail u64 | reserved 48B ]      control block (64 B)
    [ MAGIC u32 | length u32 | crc32 u32 | reserved u32 | payload ... ]

``head``/``tail`` are monotonically increasing byte counters (never
wrapped), so ``tail - head`` is the number of bytes in flight and
``tail % capacity`` is the producer's write position.  A frame never
straddles the end of the ring: when the remaining space cannot hold a
frame header the producer writes a WRAP marker and continues at offset
zero.  Every frame carries a CRC32 of its payload; a consumer that
reads a bad magic or a failing checksum raises :class:`TransportError`
immediately instead of hanging — a truncated or garbage frame is a
protocol bug or a dying peer, and either way the caller must find out.

Cleanup: every segment created through :func:`create_segment` is
recorded in a process-local registry and unlinked by an ``atexit``
hook, so segments cannot outlive the parent even on an unhandled
exception.  Attachers (worker processes) only ever *close* their
mapping; the creator owns the name.
"""

from __future__ import annotations

import atexit
import os
import struct
import threading
import time
import zlib
from multiprocessing import shared_memory
from typing import Callable, Dict, Optional

import numpy as np

__all__ = [
    "TransportError",
    "ShmRing",
    "create_segment",
    "attach_segment",
    "release_segment",
    "shm_segments_alive",
]


class TransportError(RuntimeError):
    """A shared-memory transport protocol violation (bad frame, peer
    death, region overflow) — never silently swallowed, never a hang."""


#: Busy-poll iterations before falling back to 50 µs sleeps.  Spinning
#: only helps when waiters and workers can run simultaneously; on a
#: single-core host it steals the quantum the peer needs to make
#: progress, so it is disabled there.
SPIN_COUNT = 200 if (os.cpu_count() or 1) > 2 else 0

_MAGIC = 0x5249_4E47  # "RING"
_WRAP = 0x57_52_41_50  # "WRAP"
_CTRL = 64  # control block size
_HDR = 16  # frame header size
_HDR_FMT = "<III4x"  # magic, length, crc32, reserved

#: Segments created (and therefore owned) by this process.
_OWNED: Dict[str, shared_memory.SharedMemory] = {}
#: Segments merely attached (owned by another process).
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}
_SEQ = 0


_ATTACH_LOCK = threading.Lock()


class _suppress_tracker_register:
    """Keep the resource tracker out of attach-only mappings.

    CPython < 3.13 registers *every* ``SharedMemory(name=...)`` with the
    resource tracker, which (a) makes a spawn-context attacher's tracker
    unlink a segment the parent still owns when the attacher exits, and
    (b) under fork — where parent and children share one tracker — makes
    an ``unregister``-after-attach workaround delete the parent's own
    registration, so the parent's later unlink raises in the tracker.
    Suppressing the registration during attach avoids both: ownership
    stays exactly where :func:`create_segment` put it.
    """

    def __enter__(self):
        from multiprocessing import resource_tracker

        _ATTACH_LOCK.acquire()
        self._mod = resource_tracker
        self._orig = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        return self

    def __exit__(self, *exc):
        self._mod.register = self._orig
        _ATTACH_LOCK.release()


def create_segment(size: int, hint: str = "seg") -> shared_memory.SharedMemory:
    """A fresh uniquely named shared-memory segment, registered for
    unlink-at-exit."""
    global _SEQ
    _SEQ += 1
    name = f"repro-{os.getpid()}-{_SEQ}-{hint}"[:30]
    shm = shared_memory.SharedMemory(name=name, create=True, size=size)
    _OWNED[shm.name] = shm
    return shm


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking ownership."""
    with _suppress_tracker_register():
        shm = shared_memory.SharedMemory(name=name)
    _ATTACHED[shm.name] = shm
    return shm


def release_segment(shm: shared_memory.SharedMemory) -> None:
    """Close (and, if owned here, unlink) one segment.  Idempotent.

    Registrations are matched by *instance*, not by name: a same-process
    attacher closing its mapping must not disturb (let alone unlink) the
    creator's registration for the same name.
    """
    owned = _OWNED.get(shm.name) is shm
    if owned:
        del _OWNED[shm.name]
    if _ATTACHED.get(shm.name) is shm:
        del _ATTACHED[shm.name]
    try:
        shm.close()
    except Exception:
        pass
    if owned:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def shm_segments_alive() -> list[str]:
    """Names of segments this process still owns (diagnostics/tests)."""
    return sorted(_OWNED)


@atexit.register
def _cleanup_at_exit() -> None:  # pragma: no cover - exit hook
    for shm in list(_ATTACHED.values()):
        try:
            shm.close()
        except Exception:
            pass
    _ATTACHED.clear()
    for shm in list(_OWNED.values()):
        try:
            shm.close()
        except Exception:
            pass
        try:
            shm.unlink()
        except Exception:
            pass
    _OWNED.clear()


def _pad8(n: int) -> int:
    return (n + 7) & ~7


class ShmRing:
    """A framed SPSC byte ring in one shared-memory segment.

    One process calls :meth:`create` (and later owns the unlink), the
    peer calls :meth:`attach` with the segment name.  ``send``/``recv``
    poll with a short spin then a 50 µs sleep; both take a timeout and
    an optional ``liveness`` callback so a caller can turn "my peer
    died" into a clean :class:`TransportError` instead of waiting out
    the clock.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        self._shm = shm
        self.owner = owner
        self.capacity = shm.size - _CTRL
        if self.capacity < 1024 or self.capacity % 8:
            raise ValueError(f"ring capacity {self.capacity} unusable")
        self._ctrl = np.ndarray((2,), dtype=np.uint64, buffer=shm.buf, offset=0)
        self._data = shm.buf[_CTRL:]

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(cls, capacity: int = 1 << 20, hint: str = "ring") -> "ShmRing":
        shm = create_segment(_CTRL + _pad8(capacity), hint)
        ring = cls(shm, owner=True)
        ring._ctrl[:] = 0
        return ring

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        return cls(attach_segment(name), owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        self._ctrl = None  # type: ignore[assignment]
        self._data = None  # type: ignore[assignment]
        release_segment(self._shm)

    # -- polling -------------------------------------------------------------

    def _wait(
        self,
        ready: Callable[[], bool],
        timeout: Optional[float],
        liveness: Optional[Callable[[], bool]],
        what: str,
    ) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        while not ready():
            spins += 1
            if spins > SPIN_COUNT:
                time.sleep(50e-6)
            if liveness is not None and spins % 1000 == 0 and not liveness():
                raise TransportError(f"peer died while waiting to {what}")
            if deadline is not None and time.monotonic() > deadline:
                raise TransportError(f"timed out waiting to {what} "
                                     f"({timeout}s) on ring {self.name}")

    # -- send / recv ---------------------------------------------------------

    def send(
        self,
        payload: bytes,
        timeout: Optional[float] = 30.0,
        liveness: Optional[Callable[[], bool]] = None,
    ) -> None:
        need = _HDR + _pad8(len(payload))
        if need + 8 > self.capacity:
            raise TransportError(
                f"frame of {len(payload)} bytes exceeds ring capacity "
                f"{self.capacity}"
            )
        cap = self.capacity
        tail = int(self._ctrl[1])
        pos = tail % cap
        skip = cap - pos if cap - pos < need else 0
        total = need + skip
        self._wait(
            lambda: cap - (int(self._ctrl[1]) - int(self._ctrl[0])) >= total,
            timeout,
            liveness,
            "send",
        )
        if skip:
            if cap - pos >= 4:
                struct.pack_into("<I", self._data, pos, _WRAP)
            tail += skip
            pos = 0
        crc = zlib.crc32(payload)
        struct.pack_into(_HDR_FMT, self._data, pos, _MAGIC, len(payload), crc)
        self._data[pos + _HDR : pos + _HDR + len(payload)] = payload
        # Publish after the frame is fully written (x86/ARM64 store order
        # plus the interpreter's own barriers make this safe in practice).
        self._ctrl[1] = tail + need

    def recv(
        self,
        timeout: Optional[float] = 30.0,
        liveness: Optional[Callable[[], bool]] = None,
    ) -> bytes:
        cap = self.capacity
        while True:
            self._wait(
                lambda: int(self._ctrl[1]) - int(self._ctrl[0]) > 0,
                timeout,
                liveness,
                "recv",
            )
            head = int(self._ctrl[0])
            pos = head % cap
            if cap - pos < _HDR:
                self._ctrl[0] = head + (cap - pos)
                continue
            magic = struct.unpack_from("<I", self._data, pos)[0]
            if magic == _WRAP:
                self._ctrl[0] = head + (cap - pos)
                continue
            if magic != _MAGIC:
                raise TransportError(
                    f"garbage frame on ring {self.name}: magic 0x{magic:08x}"
                )
            _, length, crc = struct.unpack_from(_HDR_FMT, self._data, pos)[:3]
            need = _HDR + _pad8(length)
            if need > cap - pos or need > int(self._ctrl[1]) - head:
                raise TransportError(
                    f"truncated frame on ring {self.name}: "
                    f"{length} bytes claimed, frame exceeds ring contents"
                )
            payload = bytes(self._data[pos + _HDR : pos + _HDR + length])
            if zlib.crc32(payload) != crc:
                raise TransportError(
                    f"frame checksum mismatch on ring {self.name}"
                )
            self._ctrl[0] = head + need
            return payload
