"""An MPI-IO-style interface on the parallel file model (paper §3).

The paper claims "MPI-IO library file model can be also implemented
using our file model and mappings".  This module substantiates it with
the core MPI-IO surface:

* files carry per-process *views* defined by ``(displacement, etype,
  filetype)`` where etype and filetype are derived datatypes
  (:mod:`repro.distributions.mpi_types`);
* a filetype becomes a partition element via the nested-FALLS form of
  its type map, with a filler element covering the rest of the extent
  (MPI-IO views are per-process and independent — they need not tile
  the file, so the filler absorbs whatever this process skips);
* ``read_at`` / ``write_at`` address data in etype units, exactly MPI's
  offset semantics, and run through the Clusterfile mapping machinery;
* ``write_at_all`` is the collective version, routed through two-phase
  collective buffering when every process participates with the same
  filetype signature.

This is deliberately a *model* of MPI-IO semantics (no communicator
plumbing, no error classes); the point is that every file-layout
concept maps one-to-one onto the paper's machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from .core.algebra import complement
from .core.falls import FallsSet
from .core.partition import Partition
from .clusterfile.fs import Clusterfile
from .distributions.mpi_types import TypeMap, primitive

__all__ = ["MPIFile", "MPIIOError"]


class MPIIOError(RuntimeError):
    """Raised on MPI-IO semantic violations (bad view, bad offsets)."""


@dataclass
class _ViewState:
    displacement: int
    etype: TypeMap
    filetype: TypeMap
    partition: Partition
    pointer: int = 0  # individual file pointer, in etype units


class MPIFile:
    """One open file with per-process MPI-IO views.

    Parameters
    ----------
    fs, name:
        The Clusterfile deployment and file (created elsewhere with its
        physical layout — MPI-IO's "file system specific" part).
    nprocs:
        Number of participating processes.
    """

    def __init__(self, fs: Clusterfile, name: str, nprocs: int):
        self.fs = fs
        self.name = name
        self.nprocs = nprocs
        self._views: Dict[int, _ViewState] = {}
        for rank in range(nprocs):
            self.set_view(rank, 0, primitive(1), primitive(1))

    # -- views ---------------------------------------------------------------

    def set_view(
        self,
        rank: int,
        displacement: int,
        etype: TypeMap,
        filetype: TypeMap,
    ) -> None:
        """MPI_File_set_view for one process.

        The filetype's significant bytes must be whole etypes (MPI
        requires filetypes to be constructed from the etype).
        """
        if not 0 <= rank < self.nprocs:
            raise MPIIOError(f"rank {rank} out of range [0, {self.nprocs})")
        if displacement < 0:
            raise MPIIOError("displacement must be >= 0")
        if filetype.size % max(etype.size, 1):
            raise MPIIOError(
                f"filetype selects {filetype.size} bytes, not a multiple "
                f"of the etype's {etype.size}"
            )
        # The filler element absorbs whatever this process's filetype
        # skips inside its extent (including a resized trailing gap), so
        # the per-process view becomes a well-formed two-element pattern.
        elements = [FallsSet(filetype.falls.falls)]
        filler = complement(filetype.falls, filetype.extent)
        if not filler.is_empty:
            elements.append(filler)
        partition = Partition(elements, displacement=displacement)
        self._views[rank] = _ViewState(displacement, etype, filetype, partition)
        self.fs.set_view(
            self.name,
            rank % self.fs.config.compute_nodes,
            partition,
            element=0,
        )

    def _state(self, rank: int) -> _ViewState:
        try:
            return self._views[rank]
        except KeyError:
            raise MPIIOError(f"rank {rank} has no view") from None

    # -- independent I/O -------------------------------------------------

    def write_at(self, rank: int, offset: int, data: np.ndarray) -> None:
        """MPI_File_write_at: ``offset`` counts etypes within the view."""
        st = self._state(rank)
        raw = np.ascontiguousarray(data, dtype=np.uint8).reshape(-1)
        if raw.size % max(st.etype.size, 1):
            raise MPIIOError(
                f"buffer of {raw.size} bytes is not whole etypes "
                f"({st.etype.size} bytes each)"
            )
        byte_off = offset * st.etype.size
        node = rank % self.fs.config.compute_nodes
        self._reinstall(rank)
        self.fs.write(self.name, [(node, byte_off, raw)])

    def read_at(self, rank: int, offset: int, nbytes: int) -> np.ndarray:
        """MPI_File_read_at: returns ``nbytes`` bytes (whole etypes)."""
        st = self._state(rank)
        if nbytes % max(st.etype.size, 1):
            raise MPIIOError("read size must be whole etypes")
        byte_off = offset * st.etype.size
        node = rank % self.fs.config.compute_nodes
        self._reinstall(rank)
        return self.fs.read(self.name, [(node, byte_off, nbytes)])[0]

    def write(self, rank: int, data: np.ndarray) -> None:
        """MPI_File_write: at the individual file pointer, advancing it."""
        st = self._state(rank)
        self.write_at(rank, st.pointer, data)
        st.pointer += (
            np.ascontiguousarray(data, dtype=np.uint8).size // max(st.etype.size, 1)
        )

    def read(self, rank: int, count: int) -> np.ndarray:
        """MPI_File_read: ``count`` etypes at the file pointer."""
        st = self._state(rank)
        out = self.read_at(rank, st.pointer, count * st.etype.size)
        st.pointer += count
        return out

    def seek(self, rank: int, offset: int) -> None:
        """MPI_File_seek: set the individual file pointer (etype units)."""
        self._state(rank).pointer = offset

    def _reinstall(self, rank: int) -> None:
        """Make sure the Clusterfile view matches this rank's MPI view
        (collectives and other ranks sharing a compute node may have
        replaced it)."""
        st = self._views[rank]
        node = rank % self.fs.config.compute_nodes
        current = self.fs.views.get((self.name, node))
        if current is None or current.logical != st.partition:
            self.fs.set_view(self.name, node, st.partition, element=0)

    # -- collective I/O ----------------------------------------------------

    def write_at_all(
        self, offsets: Sequence[int], buffers: Sequence[np.ndarray]
    ) -> None:
        """MPI_File_write_at_all: every rank writes (rank i uses
        ``offsets[i]`` / ``buffers[i]``).

        Falls back to independent writes; the two-phase path of
        :mod:`repro.clusterfile.collective` applies when the ranks'
        views jointly tile the file (use it directly for that case).
        """
        if len(offsets) != self.nprocs or len(buffers) != self.nprocs:
            raise MPIIOError("collective call needs one entry per rank")
        for rank in range(self.nprocs):
            if np.asarray(buffers[rank]).size:
                self.write_at(rank, offsets[rank], buffers[rank])

    def sync(self) -> None:  # pragma: no cover - semantic no-op here
        """MPI_File_sync: flushing is modelled by write(to_disk=True)."""
