"""Command-line inspection tools for partitions and layouts.

Usage::

    python -m repro.tools render r 16 16 4        # draw a matrix layout
    python -m repro.tools match c r 256 4         # matching-degree report
    python -m repro.tools plan b r 64 4           # redistribution schedule
    python -m repro.tools figure3                 # the paper's figure 3
    python -m repro.tools trace r c 64 4 \\
        --json out.json --chrome out.trace        # traced write + read

These are development/demonstration aids; the programmatic API lives in
:mod:`repro.viz`, :mod:`repro.core.matching` and
:mod:`repro.redistribution.schedule`.
"""

from __future__ import annotations

import argparse
import sys

from .core.falls import Falls
from .core.matching import matching_degree
from .core.partition import Partition
from .distributions.multidim import matrix_partition
from .redistribution.schedule import build_plan
from .viz import render_partition


def _cmd_render(args) -> int:
    p = matrix_partition(args.layout, args.rows, args.cols, args.nprocs)
    print(render_partition(p, length=min(p.size, args.width)))
    return 0


def _cmd_match(args) -> int:
    p1 = matrix_partition(args.src, args.n, args.n, args.nprocs)
    p2 = matrix_partition(args.dst, args.n, args.n, args.nprocs)
    m = matching_degree(p1, p2)
    print(f"matching degree {args.src} -> {args.dst} on a "
          f"{args.n}x{args.n} matrix over {args.nprocs} processes")
    print(f"  degree               {m.degree():.4f}")
    print(f"  identity             {m.identity}")
    print(f"  transfers            {m.transfers} (minimum {m.min_transfers})")
    print(f"  fan-out / fan-in     {m.fan_out} / {m.fan_in}")
    print(f"  fragments/period     src {m.src_fragments}, dst {m.dst_fragments}")
    print(f"  mean message bytes   {m.mean_message_bytes:.1f}")
    print(f"  mean fragment bytes  {m.mean_fragment_bytes:.1f}")
    print(f"  contiguity           {m.contiguity:.3f}")
    return 0


def _cmd_plan(args) -> int:
    p1 = matrix_partition(args.src, args.n, args.n, args.nprocs)
    p2 = matrix_partition(args.dst, args.n, args.n, args.nprocs)
    plan = build_plan(p1, p2)
    print(f"redistribution plan {args.src} -> {args.dst}: "
          f"{plan.message_count} transfers"
          f"{'  [identity]' if plan.is_identity else ''}")
    for t in plan.transfers:
        print(
            f"  element {t.src_element} -> {t.dst_element}: "
            f"{t.bytes_per_period} B/period, "
            f"gather {t.src_fragments_per_period} frag, "
            f"scatter {t.dst_fragments_per_period} frag"
        )
    from .viz import render_plan

    print()
    print(render_plan(plan))
    return 0


def _cmd_trace(args) -> int:
    import numpy as np

    from .clusterfile.fs import Clusterfile
    from .obs import metrics
    from .obs.export import chrome_to_json, render_trace, trace_to_json
    from .obs.span import Tracer
    from .simulation.cluster import ClusterConfig

    logical = matrix_partition(args.logical, args.n, args.n, args.nprocs)
    physical = matrix_partition(args.physical, args.n, args.n, args.nprocs)
    length = args.n * args.n

    fs = Clusterfile(
        ClusterConfig(compute_nodes=args.nprocs, io_nodes=args.nprocs)
    )
    fs.create("traced", physical)

    tracer = Tracer("tools-trace")
    with tracer.activate():
        accesses = []
        for e in range(args.nprocs):
            fs.set_view("traced", e, logical, element=e)
            piece = np.full(
                logical.element_length(e, length), e, dtype=np.uint8
            )
            accesses.append((e, 0, piece))
        fs.write("traced", accesses, to_disk=True)
        fs.read(
            "traced",
            [(0, 0, logical.element_length(0, length))],
            from_disk=True,
        )

    print(render_trace(tracer.roots))
    if args.json:
        with open(args.json, "w") as f:
            f.write(trace_to_json(tracer.roots))
        print(f"\nnested JSON trace -> {args.json}")
    if args.chrome:
        with open(args.chrome, "w") as f:
            f.write(chrome_to_json(tracer.roots))
        print(f"chrome://tracing file -> {args.chrome}")
    print("\nmetrics:")
    for name, value in metrics.snapshot().items():
        print(f"  {name} = {value}")
    return 0


def _cmd_figure3(_args) -> int:
    p = Partition(
        [Falls(0, 1, 6, 1), Falls(2, 3, 6, 1), Falls(4, 5, 6, 1)],
        displacement=2,
    )
    print(render_partition(p, length=26))
    return 0


def main(argv=None) -> int:
    """Entry point for ``python -m repro.tools``."""
    parser = argparse.ArgumentParser(prog="python -m repro.tools")
    sub = parser.add_subparsers(dest="cmd", required=True)

    pr = sub.add_parser("render", help="draw a matrix layout")
    pr.add_argument("layout", choices=["r", "c", "b"])
    pr.add_argument("rows", type=int)
    pr.add_argument("cols", type=int)
    pr.add_argument("nprocs", type=int)
    pr.add_argument("--width", type=int, default=128)
    pr.set_defaults(fn=_cmd_render)

    pm = sub.add_parser("match", help="matching-degree report")
    pm.add_argument("src", choices=["r", "c", "b"])
    pm.add_argument("dst", choices=["r", "c", "b"])
    pm.add_argument("n", type=int)
    pm.add_argument("nprocs", type=int)
    pm.set_defaults(fn=_cmd_match)

    pp = sub.add_parser("plan", help="print a redistribution schedule")
    pp.add_argument("src", choices=["r", "c", "b"])
    pp.add_argument("dst", choices=["r", "c", "b"])
    pp.add_argument("n", type=int)
    pp.add_argument("nprocs", type=int)
    pp.set_defaults(fn=_cmd_plan)

    pt = sub.add_parser(
        "trace", help="trace a parallel write + read end to end"
    )
    pt.add_argument("logical", choices=["r", "c", "b"])
    pt.add_argument("physical", choices=["r", "c", "b"])
    pt.add_argument("n", type=int)
    pt.add_argument("nprocs", type=int)
    pt.add_argument("--json", help="write the nested JSON trace here")
    pt.add_argument(
        "--chrome", help="write a chrome://tracing / Perfetto file here"
    )
    pt.set_defaults(fn=_cmd_trace)

    pf = sub.add_parser("figure3", help="draw the paper's figure 3")
    pf.set_defaults(fn=_cmd_figure3)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
