"""Command-line inspection tools for partitions and layouts.

Usage::

    python -m repro.tools render r 16 16 4        # draw a matrix layout
    python -m repro.tools match c r 256 4         # matching-degree report
    python -m repro.tools plan b r 64 4           # redistribution schedule
    python -m repro.tools figure3                 # the paper's figure 3
    python -m repro.tools trace r c 64 4 \\
        --json out.json --chrome out.trace        # traced write + read

These are development/demonstration aids; the programmatic API lives in
:mod:`repro.viz`, :mod:`repro.core.matching` and
:mod:`repro.redistribution.schedule`.
"""

from __future__ import annotations

import argparse
import sys

from .core.falls import Falls
from .core.matching import matching_degree
from .core.partition import Partition
from .distributions.multidim import matrix_partition
from .redistribution.schedule import build_plan
from .viz import render_partition


def _cmd_render(args) -> int:
    p = matrix_partition(args.layout, args.rows, args.cols, args.nprocs)
    print(render_partition(p, length=min(p.size, args.width)))
    return 0


def _cmd_match(args) -> int:
    p1 = matrix_partition(args.src, args.n, args.n, args.nprocs)
    p2 = matrix_partition(args.dst, args.n, args.n, args.nprocs)
    m = matching_degree(p1, p2)
    print(f"matching degree {args.src} -> {args.dst} on a "
          f"{args.n}x{args.n} matrix over {args.nprocs} processes")
    print(f"  degree               {m.degree():.4f}")
    print(f"  identity             {m.identity}")
    print(f"  transfers            {m.transfers} (minimum {m.min_transfers})")
    print(f"  fan-out / fan-in     {m.fan_out} / {m.fan_in}")
    print(f"  fragments/period     src {m.src_fragments}, dst {m.dst_fragments}")
    print(f"  mean message bytes   {m.mean_message_bytes:.1f}")
    print(f"  mean fragment bytes  {m.mean_fragment_bytes:.1f}")
    print(f"  contiguity           {m.contiguity:.3f}")
    return 0


def _cmd_plan(args) -> int:
    p1 = matrix_partition(args.src, args.n, args.n, args.nprocs)
    p2 = matrix_partition(args.dst, args.n, args.n, args.nprocs)
    plan = build_plan(p1, p2)
    print(f"redistribution plan {args.src} -> {args.dst}: "
          f"{plan.message_count} transfers"
          f"{'  [identity]' if plan.is_identity else ''}")
    for t in plan.transfers:
        print(
            f"  element {t.src_element} -> {t.dst_element}: "
            f"{t.bytes_per_period} B/period, "
            f"gather {t.src_fragments_per_period} frag, "
            f"scatter {t.dst_fragments_per_period} frag"
        )
    from .viz import render_plan

    print()
    print(render_plan(plan))
    return 0


def _cmd_trace(args) -> int:
    import numpy as np

    from .clusterfile.fs import Clusterfile
    from .obs import metrics
    from .obs.export import chrome_to_json, render_trace, trace_to_json
    from .obs.span import Tracer
    from .simulation.cluster import ClusterConfig

    logical = matrix_partition(args.logical, args.n, args.n, args.nprocs)
    physical = matrix_partition(args.physical, args.n, args.n, args.nprocs)
    length = args.n * args.n

    fs = Clusterfile(
        ClusterConfig(compute_nodes=args.nprocs, io_nodes=args.nprocs),
        workers_mode=args.mode,
        workers=args.io_processes,
    )
    fs.create("traced", physical)

    tracer = Tracer("tools-trace")
    with tracer.activate():
        accesses = []
        for e in range(args.nprocs):
            fs.set_view("traced", e, logical, element=e)
            piece = np.full(
                logical.element_length(e, length), e, dtype=np.uint8
            )
            accesses.append((e, 0, piece))
        fs.write("traced", accesses, to_disk=True)
        fs.read(
            "traced",
            [(0, 0, logical.element_length(0, length))],
            from_disk=True,
        )
    if args.mode == "process":
        fs.close()  # spans are already collected; release the pool

    print(render_trace(tracer.roots))
    if args.json:
        with open(args.json, "w") as f:
            f.write(trace_to_json(tracer.roots))
        print(f"\nnested JSON trace -> {args.json}")
    if args.chrome:
        with open(args.chrome, "w") as f:
            f.write(chrome_to_json(tracer.roots))
        print(f"chrome://tracing file -> {args.chrome}")
    print("\nmetrics:")
    for name, value in metrics.snapshot().items():
        print(f"  {name} = {value}")
    dists = metrics.get_registry().gauges()
    if dists:
        print("\ndistributions:")
        for name, d in dists.items():
            print(
                f"  {name}: count={d['count']} mean={d['mean']:.3g} "
                f"p50={d.get('p50', 0.0):.3g} p99={d.get('p99', 0.0):.3g} "
                f"max={d['max']:.3g}"
            )
    return 0


def _cmd_chaos(args) -> int:
    import json

    from .faults.chaos import run_sweep

    seeds = (
        [args.seed]
        if args.seed is not None
        else list(range(args.seeds))
    )
    if args.kill_restart:
        return _cmd_chaos_kill_restart(args, seeds)
    reports, all_ok = run_sweep(
        seeds,
        n_bytes=args.n,
        nprocs=args.nprocs,
        replication=args.replication,
        drop=args.drop,
        corrupt=args.corrupt,
        delay_s=args.delay,
        crash_node=args.crash_node,
        crash_after=args.crash_after,
        slow_node=args.slow_node,
        slow_factor=args.slow_factor,
        mode=args.mode,
    )
    for report in reports:
        verdict = "OK " if report["ok"] else "FAIL"
        print(f"[{verdict}] seed {report['seed']}:")
        for name, p in report["paths"].items():
            print(
                f"    {name:<11} ok={str(p['ok']):<5} "
                f"retries={p['retries']} failed_over={p['failed_over']} "
                f"degraded={p['degraded']}"
            )
        print(
            "    recovery-latency overhead "
            f"{report['recovery_latency_overhead'] * 100:+.1f}%"
        )
    if args.json:
        with open(args.json, "w") as f:
            json.dump(reports, f, indent=2)
        print(f"\nreports -> {args.json}")
    if not all_ok:
        failing = [r for r in reports if not r["ok"]]
        with open(args.fail_plan, "w") as f:
            f.write(failing[0]["plan"])
        print(
            f"FAILED: byte mismatch under seed(s) "
            f"{[r['seed'] for r in failing]}; "
            f"first failing FaultPlan -> {args.fail_plan}"
        )
        return 1
    print(f"\nall {len(reports)} seed(s): four data paths byte-identical")
    return 0


def _cmd_chaos_kill_restart(args, seeds) -> int:
    """SIGKILL a journaled service subprocess at a randomized point,
    recover from the write-ahead journals, and diff the recovered bytes
    against a serial replay of the acknowledged-ticket prefix."""
    import json

    from .durability.chaos import run_kill_restart_sweep

    reports, all_ok = run_kill_restart_sweep(
        seeds,
        nprocs=args.nprocs,
        files=args.kill_files,
        n_ops=args.kill_ops,
        snapshot_every=args.snapshot_every,
    )
    for report in reports:
        verdict = "OK " if report["ok"] else "FAIL"
        print(
            f"[{verdict}] seed {report['seed']}: killed={report['killed']} "
            f"mode={report['kill_mode']} acked={report['total_acked']}"
        )
        for name, p in report["files_report"].items():
            print(
                f"    {name:<11} ok={str(p['ok']):<5} "
                f"acked={p['acked']} stamp={p['stamp']} "
                f"replayed={p['records_replayed']} "
                f"tail_discarded={p['tail_bytes_discarded']} "
                f"recovered_in={p['recovery_time_s']:.4f}s"
            )
        bb = report.get("blackbox", {})
        if "error" in bb:
            print(f"    blackbox: undecodable ({bb['error']})")
        else:
            print(
                f"    blackbox: {bb.get('events', 0)} events "
                f"({bb.get('torn', 0)} torn) — last words: "
                f"{len(bb.get('in_flight', []))} in-flight, "
                f"{len(bb.get('held_locks', []))} held lock(s), "
                f"{len(bb.get('commit_in_progress', []))} mid-commit"
            )
            for d in bb.get("in_flight", []):
                print(
                    f"      in-flight {d.get('trace_id', '?')} "
                    f"file={d.get('file', '?')} seq={d.get('ticket_seq')}"
                )
    if args.json:
        with open(args.json, "w") as f:
            json.dump(reports, f, indent=2, default=str)
        print(f"\nreports -> {args.json}")
    if not all_ok:
        failing = [r["seed"] for r in reports if not r["ok"]]
        dirs = [r.get("workdir") for r in reports if not r["ok"]]
        print(
            f"FAILED: recovery diverged from the acked prefix under "
            f"seed(s) {failing}; state preserved in {dirs}"
        )
        return 1
    print(
        f"\nall {len(reports)} seed(s): recovered bytes identical to the "
        "serial replay of every acknowledged write"
    )
    return 0


def _cmd_blackbox(args) -> int:
    """Decode a dead process's flight-recorder ring(s) into a
    post-mortem report — from the mmap ring file alone."""
    import json
    import os

    from .obs.forensics import decode_ring, reconstruct, render_blackbox

    paths = []
    if os.path.isdir(args.ring):
        for entry in sorted(os.listdir(args.ring)):
            paths.append(os.path.join(args.ring, entry))
    else:
        paths.append(args.ring)
    recons = []
    decoded = 0
    for path in paths:
        try:
            dump = decode_ring(path)
        except (OSError, ValueError) as exc:
            if not os.path.isdir(args.ring):
                print(f"error: {exc}", file=sys.stderr)
                return 2
            continue  # a directory scan skips non-ring files quietly
        decoded += 1
        recon = reconstruct(dump, last=args.last)
        recons.append(recon)
        if not args.json:
            print(render_blackbox(recon))
    if decoded == 0:
        print(f"error: no flight rings under {args.ring!r}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(recons if len(recons) > 1 else recons[0], indent=2))
    return 0


def _parse_tenant_weights(spec, tenants):
    """``"3,1"`` or ``"t0=3,t1=1"`` -> ``{tenant: weight}`` over the
    generated tenant names ``t0..tN-1``."""
    if not spec:
        return {}
    weights = {}
    parts = [p for p in spec.split(",") if p.strip()]
    for i, part in enumerate(parts):
        if "=" in part:
            name, value = part.split("=", 1)
            weights[name.strip()] = float(value)
        else:
            if i >= tenants:
                raise SystemExit(
                    f"--tenant-weights lists {len(parts)} weights for "
                    f"{tenants} tenants"
                )
            weights[f"t{i}"] = float(part)
    for w in weights.values():
        if w <= 0:
            raise SystemExit("--tenant-weights must be > 0")
    return weights


def _cmd_serve(args) -> int:
    """Load driver for the concurrent file service: a mixed workload of
    threaded clients, spread over a namespace of files and a set of
    weighted tenants, against one deployment — reported as JSON."""
    import json
    import threading
    import time

    import numpy as np

    from .clusterfile.fs import Clusterfile
    from .distributions import round_robin
    from .namespace import ClusterNamespace
    from .obs import flightrec, metrics
    from .obs.live import StatsServer, TelemetrySampler
    from .obs.slo import SloObjective, SloTracker
    from .service import FileService, request_timeline

    metrics.reset_metrics("service")
    metrics.reset_metrics("engine")
    metrics.reset_metrics("namespace")
    if args.flightrec:
        flightrec.arm(args.flightrec)
        print(f"flight recorder armed -> {args.flightrec}", file=sys.stderr)
    nprocs = args.nprocs
    if args.files < 1:
        raise SystemExit("--files must be >= 1")
    if args.tenants < 1:
        raise SystemExit("--tenants must be >= 1")
    fs = Clusterfile(workers_mode=args.mode, workers=args.io_processes)
    cns = ClusterNamespace(fs)
    paths = [f"/load/f{j}" for j in range(args.files)]
    for path in paths:
        cns.create(path, round_robin(nprocs, args.chunk), parents=True)
        for node in range(nprocs):
            cns.set_view(path, node, round_robin(nprocs, args.chunk))
    tenant_names = [f"t{j}" for j in range(args.tenants)]
    tenant_weights = _parse_tenant_weights(args.tenant_weights, args.tenants)

    slo = None
    if args.slo:
        slo = SloTracker([SloObjective.parse(s) for s in args.slo])

    sampler = None
    stats = None
    if args.stats_port is not None:
        sampler = TelemetrySampler(
            interval_s=args.sample_interval, slo=slo
        ).start()
        stats = StatsServer(
            port=args.stats_port, sampler=sampler, slo=slo
        ).start()
        print(
            f"stats endpoint: {stats.url}/metrics  {stats.url}/stats",
            file=sys.stderr,
        )

    sample: dict = {}

    def client(i, svc):
        rng = np.random.default_rng(args.seed + i)
        tenant = tenant_names[i % len(tenant_names)]
        for k in range(args.ops):
            path = paths[int(rng.integers(len(paths)))]
            node = int(rng.integers(nprocs))
            off = int(rng.integers(0, 4 * args.chunk))
            if rng.random() < args.write_fraction:
                data = rng.integers(
                    0, 256, int(rng.integers(1, args.chunk + 1)), np.uint8
                )
                tk = svc.submit_write(path, node, off, data, tenant=tenant)
            else:
                tk = svc.submit_read(
                    path,
                    node,
                    off,
                    int(rng.integers(1, args.chunk + 1)),
                    tenant=tenant,
                )
            if i == 0 and k == 0:
                sample["ticket"] = tk

    started = time.perf_counter()
    with FileService(
        fs,
        workers=args.workers,
        max_queue=args.max_queue,
        admission="park",
        max_batch=args.max_batch,
        batch_window_s=args.batch_window,
        namespace=cns,
        tenant_weights=tenant_weights,
        tenant_quota=args.tenant_quota,
    ) as svc:
        threads = [
            threading.Thread(target=client, args=(i, svc))
            for i in range(args.clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        svc.drain()
    elapsed = time.perf_counter() - started

    if stats is not None and args.linger > 0:
        print(
            f"lingering {args.linger}s for scrapes at {stats.url}",
            file=sys.stderr,
        )
        time.sleep(args.linger)
    series = sampler.stop() if sampler is not None else None
    if stats is not None:
        stats.close()
    if args.mode == "process":
        fs.close()  # shut the worker pool down; unlink shared memory

    total = args.clients * args.ops
    report = {
        "clients": args.clients,
        "workers": args.workers,
        "max_batch": args.max_batch,
        "files": args.files,
        "tenants": args.tenants,
        "tenant_weights": tenant_weights or None,
        "namespace": cns.stats(),
        "operations": total,
        "elapsed_s": elapsed,
        "ops_per_s": total / elapsed if elapsed else None,
        "counters": metrics.snapshot("service"),
        "gauges": metrics.get_registry().gauges("service"),
        "exemplars": {
            name: h.exemplars()
            for name, h in metrics.get_registry().histograms().items()
            if h.exemplars()
        },
        # One request reconstructed end to end across threads — the
        # trace-context propagation demonstrated on real load.
        "example_timeline": (
            request_timeline(sample["ticket"]) if "ticket" in sample else None
        ),
    }
    if series is not None:
        report["telemetry"] = {"samples": len(series), "series": series[-64:]}
    if slo is not None:
        slo.tick(force=True)
        report["slo"] = slo.payload()
    rec = flightrec.disarm()
    if rec is not None:
        report["flightrec"] = {"path": rec.path, "events": rec.events}
    print(json.dumps(report, indent=2))
    if args.json:
        with open(args.json, "w") as f:
            json.dump(report, f, indent=2)
        print(f"report -> {args.json}", file=sys.stderr)
    return 0


def _cmd_figure3(_args) -> int:
    p = Partition(
        [Falls(0, 1, 6, 1), Falls(2, 3, 6, 1), Falls(4, 5, 6, 1)],
        displacement=2,
    )
    print(render_partition(p, length=26))
    return 0


def _add_mode_flags(sub, io_processes: bool = True) -> None:
    """The execution-mode knobs shared by trace/chaos/serve."""
    sub.add_argument(
        "--mode", choices=["thread", "process"], default="thread",
        help="I/O-node execution mode: in-process threads or a "
        "shared-memory worker-process pool",
    )
    if io_processes:
        sub.add_argument(
            "--io-processes", type=int, default=4,
            help="worker processes in --mode process (default 4)",
        )


def main(argv=None) -> int:
    """Entry point for ``python -m repro.tools``."""
    parser = argparse.ArgumentParser(prog="python -m repro.tools")
    sub = parser.add_subparsers(dest="cmd", required=True)

    pr = sub.add_parser("render", help="draw a matrix layout")
    pr.add_argument("layout", choices=["r", "c", "b"])
    pr.add_argument("rows", type=int)
    pr.add_argument("cols", type=int)
    pr.add_argument("nprocs", type=int)
    pr.add_argument("--width", type=int, default=128)
    pr.set_defaults(fn=_cmd_render)

    pm = sub.add_parser("match", help="matching-degree report")
    pm.add_argument("src", choices=["r", "c", "b"])
    pm.add_argument("dst", choices=["r", "c", "b"])
    pm.add_argument("n", type=int)
    pm.add_argument("nprocs", type=int)
    pm.set_defaults(fn=_cmd_match)

    pp = sub.add_parser("plan", help="print a redistribution schedule")
    pp.add_argument("src", choices=["r", "c", "b"])
    pp.add_argument("dst", choices=["r", "c", "b"])
    pp.add_argument("n", type=int)
    pp.add_argument("nprocs", type=int)
    pp.set_defaults(fn=_cmd_plan)

    pt = sub.add_parser(
        "trace", help="trace a parallel write + read end to end"
    )
    pt.add_argument("logical", choices=["r", "c", "b"])
    pt.add_argument("physical", choices=["r", "c", "b"])
    pt.add_argument("n", type=int)
    pt.add_argument("nprocs", type=int)
    pt.add_argument("--json", help="write the nested JSON trace here")
    pt.add_argument(
        "--chrome", help="write a chrome://tracing / Perfetto file here"
    )
    _add_mode_flags(pt)
    pt.set_defaults(fn=_cmd_trace)

    pc = sub.add_parser(
        "chaos", help="seeded fault-injection sweep over all data paths"
    )
    pc.add_argument(
        "--seeds", type=int, default=3, help="sweep seeds 0..N-1 (default 3)"
    )
    pc.add_argument(
        "--seed", type=int, default=None, help="run one specific seed"
    )
    pc.add_argument("--n", type=int, default=4096, help="file bytes")
    pc.add_argument("--nprocs", type=int, default=4)
    pc.add_argument("--replication", type=int, default=2)
    pc.add_argument("--drop", type=float, default=0.05)
    pc.add_argument("--corrupt", type=float, default=0.05)
    pc.add_argument("--delay", type=float, default=0.0)
    pc.add_argument("--crash-node", type=int, default=None)
    pc.add_argument("--crash-after", type=int, default=0)
    pc.add_argument("--slow-node", type=int, default=None)
    pc.add_argument("--slow-factor", type=float, default=1.0)
    pc.add_argument("--json", help="write the per-seed reports here")
    pc.add_argument(
        "--fail-plan",
        default="chaos-failing-plan.json",
        help="where to save the failing FaultPlan JSON (on mismatch)",
    )
    pc.add_argument(
        "--kill-restart", action="store_true",
        help="SIGKILL a journaled service subprocess instead of "
        "injecting transfer faults, then recover and diff against a "
        "serial replay of the acknowledged writes",
    )
    pc.add_argument(
        "--kill-ops", type=int, default=160,
        help="operations in the kill-restart victim workload",
    )
    pc.add_argument(
        "--kill-files", type=int, default=2,
        help="files in the kill-restart victim workload",
    )
    pc.add_argument(
        "--snapshot-every", type=int, default=10,
        help="inject a checkpoint boundary every N ops (0: never) so "
        "kills land mid-snapshot too",
    )
    _add_mode_flags(pc, io_processes=False)
    pc.set_defaults(fn=_cmd_chaos)

    ps = sub.add_parser(
        "serve", help="drive the concurrent file service with load"
    )
    ps.add_argument("--clients", type=int, default=8, help="client threads")
    ps.add_argument("--workers", type=int, default=4, help="service workers")
    ps.add_argument("--ops", type=int, default=50, help="operations/client")
    ps.add_argument("--nprocs", type=int, default=4)
    ps.add_argument("--chunk", type=int, default=64, help="striping unit")
    ps.add_argument("--max-queue", type=int, default=64)
    ps.add_argument("--max-batch", type=int, default=8)
    ps.add_argument(
        "--batch-window", type=float, default=0.0,
        help="seconds to linger for batch stragglers",
    )
    ps.add_argument(
        "--write-fraction", type=float, default=0.7,
        help="fraction of operations that are writes",
    )
    ps.add_argument(
        "--files", type=int, default=1,
        help="independent files in the namespace (default 1)",
    )
    ps.add_argument(
        "--tenants", type=int, default=1,
        help="tenants; client i submits as t(i %% tenants) (default 1)",
    )
    ps.add_argument(
        "--tenant-weights", default=None,
        help="WFQ weights: '3,1' (t0,t1 in order) or 't0=3,t1=1'",
    )
    ps.add_argument(
        "--tenant-quota", type=int, default=None,
        help="per-tenant cap on queued operations (default: max-queue)",
    )
    ps.add_argument("--seed", type=int, default=0)
    ps.add_argument("--json", help="also write the report here")
    ps.add_argument(
        "--stats-port", type=int, default=None,
        help="serve /metrics and /stats on this port (0 = ephemeral)",
    )
    ps.add_argument(
        "--sample-interval", type=float, default=0.25,
        help="telemetry sampler period in seconds",
    )
    ps.add_argument(
        "--linger", type=float, default=0.0,
        help="keep the stats endpoint up this long after the workload",
    )
    ps.add_argument(
        "--slo", action="append", default=None, metavar="T=THRESH@TARGET",
        help="per-tenant latency SLO, e.g. 't0=0.05@0.99' (99%% of t0's "
        "requests under 50 ms); repeatable. Adds burn-rate gauges to "
        "/metrics and an slo/alerts section to /stats",
    )
    ps.add_argument(
        "--flightrec", default=None, metavar="PATH",
        help="arm the crash-surviving flight recorder on this ring file "
        "(decode later with 'blackbox PATH')",
    )
    _add_mode_flags(ps)
    ps.set_defaults(fn=_cmd_serve)

    pb = sub.add_parser(
        "blackbox",
        help="decode a dead process's flight-recorder ring into a "
        "post-mortem timeline",
    )
    pb.add_argument(
        "ring",
        help="a flight ring file, or a directory to scan for rings",
    )
    pb.add_argument(
        "--last", type=int, default=32,
        help="timeline length: the final N events (default 32)",
    )
    pb.add_argument(
        "--json", action="store_true",
        help="emit the reconstruction as JSON instead of text",
    )
    pb.set_defaults(fn=_cmd_blackbox)

    pf = sub.add_parser("figure3", help="draw the paper's figure 3")
    pf.set_defaults(fn=_cmd_figure3)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
