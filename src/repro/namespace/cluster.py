"""Binding the namespace to a Clusterfile deployment.

:class:`ClusterNamespace` pairs one :class:`~repro.namespace.tree.Namespace`
(the metadata: paths, ids, lookup cache) with one
:class:`~repro.clusterfile.fs.Clusterfile` (the data: subfile stores,
views, the I/O engine).  The binding is one rule: a file inode's
backing store name is derived from its *id* (``fid-<id>``), never from
its path.  Consequences:

* **rename is pure metadata** — the subtree re-links in the inode
  table, the lookup cache invalidates by prefix, and not one subfile
  store, view, lock, or sequence counter moves;
* **delete is two steps** — drop the inode (path stops resolving
  immediately), then unlink the backing stores;
* the service layer keys everything by ``(backing name, file id)``, so
  operations admitted before a rename and after it land on the same
  queues in the same order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..clusterfile.fs import Clusterfile
from ..core.partition import Partition
from .tree import Inode, Namespace

__all__ = ["ClusterNamespace"]


class ClusterNamespace:
    """A namespace of parallel files over one deployment.

    Parameters
    ----------
    fs:
        The deployment holding subfile stores and views.
    namespace:
        An existing metadata tree to bind, or ``None`` for a fresh one.
    cache_capacity:
        Lookup-cache bound when building a fresh tree.
    durability:
        An optional :class:`~repro.durability.DurabilityManager`.  When
        given, every metadata mutation is journaled (flushed before the
        call returns) through a
        :class:`~repro.durability.NamespaceJournal` under the manager's
        root, and file creation registers the backing stores with the
        manager — so the whole namespace (ids, paths, partitions)
        outlives the process.  Restart with :meth:`recover`.
    """

    def __init__(
        self,
        fs: Clusterfile,
        namespace: Optional[Namespace] = None,
        cache_capacity: int = 1024,
        durability: object = None,
        _nslog: object = None,
    ):
        self.fs = fs
        self.tree = (
            namespace
            if namespace is not None
            else Namespace(cache_capacity=cache_capacity)
        )
        self.durability = durability
        self.nslog = _nslog
        if durability is not None and self.nslog is None:
            from ..durability.nslog import NamespaceJournal

            self.nslog = NamespaceJournal.open(
                durability.namespace_dir(), self.tree, sync=durability.sync
            )

    def _record(self, op: Dict[str, object]) -> None:
        if self.nslog is not None:
            self.nslog.record(op)

    @classmethod
    def recover(
        cls,
        fs: Clusterfile,
        durability,
        cache_capacity: int = 1024,
    ) -> Tuple["ClusterNamespace", Dict[str, object]]:
        """Rebuild a crashed namespace: tree, backing files, journals.

        Loads the namespace snapshot, replays journaled metadata ops
        (ids are allocated sequentially, so every inode keeps its id —
        and with it its ``fid-<id>`` backing name), recovers every
        manifested file's bytes into ``fs``, then reconciles the two:
        an inode whose backing stores never got a manifest (killed
        between the metadata commit and the data manifest) gets fresh
        empty stores from its recorded partition; a manifest no inode
        references (killed mid-delete) is dropped.  Returns the bound
        namespace and a report.
        """
        from ..durability.nslog import NamespaceJournal

        tree, nslog, ns_report = NamespaceJournal.recover(
            durability.namespace_dir(),
            cache_capacity=cache_capacity,
            sync=durability.sync,
        )
        file_report = durability.recover_into(fs)
        self = cls(fs, namespace=tree, durability=durability, _nslog=nslog)
        referenced = set()
        created = []
        for _path, fid in tree.fold(files_only=True).items():
            node = tree.inode(fid)
            backing = node.meta.get("backing")
            if backing is None:
                continue
            referenced.add(str(backing))
            if str(backing) not in fs.files:
                fs.create(
                    str(backing),
                    node.meta["physical"],
                    replication=int(node.meta.get("replication", 1)),
                )
                durability.register_file(fs, str(backing))
                created.append(str(backing))
        orphans = [
            name
            for name in durability.journaled_files()
            if name not in referenced
        ]
        for name in orphans:
            durability.drop_file(name)
            if name in fs.files:
                fs.unlink(name)
        return self, {
            "namespace": ns_report,
            "files": file_report,
            "recreated_backings": created,
            "dropped_orphans": orphans,
        }

    # -- identity ------------------------------------------------------------

    @staticmethod
    def backing_name(fid: int) -> str:
        """The id-derived Clusterfile name of a file inode's stores."""
        return f"fid-{fid}"

    def locate(self, path: str) -> Tuple[str, int]:
        """``(backing name, file id)`` for a file path — what the
        service layer keys its per-file state by."""
        node = self.tree.resolve(path)
        if node.is_dir:
            raise IsADirectoryError(path)
        return str(node.meta["backing"]), node.id

    # -- metadata operations -------------------------------------------------

    def mkdir(self, path: str, parents: bool = False) -> Inode:
        node = self.tree.mkdir(path, parents=parents)
        self._record({"op": "mkdir", "path": path, "parents": parents})
        return node

    def create(
        self,
        path: str,
        physical: Partition,
        replication: int = 1,
        parents: bool = False,
    ) -> Inode:
        """Create a file: inode first (allocating the id), then the
        backing subfile stores under the id-derived name."""
        node = self.tree.create(
            path,
            parents=parents,
            physical=physical,
            replication=replication,
        )
        backing = self.backing_name(node.id)
        node.meta["backing"] = backing
        try:
            self.fs.create(backing, physical, replication=replication)
        except Exception:
            self.tree.unlink(path)  # roll the metadata back
            raise
        # Journal *after* the stores exist (a failed create leaves no
        # record), then manifest the backing file: a kill anywhere in
        # this sequence recovers consistently — no record means the
        # whole create vanishes; a record without a manifest is
        # reconciled by :meth:`recover` (fresh empty stores).
        if self.nslog is not None:
            from ..durability.nslog import _encode_meta

            self._record(
                {
                    "op": "create",
                    "path": path,
                    "parents": parents,
                    "meta": _encode_meta(node.meta),
                }
            )
        if self.durability is not None:
            self.durability.register_file(self.fs, backing)
        return node

    def open(self, path: str) -> Inode:
        """The file inode at ``path`` (``IsADirectoryError`` for dirs)."""
        node = self.tree.resolve(path)
        if node.is_dir:
            raise IsADirectoryError(path)
        return node

    def delete(self, path: str) -> None:
        """Unlink the inode, then the backing stores."""
        node = self.tree.unlink(path)
        self._record({"op": "unlink", "path": path})
        self.fs.unlink(str(node.meta["backing"]))
        if self.durability is not None:
            self.durability.drop_file(str(node.meta["backing"]))

    def rename(self, src: str, dst: str) -> Inode:
        """Pure metadata — see the module docstring."""
        node = self.tree.rename(src, dst)
        self._record({"op": "rename", "src": src, "dst": dst})
        return node

    def listdir(self, path: str = "/") -> List[str]:
        return self.tree.listdir(path)

    def exists(self, path: str) -> bool:
        return self.tree.exists(path)

    # -- data plumbing -------------------------------------------------------

    def set_view(
        self,
        path: str,
        compute_node: int,
        logical: Partition,
        element: Optional[int] = None,
    ):
        """Set a view on a file by path (resolved once, here; the view
        itself is keyed by the backing name and survives renames)."""
        backing, _ = self.locate(path)
        return self.fs.set_view(backing, compute_node, logical, element)

    def linear_contents(self, path: str, length: Optional[int] = None):
        backing, _ = self.locate(path)
        return self.fs.linear_contents(backing, length)

    def stats(self) -> dict:
        return self.tree.stats()
