"""Binding the namespace to a Clusterfile deployment.

:class:`ClusterNamespace` pairs one :class:`~repro.namespace.tree.Namespace`
(the metadata: paths, ids, lookup cache) with one
:class:`~repro.clusterfile.fs.Clusterfile` (the data: subfile stores,
views, the I/O engine).  The binding is one rule: a file inode's
backing store name is derived from its *id* (``fid-<id>``), never from
its path.  Consequences:

* **rename is pure metadata** — the subtree re-links in the inode
  table, the lookup cache invalidates by prefix, and not one subfile
  store, view, lock, or sequence counter moves;
* **delete is two steps** — drop the inode (path stops resolving
  immediately), then unlink the backing stores;
* the service layer keys everything by ``(backing name, file id)``, so
  operations admitted before a rename and after it land on the same
  queues in the same order.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..clusterfile.fs import Clusterfile
from ..core.partition import Partition
from .tree import Inode, Namespace

__all__ = ["ClusterNamespace"]


class ClusterNamespace:
    """A namespace of parallel files over one deployment.

    Parameters
    ----------
    fs:
        The deployment holding subfile stores and views.
    namespace:
        An existing metadata tree to bind, or ``None`` for a fresh one.
    cache_capacity:
        Lookup-cache bound when building a fresh tree.
    """

    def __init__(
        self,
        fs: Clusterfile,
        namespace: Optional[Namespace] = None,
        cache_capacity: int = 1024,
    ):
        self.fs = fs
        self.tree = (
            namespace
            if namespace is not None
            else Namespace(cache_capacity=cache_capacity)
        )

    # -- identity ------------------------------------------------------------

    @staticmethod
    def backing_name(fid: int) -> str:
        """The id-derived Clusterfile name of a file inode's stores."""
        return f"fid-{fid}"

    def locate(self, path: str) -> Tuple[str, int]:
        """``(backing name, file id)`` for a file path — what the
        service layer keys its per-file state by."""
        node = self.tree.resolve(path)
        if node.is_dir:
            raise IsADirectoryError(path)
        return str(node.meta["backing"]), node.id

    # -- metadata operations -------------------------------------------------

    def mkdir(self, path: str, parents: bool = False) -> Inode:
        return self.tree.mkdir(path, parents=parents)

    def create(
        self,
        path: str,
        physical: Partition,
        replication: int = 1,
        parents: bool = False,
    ) -> Inode:
        """Create a file: inode first (allocating the id), then the
        backing subfile stores under the id-derived name."""
        node = self.tree.create(
            path,
            parents=parents,
            physical=physical,
            replication=replication,
        )
        backing = self.backing_name(node.id)
        node.meta["backing"] = backing
        try:
            self.fs.create(backing, physical, replication=replication)
        except Exception:
            self.tree.unlink(path)  # roll the metadata back
            raise
        return node

    def open(self, path: str) -> Inode:
        """The file inode at ``path`` (``IsADirectoryError`` for dirs)."""
        node = self.tree.resolve(path)
        if node.is_dir:
            raise IsADirectoryError(path)
        return node

    def delete(self, path: str) -> None:
        """Unlink the inode, then the backing stores."""
        node = self.tree.unlink(path)
        self.fs.unlink(str(node.meta["backing"]))

    def rename(self, src: str, dst: str) -> Inode:
        """Pure metadata — see the module docstring."""
        return self.tree.rename(src, dst)

    def listdir(self, path: str = "/") -> List[str]:
        return self.tree.listdir(path)

    def exists(self, path: str) -> bool:
        return self.tree.exists(path)

    # -- data plumbing -------------------------------------------------------

    def set_view(
        self,
        path: str,
        compute_node: int,
        logical: Partition,
        element: Optional[int] = None,
    ):
        """Set a view on a file by path (resolved once, here; the view
        itself is keyed by the backing name and survives renames)."""
        backing, _ = self.locate(path)
        return self.fs.set_view(backing, compute_node, logical, element)

    def linear_contents(self, path: str, length: Optional[int] = None):
        backing, _ = self.locate(path)
        return self.fs.linear_contents(backing, length)

    def stats(self) -> dict:
        return self.tree.stats()
