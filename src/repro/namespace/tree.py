"""The inode table: a directory tree folded into a flat map of ids.

Yodaiken's *Folding a Tree into a Map* observes that the UNIX retrieval
architecture is two maps, not a tree: a flat ``id -> inode`` map holds
everything durable, and directories are just inodes whose payload is a
``name -> id`` map.  Path resolution is a left fold over the path's
components; everything else (permissions, caching, mount points) is
decoration on that fold.  This module reproduces that shape:

* :class:`Inode` — one metadata record: stable integer id, kind
  (``"file"`` or ``"dir"``), link back to the parent, monotonic
  create/change stamps, and an open ``meta`` dict for the binding layer
  (physical partition, replication, backing store name).
* :class:`Namespace` — the two maps plus the operations: ``mkdir``,
  ``create``, ``resolve``, ``unlink``, ``rmdir``, ``rename``,
  ``listdir``, and ``fold`` (the whole tree flattened to
  ``{path: id}``).  Thread-safe; every mutation holds one lock.
* :class:`LookupCache` — a bounded LRU of ``path -> id`` resolutions
  with hit/miss/eviction/invalidation counters, mirrored into the
  process-wide metrics registry under ``namespace.lookup_cache.*``
  exactly the way :class:`~repro.redistribution.plan_cache.PlanCache`
  mirrors ``plan_cache.*`` — so ``/stats`` derives a hit rate for both
  through the same machinery.

Resolution semantics: ids are the identity, paths are an index.  A
rename moves a subtree by re-linking one inode — ids, and therefore
every id-keyed structure in the service layer (locks, queues, sequence
counters, subfile stores), are untouched.  The lookup cache is the only
state invalidated, by path prefix.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..obs import metrics as _metrics

__all__ = ["Inode", "LookupCache", "Namespace", "ROOT_ID"]

#: The root directory's well-known id (its own parent, like UNIX "/").
ROOT_ID = 0


@dataclass
class Inode:
    """One metadata record in the flat map."""

    id: int
    kind: str  # "file" | "dir"
    name: str  # final path component ("" for the root)
    parent: int  # parent directory id (the root is its own parent)
    #: Monotonic namespace-wide stamp at creation.
    created: int = 0
    #: Monotonic namespace-wide stamp of the last metadata change
    #: (rename of self or of an ancestor does not bump it; re-linking
    #: children of a directory does).
    changed: int = 0
    #: Open metadata for the binding layer (backing store name,
    #: physical partition, replication, sizes...).
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def is_dir(self) -> bool:
        return self.kind == "dir"

    @property
    def is_file(self) -> bool:
        return self.kind == "file"


class LookupCache:
    """A bounded LRU of ``path -> file id`` resolutions.

    Mirrors :class:`~repro.redistribution.plan_cache.PlanCache`'s
    counter discipline: when named, every hit/miss/eviction (plus this
    cache's fourth event, *invalidation*) is published to the metrics
    registry under ``namespace.<name>.*`` so live exporters derive a
    hit rate without holding a reference to the cache.
    """

    def __init__(self, capacity: int = 1024, name: Optional[str] = None):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[str, int]" = OrderedDict()
        self._lock = threading.Lock()
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def _mirror(self, event: str, n: int = 1) -> None:
        if self.name is not None and n:
            _metrics.inc(f"namespace.{self.name}.{event}", n)

    def get(self, path: str) -> Optional[int]:
        """The cached id for ``path``, or ``None`` (counts the miss)."""
        with self._lock:
            fid = self._entries.get(path)
            if fid is not None:
                self._entries.move_to_end(path)
                self.hits += 1
                self._mirror("hits")
                return fid
            self.misses += 1
            self._mirror("misses")
            return None

    def put(self, path: str, fid: int) -> None:
        if self._capacity == 0:
            return
        with self._lock:
            self._entries[path] = fid
            self._entries.move_to_end(path)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._mirror("evictions")

    def invalidate(self, path: str) -> int:
        """Drop one exact path; returns how many entries were dropped."""
        with self._lock:
            dropped = 1 if self._entries.pop(path, None) is not None else 0
            self.invalidations += dropped
            self._mirror("invalidations", dropped)
            return dropped

    def invalidate_prefix(self, path: str) -> int:
        """Drop ``path`` and everything under it (after a subtree rename
        or removal every cached resolution below it is stale)."""
        prefix = path.rstrip("/") + "/"
        with self._lock:
            stale = [
                p for p in self._entries if p == path or p.startswith(prefix)
            ]
            for p in stale:
                del self._entries[p]
            self.invalidations += len(stale)
            self._mirror("invalidations", len(stale))
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = 0
            self.evictions = self.invalidations = 0
            if self.name is not None:
                _metrics.reset_metrics(f"namespace.{self.name}")

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "size": len(self._entries),
                "capacity": self._capacity,
            }

    def __len__(self) -> int:
        return len(self._entries)


def split_path(path: str) -> List[str]:
    """Normalise an absolute path into its components.

    Accepts ``/a/b/c`` (a leading slash is required — the namespace has
    no working directory) and tolerates duplicate/trailing slashes.
    """
    if not isinstance(path, str) or not path.startswith("/"):
        raise ValueError(f"paths are absolute; got {path!r}")
    parts = [p for p in path.split("/") if p]
    for p in parts:
        if p in (".", ".."):
            raise ValueError(f"'.'/'..' are not supported in paths: {path!r}")
    return parts


def join_path(parts: List[str]) -> str:
    return "/" + "/".join(parts)


class Namespace:
    """A directory tree folded into two flat maps.

    ``_inodes`` maps every id to its record; ``_children`` maps each
    directory id to its ``name -> child id`` table.  Path resolution is
    the fold — a walk down ``_children`` — fronted by a
    :class:`LookupCache` whose counters mirror into the registry under
    ``namespace.lookup_cache.*``.
    """

    def __init__(self, cache_capacity: int = 1024,
                 cache_name: Optional[str] = "lookup_cache"):
        self._lock = threading.RLock()
        root = Inode(id=ROOT_ID, kind="dir", name="", parent=ROOT_ID)
        self._inodes: Dict[int, Inode] = {ROOT_ID: root}
        self._children: Dict[int, Dict[str, int]] = {ROOT_ID: {}}
        self._next_id = ROOT_ID + 1
        self._stamp = 0
        self.cache = LookupCache(capacity=cache_capacity, name=cache_name)

    # -- internals -----------------------------------------------------------

    def _tick(self) -> int:
        self._stamp += 1
        return self._stamp

    def _alloc(self, kind: str, name: str, parent: int,
               meta: Optional[Dict[str, object]] = None) -> Inode:
        node = Inode(
            id=self._next_id,
            kind=kind,
            name=name,
            parent=parent,
            created=self._tick(),
            meta=dict(meta or {}),
        )
        node.changed = node.created
        self._next_id += 1
        self._inodes[node.id] = node
        if kind == "dir":
            self._children[node.id] = {}
        self._children[parent][name] = node.id
        self._inodes[parent].changed = self._tick()
        return node

    def _walk_to(self, parts: List[str]) -> Inode:
        """The uncached fold: follow ``_children`` down the components."""
        node = self._inodes[ROOT_ID]
        for i, name in enumerate(parts):
            if not node.is_dir:
                raise NotADirectoryError(join_path(parts[: i]))
            child = self._children[node.id].get(name)
            if child is None:
                raise FileNotFoundError(join_path(parts[: i + 1]))
            node = self._inodes[child]
        return node

    def _resolve_dir(self, parts: List[str], parents: bool) -> Inode:
        """The directory inode at ``parts``, optionally creating the
        chain (``mkdir -p``)."""
        node = self._inodes[ROOT_ID]
        for i, name in enumerate(parts):
            if not node.is_dir:
                raise NotADirectoryError(join_path(parts[: i]))
            child = self._children[node.id].get(name)
            if child is None:
                if not parents:
                    raise FileNotFoundError(join_path(parts[: i + 1]))
                node = self._alloc("dir", name, node.id)
                continue
            node = self._inodes[child]
        if not node.is_dir:
            raise NotADirectoryError(join_path(parts))
        return node

    # -- lookup --------------------------------------------------------------

    def resolve(self, path: str) -> Inode:
        """The inode at ``path`` (cached).  Raises ``FileNotFoundError``
        / ``NotADirectoryError`` like the OS would."""
        parts = split_path(path)
        canonical = join_path(parts)
        fid = self.cache.get(canonical)
        if fid is not None:
            with self._lock:
                node = self._inodes.get(fid)
                if node is not None:
                    return node
            # A stale hit (entry survived a concurrent unlink): fall
            # through to the authoritative walk.
            self.cache.invalidate(canonical)
        with self._lock:
            node = self._walk_to(parts)
            self.cache.put(canonical, node.id)
            return node

    def try_resolve(self, path: str) -> Optional[Inode]:
        try:
            return self.resolve(path)
        except (FileNotFoundError, NotADirectoryError):
            return None

    def exists(self, path: str) -> bool:
        return self.try_resolve(path) is not None

    def inode(self, fid: int) -> Inode:
        """Direct flat-map access by id (KeyError when absent)."""
        with self._lock:
            return self._inodes[fid]

    def path_of(self, fid: int) -> str:
        """Reconstruct the current path of an id (the reverse fold)."""
        with self._lock:
            node = self._inodes[fid]
            parts: List[str] = []
            while node.id != ROOT_ID:
                parts.append(node.name)
                node = self._inodes[node.parent]
            return join_path(list(reversed(parts)))

    # -- mutation ------------------------------------------------------------

    def mkdir(self, path: str, parents: bool = False) -> Inode:
        """Create a directory; with ``parents`` create the whole chain
        (and tolerate the leaf already existing as a directory)."""
        parts = split_path(path)
        if not parts:
            return self._inodes[ROOT_ID]
        with self._lock:
            parent = self._resolve_dir(parts[:-1], parents)
            existing = self._children[parent.id].get(parts[-1])
            if existing is not None:
                node = self._inodes[existing]
                if parents and node.is_dir:
                    return node
                raise FileExistsError(join_path(parts))
            return self._alloc("dir", parts[-1], parent.id)

    def create(self, path: str, parents: bool = False,
               **meta: object) -> Inode:
        """Create a file inode; ``meta`` kwargs land in ``inode.meta``."""
        parts = split_path(path)
        if not parts:
            raise IsADirectoryError("/")
        with self._lock:
            parent = self._resolve_dir(parts[:-1], parents)
            if parts[-1] in self._children[parent.id]:
                raise FileExistsError(join_path(parts))
            return self._alloc("file", parts[-1], parent.id, meta)

    def unlink(self, path: str) -> Inode:
        """Remove a file inode (``IsADirectoryError`` for directories)."""
        parts = split_path(path)
        with self._lock:
            node = self._walk_to(parts)
            if node.is_dir:
                raise IsADirectoryError(join_path(parts))
            del self._children[node.parent][node.name]
            del self._inodes[node.id]
            self._inodes[node.parent].changed = self._tick()
            self.cache.invalidate(join_path(parts))
            return node

    def rmdir(self, path: str) -> Inode:
        """Remove an *empty* directory (``OSError`` when non-empty)."""
        parts = split_path(path)
        if not parts:
            raise OSError("cannot remove the root directory")
        with self._lock:
            node = self._walk_to(parts)
            if not node.is_dir:
                raise NotADirectoryError(join_path(parts))
            if self._children[node.id]:
                raise OSError(f"directory not empty: {join_path(parts)}")
            del self._children[node.parent][node.name]
            del self._children[node.id]
            del self._inodes[node.id]
            self._inodes[node.parent].changed = self._tick()
            self.cache.invalidate(join_path(parts))
            return node

    def rename(self, src: str, dst: str) -> Inode:
        """Re-link ``src`` (file or whole subtree) to ``dst``.

        Pure metadata: the moved inode keeps its id — and with it every
        id-keyed structure downstream (locks, queues, sequence
        counters, backing stores).  Only the lookup cache pays: both
        path prefixes are invalidated.
        """
        sparts = split_path(src)
        dparts = split_path(dst)
        if not sparts:
            raise OSError("cannot rename the root directory")
        if not dparts:
            raise FileExistsError("/")
        with self._lock:
            node = self._walk_to(sparts)
            new_parent = self._resolve_dir(dparts[:-1], parents=False)
            if dparts[-1] in self._children[new_parent.id]:
                raise FileExistsError(join_path(dparts))
            # Moving a directory under itself would orphan the subtree.
            if node.is_dir:
                probe = new_parent
                while probe.id != ROOT_ID:
                    if probe.id == node.id:
                        raise OSError(
                            f"cannot move {src!r} into its own subtree"
                        )
                    probe = self._inodes[probe.parent]
                if new_parent.id == node.id:
                    raise OSError(f"cannot move {src!r} into its own subtree")
            del self._children[node.parent][node.name]
            self._inodes[node.parent].changed = self._tick()
            node.name = dparts[-1]
            node.parent = new_parent.id
            self._children[new_parent.id][node.name] = node.id
            new_parent.changed = self._tick()
            self.cache.invalidate_prefix(join_path(sparts))
            self.cache.invalidate_prefix(join_path(dparts))
            return node

    # -- enumeration ---------------------------------------------------------

    def listdir(self, path: str = "/") -> List[str]:
        parts = split_path(path)
        with self._lock:
            node = self._walk_to(parts)
            if not node.is_dir:
                raise NotADirectoryError(join_path(parts))
            return sorted(self._children[node.id])

    def walk(self) -> Iterator[Tuple[str, Inode]]:
        """Every inode under the root, as ``(path, inode)`` pairs in
        depth-first path order (the root itself is excluded)."""
        with self._lock:
            stack: List[Tuple[str, int]] = [
                ("/" + name, fid)
                for name, fid in sorted(
                    self._children[ROOT_ID].items(), reverse=True
                )
            ]
            while stack:
                path, fid = stack.pop()
                node = self._inodes[fid]
                yield path, node
                if node.is_dir:
                    stack.extend(
                        (path + "/" + name, cid)
                        for name, cid in sorted(
                            self._children[fid].items(), reverse=True
                        )
                    )

    def fold(self, files_only: bool = False) -> Dict[str, int]:
        """The whole tree folded into one flat ``{path: id}`` map — the
        title operation.  ``files_only`` drops directory entries."""
        return {
            path: node.id
            for path, node in self.walk()
            if not (files_only and node.is_dir)
        }

    def stats(self) -> Dict[str, int]:
        """Sizes plus the lookup cache's counters (for ``/stats``)."""
        with self._lock:
            files = sum(1 for n in self._inodes.values() if n.is_file)
            dirs = len(self._inodes) - files
        out = {"files": files, "dirs": dirs}
        out.update(
            {f"lookup_{k}": v for k, v in self.cache.stats().items()}
        )
        return out

    def __len__(self) -> int:
        """Inode count, the root included."""
        with self._lock:
            return len(self._inodes)

    def __contains__(self, path: str) -> bool:
        return self.exists(path)
