"""A sharded multi-file namespace over the Clusterfile deployment.

The paper's mapping functions and redistribution plans manage exactly
one parallel file.  This package lifts the system to *a namespace of
files*, following Yodaiken's reading of the UNIX retrieval architecture
(*Folding a Tree into a Map*, PAPERS.md): the directory tree is nothing
but a human-friendly index over a flat map of stable file ids, so every
structure that matters — locks, queues, sequence stamps, subfile stores
— is keyed by id, and paths are resolved through a cached lookup table
that can be invalidated without touching any file state.

* :mod:`repro.namespace.tree` — :class:`Namespace`: the inode table
  (flat ``id -> Inode`` map plus ``dir id -> {name: child id}``
  children maps), path resolution with an LRU :class:`LookupCache`
  (hit/miss/eviction/invalidation counters mirrored into the metrics
  registry exactly like ``plan_cache``), and the metadata operations —
  ``mkdir`` / ``create`` / ``resolve`` / ``unlink`` / ``rename`` /
  ``fold``.
* :mod:`repro.namespace.cluster` — :class:`ClusterNamespace`: binds a
  :class:`Namespace` to a :class:`~repro.clusterfile.fs.Clusterfile`
  deployment; file inodes carry an id-derived backing name
  (``fid-<id>``) so *rename is pure metadata* — no subfile store is
  ever re-keyed — and delete unlinks both the inode and its stores.

The service layer (:class:`repro.service.FileService`) consumes the
flat map: operations target backing names / file ids, never paths, so
two files never share a lock, a queue, or a sequence counter.
"""

from .cluster import ClusterNamespace
from .tree import Inode, LookupCache, Namespace

__all__ = ["ClusterNamespace", "Inode", "LookupCache", "Namespace"]
