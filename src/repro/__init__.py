"""repro — Mapping Functions and Data Redistribution for Parallel Files.

A complete, self-contained reproduction of Isaila & Tichy, *Mapping
Functions and Data Redistribution for Parallel Files* (IPPS 2002):

* :mod:`repro.core` — the parallel file model: (nested) FALLS and
  PITFALLS data representations, partitioning patterns, the MAP /
  MAP^{-1} mapping functions, CUT-FALLS, INTERSECT-FALLS, the nested
  intersection algorithm (PREPROCESS + INTERSECT-AUX) and intersection
  projections;
* :mod:`repro.distributions` — HPF-style BLOCK / CYCLIC(k)
  distributions of n-dimensional arrays as nested FALLS, MPI derived
  datatypes, irregular partitions, and the nCube bit-permutation
  baseline;
* :mod:`repro.redistribution` — GATHER/SCATTER, redistribution
  schedules and executors (plus the per-byte baselines the paper argues
  against);
* :mod:`repro.simulation` — the simulated 2001-era cluster (Myrinet
  network, IDE disk, buffer cache, discrete-event engine) standing in
  for the paper's testbed;
* :mod:`repro.clusterfile` — the Clusterfile parallel file system case
  study: subfiles, views, and the instrumented write/read paths;
* :mod:`repro.bench` — the harness regenerating the paper's Tables 1
  and 2 and the ablation studies.

Quick start::

    import numpy as np
    from repro import (Falls, Partition, matrix_partition, build_plan,
                       distribute, execute_plan, collect)

    data = np.arange(64 * 64, dtype=np.uint8)
    cols = matrix_partition("c", 64, 64, 4)   # physical: column blocks
    rows = matrix_partition("r", 64, 64, 4)   # logical: row blocks
    plan = build_plan(cols, rows)             # segment-level schedule
    out = execute_plan(plan, distribute(data, cols), data.size)
    assert np.array_equal(collect(out, rows, data.size), data)
"""

from .core import (
    ElementMapper,
    Falls,
    FallsSet,
    LineSegment,
    MappingError,
    Partition,
    PartitionError,
    PeriodicFallsSet,
    cut_falls,
    cut_nested_set,
    falls_from_segment,
    intersect_elements,
    intersect_falls,
    intersect_nested_sets,
    intersect_partitions,
    map_between,
    map_offset,
    project,
    unmap_offset,
)
from .core.algebra import complement, difference, partition_from_elements, same_bytes, union
from .core.matching import MatchingReport, matching_degree
from .core.pitfalls import Pitfalls, cyclic_pitfalls, pitfalls_from_falls
from .distributions import (
    Block,
    BlockCyclic,
    Cyclic,
    Replicated,
    column_blocks,
    matrix_partition,
    multidim_partition,
    row_blocks,
    round_robin,
    square_blocks,
)
from .redistribution import (
    RedistributionPlan,
    Transfer,
    build_plan,
    collect,
    distribute,
    execute_plan,
    gather,
    redistribute,
    scatter,
)

__version__ = "0.1.0"

__all__ = [
    "Block",
    "BlockCyclic",
    "Cyclic",
    "ElementMapper",
    "Falls",
    "FallsSet",
    "LineSegment",
    "MappingError",
    "MatchingReport",
    "Partition",
    "PartitionError",
    "PeriodicFallsSet",
    "Pitfalls",
    "RedistributionPlan",
    "Replicated",
    "Transfer",
    "build_plan",
    "collect",
    "column_blocks",
    "complement",
    "cut_falls",
    "cut_nested_set",
    "cyclic_pitfalls",
    "difference",
    "distribute",
    "execute_plan",
    "falls_from_segment",
    "gather",
    "intersect_elements",
    "intersect_falls",
    "intersect_nested_sets",
    "intersect_partitions",
    "map_between",
    "map_offset",
    "matching_degree",
    "matrix_partition",
    "multidim_partition",
    "partition_from_elements",
    "pitfalls_from_falls",
    "project",
    "redistribute",
    "round_robin",
    "row_blocks",
    "same_bytes",
    "scatter",
    "square_blocks",
    "union",
    "unmap_offset",
]
