"""Extension experiments beyond the paper's two tables.

The paper's benchmark "writes **and reads** a two dimensional matrix"
but only tabulates the write side ("Because the write and read are
reverse symmetrical, we will present only the write operation", §8).
:func:`read_table` produces the symmetric read-side table so the
symmetry claim can be checked quantitatively.

:func:`scaling_table` varies the cluster shape — the experiment the
paper's 16-node cluster would have allowed — fixing the per-process
data volume (weak scaling) to show how the matching penalty behaves as
the all-to-all widens.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import List, Sequence

from ..clusterfile.fs import Clusterfile
from ..simulation.cluster import ClusterConfig
from .workloads import MatrixWorkload

__all__ = ["ReadRow", "ScalingRow", "read_table", "scaling_table"]


@dataclass
class ReadRow:
    size: int
    physical: str
    logical: str
    t_m: float
    t_s: float  # client-side scatter of replies (the gather mirror)
    t_r_bc: float
    t_r_disk: float


def read_table(
    sizes: Sequence[int] = (256, 512, 1024, 2048),
    layouts: Sequence[str] = ("c", "b", "r"),
    repeats: int = 3,
    config: ClusterConfig | None = None,
) -> List[ReadRow]:
    """The read-side mirror of Table 1."""
    import numpy as np

    config = config or ClusterConfig()
    rows: List[ReadRow] = []
    for n in sizes:
        for ph in layouts:
            w = MatrixWorkload(n, ph)
            data = w.data()
            acc: List[ReadRow] = []
            for _ in range(repeats):
                fs = Clusterfile(config)
                fs.create("m", w.physical())
                logical = w.logical()
                for c in range(w.nprocs):
                    fs.set_view("m", c, logical)
                fs.write("m", w.view_accesses(data))
                per = w.bytes_per_process
                bufs, result = fs.read_with_result(
                    "m", [(c, 0, per) for c in range(w.nprocs)], from_disk=True
                )
                for c, buf in enumerate(bufs):
                    if not np.array_equal(
                        buf, data[c * per : (c + 1) * per]
                    ):  # pragma: no cover
                        raise AssertionError("read corruption")
                bds = list(result.per_compute.values())
                acc.append(
                    ReadRow(
                        n,
                        ph,
                        w.logical_layout,
                        mean(b.t_m for b in bds),
                        mean(b.t_g for b in bds),
                        max(b.t_w_bc for b in bds),
                        max(b.t_w_disk for b in bds),
                    )
                )
            rows.append(
                ReadRow(
                    n,
                    ph,
                    w.logical_layout,
                    mean(r.t_m for r in acc),
                    mean(r.t_s for r in acc),
                    mean(r.t_r_bc for r in acc),
                    mean(r.t_r_disk for r in acc),
                )
            )
    return rows


@dataclass
class ScalingRow:
    nprocs: int
    physical: str
    bytes_per_process: int
    messages: int
    t_w_disk: float  # makespan, us
    t_g: float


def scaling_table(
    nprocs_list: Sequence[int] = (2, 4, 8, 16),
    layouts: Sequence[str] = ("c", "r"),
    bytes_per_process: int = 256 * 256,
    repeats: int = 2,
) -> List[ScalingRow]:
    """Weak scaling: per-process volume fixed, node count grows.

    Matrix side scales with sqrt(nprocs) so each process always writes
    ``bytes_per_process``; compute and I/O node counts grow together,
    as in the paper's setup (equal counts).
    """
    import math

    rows: List[ScalingRow] = []
    for p in nprocs_list:
        n = int(math.isqrt(bytes_per_process * p))
        # Round n to a multiple of p for clean block layouts.
        n -= n % p
        for ph in layouts:
            w = MatrixWorkload(n, ph, nprocs=p)
            data = w.data()
            acc = []
            for _ in range(repeats):
                fs = Clusterfile(ClusterConfig(compute_nodes=p, io_nodes=p))
                fs.create("m", w.physical())
                logical = w.logical()
                for c in range(p):
                    fs.set_view("m", c, logical)
                result = fs.write("m", w.view_accesses(data), to_disk=True)
                bds = list(result.per_compute.values())
                acc.append(
                    (
                        result.messages,
                        max(b.t_w_disk for b in bds),
                        mean(b.t_g for b in bds),
                    )
                )
            rows.append(
                ScalingRow(
                    nprocs=p,
                    physical=ph,
                    bytes_per_process=w.bytes_per_process,
                    messages=acc[-1][0],
                    t_w_disk=mean(a[1] for a in acc),
                    t_g=mean(a[2] for a in acc),
                )
            )
    return rows
