"""Benchmark harness: workloads, experiment drivers, paper comparison."""

from .experiments import Table1Row, Table2Row, run_workload, table1, table2
from .reporting import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    format_table1,
    format_table2,
    shape_checks_table1,
    shape_checks_table2,
)
from .workloads import (
    LAYOUT_NAMES,
    PAPER_PHYSICAL_LAYOUTS,
    PAPER_SIZES,
    MatrixWorkload,
    paper_workloads,
)

__all__ = [
    "LAYOUT_NAMES",
    "MatrixWorkload",
    "PAPER_PHYSICAL_LAYOUTS",
    "PAPER_SIZES",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "Table1Row",
    "Table2Row",
    "format_table1",
    "format_table2",
    "paper_workloads",
    "run_workload",
    "shape_checks_table1",
    "shape_checks_table2",
    "table1",
    "table2",
]
