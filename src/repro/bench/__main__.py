"""Command-line entry point: regenerate the paper's tables.

Usage::

    python -m repro.bench table1 [--sizes 256 512 ...] [--repeats N]
    python -m repro.bench table2 [...]
    python -m repro.bench all [...]
    python -m repro.bench checks          # run the shape checks only
"""

from __future__ import annotations

import argparse
import sys

from .experiments import table1, table2
from .reporting import (
    format_table1,
    format_table2,
    shape_checks_table1,
    shape_checks_table2,
)
from .workloads import PAPER_SIZES


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the evaluation tables of Isaila & Tichy "
        "(IPPS 2002) on the simulated cluster.",
    )
    p.add_argument(
        "what",
        choices=["table1", "table2", "all", "checks", "read", "scaling"],
        help="what to run (read/scaling are extension experiments)",
    )
    p.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=list(PAPER_SIZES),
        help="matrix sizes (side length in bytes)",
    )
    p.add_argument(
        "--repeats", type=int, default=3, help="repetitions per cell (paper: 10)"
    )
    p.add_argument(
        "--no-compare", action="store_true", help="omit the paper's columns"
    )
    return p


def main(argv=None) -> int:
    """Entry point; returns 1 when any shape check fails."""
    args = _parser().parse_args(argv)
    compare = not args.no_compare
    failed = False
    if args.what in ("table1", "all", "checks"):
        rows = table1(sizes=args.sizes, repeats=args.repeats)
        if args.what != "checks":
            print(format_table1(rows, compare=compare))
            print()
        for name, ok in shape_checks_table1(rows).items():
            print(f"  [{'ok' if ok else 'FAIL'}] table1: {name}")
            failed |= not ok
        print()
    if args.what in ("table2", "all", "checks"):
        rows = table2(sizes=args.sizes, repeats=args.repeats)
        if args.what != "checks":
            print(format_table2(rows, compare=compare))
            print()
        for name, ok in shape_checks_table2(rows).items():
            print(f"  [{'ok' if ok else 'FAIL'}] table2: {name}")
            failed |= not ok
    if args.what == "read":
        from .extensions import read_table

        rows = read_table(sizes=args.sizes, repeats=args.repeats)
        print("Read-side mirror of Table 1 (us) - extension experiment")
        print(f"{'Size':>5} {'Ph':>3} | {'t_m':>8} {'t_s':>9} "
              f"{'t_r_bc':>9} {'t_r_disk':>9}")
        for r in rows:
            print(
                f"{r.size:>5} {r.physical:>3} | {r.t_m:8.1f} {r.t_s:9.1f} "
                f"{r.t_r_bc:9.0f} {r.t_r_disk:9.0f}"
            )
    if args.what == "scaling":
        from .extensions import scaling_table

        rows = scaling_table(repeats=args.repeats)
        print("Weak scaling of the matching penalty - extension experiment")
        print(f"{'np':>3} {'Ph':>3} | {'B/proc':>8} {'msgs':>6} "
              f"{'t_g':>9} {'t_w_disk':>10}")
        for r in rows:
            print(
                f"{r.nprocs:>3} {r.physical:>3} | {r.bytes_per_process:>8} "
                f"{r.messages:>6} {r.t_g:9.1f} {r.t_w_disk:10.0f}"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
