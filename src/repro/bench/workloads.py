"""Workload definitions mirroring the paper's evaluation (§8.2).

"We wrote a benchmark that writes and reads a two dimensional matrix to
and from a file in Clusterfile.  We repeated the experiment for
different sizes of the matrix: 256x256, 512x512, 1024x1024, 2048x2048
(all in bytes).  For each size, we physically partitioned the file into
four subfiles in three ways: square blocks (b), blocks of columns (c)
and blocks of rows (r).  Each subfile was written to one I/O node.  For
each size and each physical partition, we logically partitioned the
file among four processors in blocks of rows."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.partition import Partition
from ..distributions.multidim import matrix_partition, row_blocks

__all__ = [
    "PAPER_SIZES",
    "PAPER_PHYSICAL_LAYOUTS",
    "LAYOUT_NAMES",
    "MatrixWorkload",
    "paper_workloads",
]

PAPER_SIZES = (256, 512, 1024, 2048)
PAPER_PHYSICAL_LAYOUTS = ("c", "b", "r")
LAYOUT_NAMES = {"c": "column blocks", "b": "square blocks", "r": "row blocks"}


@dataclass(frozen=True)
class MatrixWorkload:
    """One cell of the paper's experiment grid."""

    n: int  # matrix is n x n bytes
    physical_layout: str  # 'c', 'b' or 'r'
    logical_layout: str = "r"  # the paper always uses row blocks
    nprocs: int = 4

    @property
    def total_bytes(self) -> int:
        return self.n * self.n

    @property
    def bytes_per_process(self) -> int:
        return self.total_bytes // self.nprocs

    def physical(self) -> Partition:
        return matrix_partition(self.physical_layout, self.n, self.n, self.nprocs)

    def logical(self) -> Partition:
        if self.logical_layout == "r":
            return row_blocks(self.n, self.n, self.nprocs)
        return matrix_partition(self.logical_layout, self.n, self.n, self.nprocs)

    def data(self, seed: int = 0) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.integers(0, 256, self.total_bytes, dtype=np.uint8)

    def view_accesses(self, data: np.ndarray) -> List[tuple]:
        """Each process writes its whole view in one access — the
        paper's benchmark pattern."""
        per = self.bytes_per_process
        return [
            (c, 0, data[c * per : (c + 1) * per]) for c in range(self.nprocs)
        ]

    @property
    def label(self) -> str:
        return f"{self.n}x{self.n} {self.physical_layout}-{self.logical_layout}"


def paper_workloads(
    sizes=PAPER_SIZES, layouts=PAPER_PHYSICAL_LAYOUTS
) -> List[MatrixWorkload]:
    """The full grid of Table 1 / Table 2 rows."""
    return [MatrixWorkload(n, ph) for n in sizes for ph in layouts]
