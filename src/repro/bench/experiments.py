"""Experiment drivers regenerating the paper's tables.

Each driver runs the §8.2 benchmark — four compute nodes concurrently
writing a row-block-partitioned matrix view into a file with a given
physical layout — on the simulated cluster, repeats it (the paper used
ten repetitions and reports means; repetition count is configurable),
and emits rows shaped like the paper's tables.

Reporting conventions (documented in EXPERIMENTS.md):

* ``t_i``, ``t_m``, ``t_g`` are means over compute nodes of *measured*
  wall time of our implementations;
* ``t_w^bc`` / ``t_w^disk`` are the *makespan* over compute nodes of the
  simulated exchange — the paper observes t_w "is limited by the slowest
  I/O server";
* Table 2's scatter times are means over I/O nodes, with the cache copy
  and disk flush taken from the era device models.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import List, Sequence

from ..clusterfile.fs import Clusterfile
from ..redistribution.plan_cache import clear_plan_cache
from ..simulation.cluster import ClusterConfig
from .workloads import PAPER_PHYSICAL_LAYOUTS, PAPER_SIZES, MatrixWorkload

__all__ = ["Table1Row", "Table2Row", "run_workload", "table1", "table2"]


@dataclass
class Table1Row:
    """One row of Table 1: write-time breakdown at the compute node."""

    size: int
    physical: str
    logical: str
    t_i: float
    t_m: float
    t_g: float
    t_w_bc: float
    t_w_disk: float


@dataclass
class Table2Row:
    """One row of Table 2: scatter time at the I/O node."""

    size: int
    physical: str
    logical: str
    t_sc_bc: float
    t_sc_disk: float


@dataclass
class WorkloadResult:
    table1: Table1Row
    table2: Table2Row
    messages: int
    payload_bytes: int


def run_workload(
    workload: MatrixWorkload,
    config: ClusterConfig | None = None,
    repeats: int = 3,
    verify: bool = True,
) -> WorkloadResult:
    """Run one experiment cell and average the timings over ``repeats``."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    config = config or ClusterConfig()
    data = workload.data()
    t1_acc: List[Table1Row] = []
    t2_acc: List[Table2Row] = []
    messages = payload_bytes = 0
    for rep in range(repeats):
        # Each repetition measures a *cold* t_i, as the paper's tables
        # do; without this the process-wide plan cache would serve every
        # repetition after the first and t_i would collapse to a lookup.
        clear_plan_cache()
        fs = Clusterfile(config)
        fs.create("m", workload.physical())
        logical = workload.logical()
        for c in range(workload.nprocs):
            fs.set_view("m", c, logical)
        result = fs.write("m", workload.view_accesses(data), to_disk=True)
        if verify and rep == 0:
            import numpy as np

            got = fs.linear_contents("m", data.size)
            if not np.array_equal(got, data):  # pragma: no cover
                raise AssertionError(f"data corruption in {workload.label}")
        bds = list(result.per_compute.values())
        t1_acc.append(
            Table1Row(
                size=workload.n,
                physical=workload.physical_layout,
                logical=workload.logical_layout,
                t_i=mean(b.t_i for b in bds),
                t_m=mean(b.t_m for b in bds),
                t_g=mean(b.t_g for b in bds),
                t_w_bc=max(b.t_w_bc for b in bds),
                t_w_disk=max(b.t_w_disk for b in bds),
            )
        )
        ios = list(result.per_io.values())
        t2_acc.append(
            Table2Row(
                size=workload.n,
                physical=workload.physical_layout,
                logical=workload.logical_layout,
                t_sc_bc=mean(s.t_sc_bc for s in ios),
                t_sc_disk=mean(s.t_sc_disk for s in ios),
            )
        )
        messages, payload_bytes = result.messages, result.payload_bytes

    def avg(rows, field):
        return mean(getattr(r, field) for r in rows)

    t1 = Table1Row(
        workload.n,
        workload.physical_layout,
        workload.logical_layout,
        *(avg(t1_acc, f) for f in ("t_i", "t_m", "t_g", "t_w_bc", "t_w_disk")),
    )
    t2 = Table2Row(
        workload.n,
        workload.physical_layout,
        workload.logical_layout,
        avg(t2_acc, "t_sc_bc"),
        avg(t2_acc, "t_sc_disk"),
    )
    return WorkloadResult(t1, t2, messages, payload_bytes)


def table1(
    sizes: Sequence[int] = PAPER_SIZES,
    layouts: Sequence[str] = PAPER_PHYSICAL_LAYOUTS,
    config: ClusterConfig | None = None,
    repeats: int = 3,
) -> List[Table1Row]:
    """Regenerate Table 1 (write-time breakdown at the compute node)."""
    return [
        run_workload(MatrixWorkload(n, ph), config, repeats).table1
        for n in sizes
        for ph in layouts
    ]


def table2(
    sizes: Sequence[int] = PAPER_SIZES,
    layouts: Sequence[str] = PAPER_PHYSICAL_LAYOUTS,
    config: ClusterConfig | None = None,
    repeats: int = 3,
) -> List[Table2Row]:
    """Regenerate Table 2 (scatter time at the I/O node)."""
    return [
        run_workload(MatrixWorkload(n, ph), config, repeats).table2
        for n in sizes
        for ph in layouts
    ]
