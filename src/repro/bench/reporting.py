"""Table formatting and paper-vs-measured comparison.

Holds the paper's published numbers (Tables 1 and 2, microseconds) so
benchmark output can be printed side by side with them, plus the
qualitative *shape checks* EXPERIMENTS.md relies on: which orderings the
reproduction must preserve even though absolute numbers come from a
different substrate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .experiments import Table1Row, Table2Row

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "format_table1",
    "format_table2",
    "shape_checks_table1",
    "shape_checks_table2",
]

#: Paper Table 1 (microseconds): (size, physical) -> (t_i, t_m, t_g,
#: t_w_bc, t_w_disk).  Logical distribution is always row blocks.
PAPER_TABLE1: Dict[Tuple[int, str], Tuple[float, float, float, float, float]] = {
    (256, "c"): (1229, 9, 344, 1205, 4346),
    (256, "b"): (514, 4, 203, 831, 2191),
    (256, "r"): (310, 0, 0, 510, 1455),
    (512, "c"): (1096, 11, 940, 2871, 7614),
    (512, "b"): (506, 6, 568, 2294, 5900),
    (512, "r"): (333, 0, 0, 1425, 4018),
    (1024, "c"): (1136, 18, 2414, 9237, 22309),
    (1024, "b"): (518, 9, 1703, 7104, 19375),
    (1024, "r"): (318, 0, 0, 5340, 15136),
    (2048, "c"): (1222, 22, 6501, 30781, 80793),
    (2048, "b"): (503, 11, 5496, 26184, 71358),
    (2048, "r"): (296, 0, 0, 20333, 56475),
}

#: Paper Table 2 (microseconds): (size, physical) -> (t_sc_bc, t_sc_disk).
PAPER_TABLE2: Dict[Tuple[int, str], Tuple[float, float]] = {
    (256, "c"): (87, 2255),
    (256, "b"): (61, 1278),
    (256, "r"): (45, 918),
    (512, "c"): (292, 3593),
    (512, "b"): (261, 3095),
    (512, "r"): (219, 2717),
    (1024, "c"): (1096, 10602),
    (1024, "b"): (1068, 10622),
    (1024, "r"): (1194, 10951),
    (2048, "c"): (4942, 41684),
    (2048, "b"): (4919, 41178),
    (2048, "r"): (5081, 41179),
}

_T1_COLS = ("t_i", "t_m", "t_g", "t_w_bc", "t_w_disk")
_T2_COLS = ("t_sc_bc", "t_sc_disk")


def format_table1(rows: Iterable[Table1Row], compare: bool = True) -> str:
    """Render Table 1 rows, optionally alongside the paper's values."""
    out = ["Table 1. Write time breakdown at compute node (us)"]
    header = f"{'Size':>5} {'Ph':>3} {'Lo':>3} |"
    for c in _T1_COLS:
        header += f" {c:>9}"
    if compare:
        header += "  |  paper: " + " ".join(f"{c:>8}" for c in _T1_COLS)
    out.append(header)
    out.append("-" * len(header))
    for r in rows:
        line = (
            f"{r.size:>5} {r.physical:>3} {r.logical:>3} |"
            f" {r.t_i:9.0f} {r.t_m:9.1f} {r.t_g:9.1f}"
            f" {r.t_w_bc:9.0f} {r.t_w_disk:9.0f}"
        )
        if compare and (r.size, r.physical) in PAPER_TABLE1:
            p = PAPER_TABLE1[(r.size, r.physical)]
            line += "  |         " + " ".join(f"{v:>8.0f}" for v in p)
        out.append(line)
    return "\n".join(out)


def format_table2(rows: Iterable[Table2Row], compare: bool = True) -> str:
    """Render Table 2 rows, optionally alongside the paper's values."""
    out = ["Table 2. Scatter time at I/O node (us)"]
    header = f"{'Size':>5} {'Ph':>3} {'Lo':>3} |" + "".join(
        f" {c:>10}" for c in _T2_COLS
    )
    if compare:
        header += "  |  paper: " + " ".join(f"{c:>9}" for c in _T2_COLS)
    out.append(header)
    out.append("-" * len(header))
    for r in rows:
        line = (
            f"{r.size:>5} {r.physical:>3} {r.logical:>3} |"
            f" {r.t_sc_bc:10.0f} {r.t_sc_disk:10.0f}"
        )
        if compare and (r.size, r.physical) in PAPER_TABLE2:
            p = PAPER_TABLE2[(r.size, r.physical)]
            line += "  |          " + " ".join(f"{v:>9.0f}" for v in p)
        out.append(line)
    return "\n".join(out)


def _by_key(rows: Iterable) -> Dict[Tuple[int, str], object]:
    return {(r.size, r.physical): r for r in rows}


def shape_checks_table1(rows: List[Table1Row]) -> Dict[str, bool]:
    """The qualitative claims of §8.2 that the reproduction must hold."""
    by = _by_key(rows)
    sizes = sorted({r.size for r in rows})
    checks: Dict[str, bool] = {}
    # t_i ordered c > b > r at every size; roughly size-independent.
    checks["t_i ordering c>b>r"] = all(
        by[(s, "c")].t_i > by[(s, "b")].t_i > by[(s, "r")].t_i for s in sizes
    )
    t_i_c = [by[(s, "c")].t_i for s in sizes]
    checks["t_i roughly constant with size"] = max(t_i_c) < 5 * min(t_i_c)
    # t_m tiny, ~0 for matching layouts.
    checks["t_m near zero for r-r"] = all(
        by[(s, "r")].t_m < max(10.0, 0.1 * max(by[(s, "c")].t_m, 1.0))
        for s in sizes
    )
    # t_g: zero for matching layouts, ordered c > b > r, grows with size.
    checks["t_g zero for r-r"] = all(by[(s, "r")].t_g == 0 for s in sizes)
    checks["t_g ordering c>b"] = all(
        by[(s, "c")].t_g > by[(s, "b")].t_g for s in sizes
    )
    checks["t_g grows with size"] = (
        by[(sizes[-1], "c")].t_g > by[(sizes[0], "c")].t_g
    )
    # t_w: matched layout best at the smallest size; grows with size.
    s0, s1 = sizes[0], sizes[-1]
    checks["t_w_disk best for r-r at small size"] = (
        by[(s0, "r")].t_w_disk
        < min(by[(s0, "c")].t_w_disk, by[(s0, "b")].t_w_disk)
    )
    checks["t_w grows with size"] = (
        by[(s1, "r")].t_w_disk > by[(s0, "r")].t_w_disk
        and by[(s1, "c")].t_w_bc > by[(s0, "c")].t_w_bc
    )
    return checks


def shape_checks_table2(rows: List[Table2Row]) -> Dict[str, bool]:
    """The qualitative claims of §8.2 for the scatter table."""
    by = _by_key(rows)
    sizes = sorted({r.size for r in rows})
    s0, s1 = sizes[0], sizes[-1]
    checks: Dict[str, bool] = {}
    checks["t_sc ordering c>b>r at small size"] = (
        by[(s0, "c")].t_sc_bc > by[(s0, "b")].t_sc_bc > by[(s0, "r")].t_sc_bc
    )
    # "the figures for all three pairs of distributions are close for big
    # messages"
    vals = [by[(s1, ph)].t_sc_disk for ph in ("c", "b", "r")]
    checks["t_sc converges at large size"] = max(vals) < 1.15 * min(vals)
    checks["t_sc grows with size"] = (
        by[(s1, "r")].t_sc_disk > by[(s0, "r")].t_sc_disk
    )
    return checks
