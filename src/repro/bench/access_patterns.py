"""Synthetic access traces from the I/O characterization literature.

The paper grounds its design in workload studies ([12] Nieuwejaar &
Kotz; [1] Crandall et al.; [16] Smirni & Reed): parallel scientific
applications issue *many small requests* in *regular strided patterns*
— exactly what views turn into contiguous accesses.  This module
generates the canonical request shapes those studies report, as
per-process traces of ``(view_offset, length)`` accesses:

* ``sequential``  — each process streams through its view;
* ``simple_strided`` — fixed-size records at a fixed stride (the
  dominant CHARISMA pattern);
* ``nested_strided`` — strided groups of strided records (Galley's
  motivating pattern);
* ``random`` — uniformly placed records (the pathological case).

The trace runner executes a trace against a Clusterfile view and
aggregates the per-phase costs, so the amortisation claim ("a view
operation can be eventually amortized over several accesses", §2) can
be measured against realistic request streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from ..clusterfile.fs import Clusterfile

__all__ = [
    "Access",
    "sequential",
    "simple_strided",
    "nested_strided",
    "random_accesses",
    "TraceResult",
    "run_trace",
]

#: One request: (offset within the view, length in bytes).
Access = Tuple[int, int]


def sequential(view_bytes: int, record: int) -> List[Access]:
    """Stream through the view in ``record``-byte requests."""
    if record < 1:
        raise ValueError("record must be >= 1")
    return [
        (off, min(record, view_bytes - off))
        for off in range(0, view_bytes, record)
    ]


def simple_strided(
    view_bytes: int, record: int, stride: int
) -> List[Access]:
    """Fixed-size records every ``stride`` bytes (CHARISMA's dominant
    pattern)."""
    if not 1 <= record <= stride:
        raise ValueError("need 1 <= record <= stride")
    return [
        (off, min(record, view_bytes - off))
        for off in range(0, view_bytes, stride)
    ]


def nested_strided(
    view_bytes: int,
    record: int,
    inner_stride: int,
    inner_count: int,
    outer_stride: int,
) -> List[Access]:
    """Groups of ``inner_count`` strided records, groups themselves
    strided (Galley's nested-strided interface)."""
    if inner_stride * (inner_count - 1) + record > outer_stride:
        raise ValueError("inner group exceeds the outer stride")
    out: List[Access] = []
    for group in range(0, view_bytes, outer_stride):
        for k in range(inner_count):
            off = group + k * inner_stride
            if off >= view_bytes:
                break
            out.append((off, min(record, view_bytes - off)))
    return out


def random_accesses(
    view_bytes: int, record: int, count: int, seed: int = 0
) -> List[Access]:
    """Uniformly placed non-overlapping-ish records."""
    rng = np.random.default_rng(seed)
    offs = rng.integers(0, max(1, view_bytes - record), count)
    return [(int(o), record) for o in offs]


@dataclass
class TraceResult:
    """Aggregated cost of running one trace through a view."""

    accesses: int
    bytes: int
    t_i_us: float  # one-off view-set cost
    t_m_us: float  # summed over accesses
    t_g_us: float
    t_w_us: float  # summed simulated completion times
    messages: int

    @property
    def amortised_setup_share(self) -> float:
        """Fraction of total mapping-related time that is the one-off
        view set — the quantity the paper says shrinks with use."""
        recurring = self.t_m_us + self.t_g_us
        return self.t_i_us / max(self.t_i_us + recurring, 1e-12)


def run_trace(
    fs: Clusterfile,
    name: str,
    compute_node: int,
    trace: Sequence[Access],
    payload: Callable[[int], np.ndarray] | None = None,
    to_disk: bool = False,
) -> TraceResult:
    """Write every access of a trace through an already-set view."""
    view = fs.view_of(name, compute_node)
    t_m = t_g = t_w = 0.0
    messages = 0
    total = 0
    for off, length in trace:
        data = (
            payload(length)
            if payload is not None
            else np.zeros(length, dtype=np.uint8)
        )
        result = fs.write(name, [(compute_node, off, data)], to_disk=to_disk)
        bd = result.per_compute[compute_node]
        t_m += bd.t_m
        t_g += bd.t_g
        t_w += bd.t_w_disk if to_disk else bd.t_w_bc
        messages += result.messages
        total += length
    return TraceResult(
        accesses=len(trace),
        bytes=total,
        t_i_us=view.set_time_s * 1e6,
        t_m_us=t_m,
        t_g_us=t_g,
        t_w_us=t_w,
        messages=messages,
    )
