"""Retry policy: timeout, capped exponential backoff, retry budget.

The engine drives retries round by round: every message whose attempt
failed (dropped, checksum-rejected) is retransmitted after the sender's
timeout plus a backoff that grows exponentially per round, capped, and
jittered *deterministically* — the jitter draw hashes the fault-plan
seed and the operation id, so a chaos run's simulated timeline is as
reproducible as its fault schedule.

The budget is per message: :attr:`RetryPolicy.max_retries` retransmits
after the initial attempt.  Exhausting it raises
:class:`~repro.faults.errors.RetryBudgetExceeded` — no partial result
escapes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .injector import _unit

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout and backoff parameters for engine-driven retries."""

    #: Sender-side wait before declaring an attempt lost, seconds.
    timeout_s: float = 0.005
    #: Backoff before the first retransmit, seconds.
    base_backoff_s: float = 0.001
    #: Growth factor per retry round.
    backoff_factor: float = 2.0
    #: Backoff ceiling, seconds.
    max_backoff_s: float = 0.050
    #: Retransmits allowed per message after the initial attempt.
    max_retries: int = 5
    #: Jitter amplitude as a fraction of the backoff (0 disables).
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.timeout_s < 0 or self.base_backoff_s < 0:
            raise ValueError("timeout_s and base_backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError("max_backoff_s must be >= base_backoff_s")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_s(self, round_index: int, seed: int = 0, token=()) -> float:
        """Backoff before retry round ``round_index`` (0-based).

        Capped exponential with deterministic jitter: the same seed and
        token always produce the same wait.
        """
        raw = min(
            self.base_backoff_s * self.backoff_factor**round_index,
            self.max_backoff_s,
        )
        if self.jitter:
            spread = 2.0 * _unit(seed, "backoff", round_index, *token) - 1.0
            raw *= 1.0 + self.jitter * spread
        return raw
