"""Replica subfile placement.

A replicated Clusterfile file keeps ``k`` copies of every subfile on
``k`` distinct I/O nodes.  Placement composes the existing subfile→node
MAP (round-robin, ``subfile % io_nodes``, the same function
:meth:`repro.simulation.cluster.Cluster.io_node_for` applies) with a
rotation: replica ``r`` of subfile ``s`` lives on node ``(s + r) %
io_nodes``.  Rotating rather than mirroring pairs spreads each node's
replica load over its successors, so losing one node degrades every
subfile it carried to ``k-1`` live copies instead of concentrating the
loss.

Reads are served by the lowest-index *live* replica (the primary,
``r=0``, unless its node is crashed — then the read **fails over**);
writes go to every live replica and are **degraded** when fewer than
``k`` are live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.partition import Partition

__all__ = ["ReplicatedPartition", "replica_nodes"]


def replica_nodes(subfile: int, k: int, io_nodes: int) -> Tuple[int, ...]:
    """The I/O-node indices holding replicas 0..k-1 of a subfile."""
    if not 1 <= k <= io_nodes:
        raise ValueError(
            f"replication {k} needs 1 <= k <= io_nodes ({io_nodes})"
        )
    primary = subfile % io_nodes
    if k == 1:  # the unreplicated common case, on the engine's hot path
        return (primary,)
    return tuple((primary + r) % io_nodes for r in range(k))


@dataclass(frozen=True)
class ReplicatedPartition:
    """A physical partition plus its replication degree.

    Thin and declarative: the byte layout is entirely the base
    partition's; this type only adds how many copies of each subfile
    exist and where they live.
    """

    base: Partition
    k: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"replication must be >= 1, got {self.k}")

    @property
    def num_subfiles(self) -> int:
        return self.base.num_elements

    def nodes_for(self, subfile: int, io_nodes: int) -> Tuple[int, ...]:
        """Replica placement for one subfile on a cluster of given size."""
        if not 0 <= subfile < self.base.num_elements:
            raise ValueError(f"no subfile {subfile}")
        return replica_nodes(subfile, self.k, io_nodes)
