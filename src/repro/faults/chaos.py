"""Seeded chaos sweeps over the four engine data paths.

One chaos run drives the same workload the correctness tests use —
independent parallel write/read, two-phase collective I/O, physical
re-layout, checkpoint resharding — through a fault-injected, replicated
deployment, and asserts **byte-exactness**: whenever a live replica
exists, every path must hand back bit-identical contents despite
drops, corruption, node crashes, and slow disks.

The fault schedule is a pure function of the :class:`FaultPlan` seed,
so a failing sweep is replayed exactly by re-running the same plan
(the CLI saves it as JSON; CI uploads it as an artifact).  The run
also measures *recovery latency*: the modelled completion time of the
faulty write/read against a fault-free twin of the same replicated
workload, isolating what the retries and failovers cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps.checkpoint import reshard
from ..clusterfile.collective import two_phase_read, two_phase_write
from ..clusterfile.fs import Clusterfile
from ..clusterfile.relayout import relayout
from ..core.falls import Falls
from ..core.partition import Partition
from ..obs import metrics as obs_metrics
from ..redistribution.executor import collect, distribute
from ..simulation.cluster import ClusterConfig
from .injector import FaultInjector
from .plan import FaultPlan, FaultRule
from .retry import RetryPolicy

__all__ = ["default_plan", "run_chaos", "run_sweep"]


def default_plan(
    seed: int = 0,
    drop: float = 0.05,
    corrupt: float = 0.05,
    delay_s: float = 0.0,
    crash_node: Optional[int] = None,
    crash_after: int = 0,
    slow_node: Optional[int] = None,
    slow_factor: float = 1.0,
) -> FaultPlan:
    """The standard chaos schedule: unscoped drop/corrupt/delay rules
    plus optional single-node crash and slow-disk rules."""
    rules: List[FaultRule] = []
    if drop:
        rules.append(FaultRule(kind="drop", rate=drop))
    if corrupt:
        rules.append(FaultRule(kind="corrupt", rate=corrupt))
    if delay_s:
        rules.append(FaultRule(kind="delay", rate=1.0, delay_s=delay_s))
    if crash_node is not None:
        rules.append(
            FaultRule(kind="crash", io_node=crash_node, after_ops=crash_after)
        )
    if slow_node is not None and slow_factor > 1.0:
        rules.append(
            FaultRule(kind="slow_disk", io_node=slow_node, factor=slow_factor)
        )
    return FaultPlan(seed=seed, rules=tuple(rules))


def _block_partition(elements: int, block: int) -> Partition:
    total = elements * block
    return Partition(
        [Falls(e * block, (e + 1) * block - 1, total, 1) for e in range(elements)]
    )


def _cyclic_partition(elements: int, chunk: int) -> Partition:
    period = elements * chunk
    return Partition(
        [
            Falls(e * chunk, (e + 1) * chunk - 1, period, 1)
            for e in range(elements)
        ]
    )


def _workload(
    seed: int, n_bytes: int, nprocs: int
) -> Tuple[Partition, Partition, Dict[int, np.ndarray], int]:
    """A deterministic cyclic-over-block workload: per-node data, the
    shared logical (cyclic) partition and the physical (block) one."""
    chunk = 16
    period = nprocs * chunk
    n_bytes = max(period, (n_bytes // period) * period)
    periods = n_bytes // period
    logical = _cyclic_partition(nprocs, chunk)
    physical = _block_partition(nprocs, n_bytes // nprocs)
    rng = np.random.default_rng(seed)
    data = {
        node: rng.integers(0, 256, periods * chunk, dtype=np.uint8)
        for node in range(nprocs)
    }
    return logical, physical, data, n_bytes


def _t_w_disk(result) -> float:
    return max(
        (bd.t_w_disk for bd in result.per_compute.values()), default=0.0
    )


def _path_write_read(
    plan: Optional[FaultPlan],
    n_bytes: int,
    nprocs: int,
    replication: int,
    policy: RetryPolicy,
    mode: str = "thread",
) -> Dict[str, object]:
    """Parallel write + read; returns ok/retry/failover/latency facts."""
    logical, physical, data, _ = _workload(
        plan.seed if plan else 0, n_bytes, nprocs
    )
    fs = Clusterfile(
        ClusterConfig(),
        fault_injector=FaultInjector(plan) if plan is not None else None,
        retry_policy=policy,
        workers_mode=mode,
    )
    try:
        fs.create("chaos", physical, replication=replication)
        for node in range(nprocs):
            fs.set_view("chaos", node, logical, element=node)
        wres = fs.write(
            "chaos",
            [(node, 0, data[node]) for node in range(nprocs)],
            to_disk=True,
        )
        bufs, rres = fs.read_with_result(
            "chaos",
            [(node, 0, data[node].size) for node in range(nprocs)],
            from_disk=True,
        )
        ok = all(
            np.array_equal(bufs[node], data[node]) for node in range(nprocs)
        )
        return {
            "ok": bool(ok),
            "retries": wres.retries + rres.retries,
            "failed_over": rres.failed_over,
            "degraded": wres.degraded,
            "t_w_disk_us": _t_w_disk(wres) + _t_w_disk(rres),
        }
    finally:
        if mode == "process":
            fs.close()


def _path_collective(
    plan: FaultPlan,
    n_bytes: int,
    nprocs: int,
    replication: int,
    policy: RetryPolicy,
    mode: str = "thread",
) -> Dict[str, object]:
    """Two-phase collective write + read, byte-compared to the source."""
    logical, physical, data, _ = _workload(plan.seed, n_bytes, nprocs)
    fs = Clusterfile(
        ClusterConfig(),
        fault_injector=FaultInjector(plan),
        retry_policy=policy,
        workers_mode=mode,
    )
    try:
        fs.create("chaos", physical, replication=replication)
        for node in range(nprocs):
            fs.set_view("chaos", node, logical, element=node)
        accesses = [(node, 0, data[node]) for node in range(nprocs)]
        cw = two_phase_write(fs, "chaos", accesses, to_disk=True)
        bufs, cr = two_phase_read(
            fs,
            "chaos",
            [(node, 0, data[node].size) for node in range(nprocs)],
            from_disk=True,
        )
        ok = all(
            np.array_equal(bufs[i], data[node])
            for i, node in enumerate(range(nprocs))
        )
        return {
            "ok": bool(ok),
            "retries": cw.write.retries + cr.write.retries,
            "failed_over": cr.write.failed_over,
            "degraded": cw.write.degraded,
        }
    finally:
        if mode == "process":
            fs.close()


def _path_relayout(
    plan: FaultPlan,
    n_bytes: int,
    nprocs: int,
    replication: int,
    policy: RetryPolicy,
    mode: str = "thread",
) -> Dict[str, object]:
    """Write, physically re-lay out, read back through fresh views."""
    logical, physical, data, total = _workload(plan.seed, n_bytes, nprocs)
    fs = Clusterfile(
        ClusterConfig(),
        fault_injector=FaultInjector(plan),
        retry_policy=policy,
        workers_mode=mode,
    )
    try:
        fs.create("chaos", physical, replication=replication)
        for node in range(nprocs):
            fs.set_view("chaos", node, logical, element=node)
        fs.write(
            "chaos",
            [(node, 0, data[node]) for node in range(nprocs)],
            to_disk=True,
        )
        new_elements = max(2, nprocs // 2)
        rl = relayout(
            fs, "chaos", _block_partition(new_elements, total // new_elements)
        )
        for node in range(nprocs):
            fs.set_view("chaos", node, logical, element=node)
        bufs, rres = fs.read_with_result(
            "chaos",
            [(node, 0, data[node].size) for node in range(nprocs)],
            from_disk=True,
        )
        ok = all(
            np.array_equal(bufs[node], data[node]) for node in range(nprocs)
        )
        return {
            "ok": bool(ok),
            "retries": rl.retries + rres.retries,
            "failed_over": rl.failed_over + rres.failed_over,
            "degraded": False,
        }
    finally:
        if mode == "process":
            fs.close()


def _path_reshard(
    plan: FaultPlan, n_bytes: int, nprocs: int, policy: RetryPolicy
) -> Dict[str, object]:
    """Memory-memory reshard between decompositions under faults."""
    logical, _physical, _data, total = _workload(plan.seed, n_bytes, nprocs)
    rng = np.random.default_rng(plan.seed + 1)
    linear = rng.integers(0, 256, total, dtype=np.uint8)
    pieces = distribute(linear, logical)
    new_parts = _block_partition(max(2, nprocs // 2), total // max(2, nprocs // 2))
    injector = FaultInjector(plan)
    before = obs_metrics.snapshot("faults.retry").get("faults.retry.messages", 0)
    out = reshard(
        pieces, logical, new_parts, total, injector=injector, retry_policy=policy
    )
    after = obs_metrics.snapshot("faults.retry").get("faults.retry.messages", 0)
    back = collect(out, new_parts, total)
    return {
        "ok": bool(np.array_equal(back, linear)),
        "retries": int(after - before),
        "failed_over": 0,
        "degraded": False,
    }


def run_chaos(
    plan: FaultPlan,
    n_bytes: int = 4096,
    nprocs: int = 4,
    replication: int = 2,
    retry_policy: Optional[RetryPolicy] = None,
    mode: str = "thread",
) -> Tuple[Dict[str, object], bool]:
    """One chaos run: all four data paths under one fault plan.

    Returns ``(report, all_ok)``.  The report carries, per path, the
    byte-exactness verdict and the recovery facts (retries, failovers,
    degradation), plus the modelled recovery-latency overhead of the
    faulty write/read against its fault-free twin (same replication, no
    injector — isolating what the faults cost, not what replication
    costs).

    ``mode`` selects the deployments' execution mode (``"thread"`` or
    ``"process"``); byte-exactness must hold identically in both.
    Fault-injected operations always execute their robust parent-side
    paths, so process mode mainly exercises shared-memory subfile
    stores plus the fault-free twin's multiprocess fan-out.
    """
    policy = retry_policy or RetryPolicy()
    paths: Dict[str, Dict[str, object]] = {}
    paths["write_read"] = _path_write_read(
        plan, n_bytes, nprocs, replication, policy, mode=mode
    )
    clean = _path_write_read(None, n_bytes, nprocs, replication, policy, mode=mode)
    faulty_t = paths["write_read"]["t_w_disk_us"]
    clean_t = clean["t_w_disk_us"]
    recovery_overhead = (faulty_t / clean_t - 1.0) if clean_t else 0.0
    paths["collective"] = _path_collective(
        plan, n_bytes, nprocs, replication, policy, mode=mode
    )
    paths["relayout"] = _path_relayout(
        plan, n_bytes, nprocs, replication, policy, mode=mode
    )
    paths["reshard"] = _path_reshard(plan, n_bytes, nprocs, policy)
    all_ok = all(p["ok"] for p in paths.values())
    report: Dict[str, object] = {
        "seed": plan.seed,
        "plan": plan.to_json(),
        "n_bytes": n_bytes,
        "nprocs": nprocs,
        "replication": replication,
        "paths": paths,
        "recovery_latency_overhead": recovery_overhead,
        "faults": obs_metrics.snapshot("faults"),
        "ok": all_ok,
    }
    return report, all_ok


def run_sweep(
    seeds: Sequence[int],
    n_bytes: int = 4096,
    nprocs: int = 4,
    replication: int = 2,
    drop: float = 0.05,
    corrupt: float = 0.05,
    delay_s: float = 0.0,
    crash_node: Optional[int] = None,
    crash_after: int = 0,
    slow_node: Optional[int] = None,
    slow_factor: float = 1.0,
    retry_policy: Optional[RetryPolicy] = None,
    mode: str = "thread",
) -> Tuple[List[Dict[str, object]], bool]:
    """A multi-seed chaos sweep; returns per-seed reports + verdict."""
    reports = []
    all_ok = True
    for seed in seeds:
        plan = default_plan(
            seed=seed,
            drop=drop,
            corrupt=corrupt,
            delay_s=delay_s,
            crash_node=crash_node,
            crash_after=crash_after,
            slow_node=slow_node,
            slow_factor=slow_factor,
        )
        report, ok = run_chaos(
            plan,
            n_bytes=n_bytes,
            nprocs=nprocs,
            replication=replication,
            retry_policy=retry_policy,
            mode=mode,
        )
        reports.append(report)
        all_ok = all_ok and ok
    return reports, all_ok
