"""Fault plans: declarative, seed-driven failure schedules.

A :class:`FaultPlan` is pure data — a seed plus a tuple of
:class:`FaultRule` — and is the *entire* source of nondeterminism in a
chaos run: the injector derives every decision (does this message
drop? where does the corrupt bit land? how long is the jitter?) from a
cryptographic hash of ``(seed, rule index, operation id, message
identity, attempt)``.  The same plan therefore reproduces the same
fault schedule on any machine, in any process, in any test order —
which is what lets CI upload a failing plan as an artifact and a
developer replay it locally byte for byte.

Rule kinds and their fields:

=============  ==============================================================
``drop``       message lost in flight with probability ``rate``
``delay``      message delayed by ``delay_s`` with probability ``rate``
``corrupt``    payload corrupted in flight with probability ``rate``
``crash``      I/O node ``io_node`` is down for operations ``>= after_ops``
``slow_disk``  I/O node ``io_node``'s disk service times scaled by ``factor``
=============  ==============================================================

``op`` / ``compute`` / ``subfile`` optionally scope a message rule to
one operation kind (``write``/``read``/``shuffle``/``relayout``), one
sender, or one subfile.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional, Tuple

__all__ = ["FaultRule", "FaultPlan", "MESSAGE_KINDS", "NODE_KINDS"]

#: Rule kinds decided per message attempt.
MESSAGE_KINDS = ("drop", "delay", "corrupt")
#: Rule kinds that describe static I/O-node state.
NODE_KINDS = ("crash", "slow_disk")


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault source; see the module docstring table."""

    kind: str
    #: Probability per message attempt (message kinds only).
    rate: float = 1.0
    #: Scope filters for message kinds; ``None`` matches everything.
    op: Optional[str] = None
    compute: Optional[int] = None
    subfile: Optional[int] = None
    #: Target for node kinds.
    io_node: Optional[int] = None
    #: Added latency for ``delay`` rules, seconds.
    delay_s: float = 0.0
    #: Disk service-time multiplier for ``slow_disk`` rules.
    factor: float = 1.0
    #: First engine operation index for which a ``crash`` rule holds.
    after_ops: int = 0

    def __post_init__(self) -> None:
        if self.kind not in MESSAGE_KINDS + NODE_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.kind in NODE_KINDS and self.io_node is None:
            raise ValueError(f"{self.kind} rule needs io_node")
        if self.kind == "delay" and self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.kind == "slow_disk" and self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.after_ops < 0:
            raise ValueError(f"after_ops must be >= 0, got {self.after_ops}")


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the rules it drives.  Immutable, JSON round-trippable."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    # -- queries -------------------------------------------------------------

    def crashed_nodes(self, op_id: int) -> frozenset:
        """I/O-node indices down for operation ``op_id``."""
        return frozenset(
            r.io_node
            for r in self.rules
            if r.kind == "crash" and op_id >= r.after_ops
        )

    def disk_factor(self, io_node: int) -> float:
        """Combined slow-disk multiplier for one node (1.0 = healthy)."""
        factor = 1.0
        for r in self.rules:
            if r.kind == "slow_disk" and r.io_node == io_node:
                factor *= r.factor
        return factor

    # -- serialisation -------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "rules": [asdict(r) for r in self.rules]},
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        raw = json.loads(text)
        return cls(
            seed=int(raw["seed"]),
            rules=tuple(FaultRule(**r) for r in raw["rules"]),
        )
