"""The fault injector: deterministic fault decisions from a plan.

The injector is consulted by the I/O engine on every message attempt
and answers three questions:

* **message fate** — delivered intact, dropped, or corrupted (plus any
  injected delay);
* **node state** — is this I/O node crashed for the current operation,
  and how slow is its disk;
* **how exactly** to corrupt a payload (always a *copy* — the sender's
  buffer is never touched, which is what makes retransmission
  idempotent).

Every answer is a pure function of ``(plan.seed, rule index, operation
id, message identity, attempt)`` through BLAKE2b, so a fault schedule
is reproducible across processes and machines; there is no hidden RNG
state.  Injected faults are counted in the process-wide metrics
registry under ``faults.injected.*``.
"""

from __future__ import annotations

import hashlib
import threading
import zlib

import numpy as np

from ..obs import metrics as obs_metrics
from .plan import MESSAGE_KINDS, FaultPlan

__all__ = ["checksum", "FaultInjector"]


def checksum(payload) -> int:
    """CRC32 of a contiguous uint8 buffer (the wire checksum)."""
    return zlib.crc32(memoryview(np.ascontiguousarray(payload)))


def _unit(seed: int, *token) -> float:
    """A deterministic uniform draw in [0, 1) from a hashed token."""
    digest = hashlib.blake2b(
        repr((seed,) + token).encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64


class FaultInjector:
    """Evaluates a :class:`~repro.faults.plan.FaultPlan` per message.

    The only mutable state is the operation counter: each engine
    operation calls :meth:`begin_op` once and threads the returned id
    through its fate queries, so decisions depend on *when* in the
    run an operation happens (crash rules key off it) but never on
    wall-clock time.  Operations may *interleave* (the service layer
    runs many concurrently): id assignment is lock-guarded, and once an
    operation holds its id every fate it draws is a pure function of
    that id — interleaved operations each replay their own schedule
    deterministically.
    """

    def __init__(self, plan: FaultPlan | None = None):
        self.plan = plan or FaultPlan()
        self._ops = 0
        self._op_lock = threading.Lock()
        # The plan is frozen, so its derived node state is memoised:
        # these queries run once per message per replica on the engine's
        # hot loop and must not re-scan the rule list every time.  The
        # crash memo is keyed by op id (not a single slot) so
        # interleaved operations never evict each other's entry.
        self._crash_cache: dict = {}
        self._disk_factors: dict = {}
        self._message_rules = tuple(
            (i, r) for i, r in enumerate(self.plan.rules)
            if r.kind in MESSAGE_KINDS
        )

    # -- operation lifecycle -------------------------------------------------

    def begin_op(self, op: str) -> int:
        """Register the start of one engine operation; returns its id."""
        with self._op_lock:
            op_id = self._ops
            self._ops += 1
        return op_id

    @property
    def ops_started(self) -> int:
        return self._ops

    # -- node state ----------------------------------------------------------

    def crashed_nodes(self, op_id: int):
        """The set of I/O nodes down for one op (memoised per op)."""
        nodes = self._crash_cache.get(op_id)
        if nodes is None:
            # Pure function of the frozen plan + op_id: a racing double
            # compute stores the same value, so no lock is needed.
            nodes = self._crash_cache[op_id] = self.plan.crashed_nodes(op_id)
        return nodes

    def node_crashed(self, io_node: int, op_id: int | None = None) -> bool:
        """Whether an I/O node is down for the given (or latest) op."""
        if op_id is None:
            op_id = max(self._ops - 1, 0)
        return io_node in self.crashed_nodes(op_id)

    def disk_factor(self, io_node: int) -> float:
        """Slow-disk multiplier for one node's disk service times."""
        factor = self._disk_factors.get(io_node)
        if factor is None:
            factor = self._disk_factors[io_node] = self.plan.disk_factor(
                io_node
            )
        return factor

    # -- message fate --------------------------------------------------------

    def message_fate(
        self, op_id: int, op: str, compute: int, subfile: int, attempt: int
    ) -> tuple:
        """Decide one message attempt's fate.

        Returns ``(fate, delay_s)`` with ``fate`` one of ``"ok"``,
        ``"drop"``, ``"corrupt"``.  Delay rules are additive and
        independent of the drop/corrupt outcome (a message can be both
        delayed and corrupted).  When several drop/corrupt rules fire
        for one attempt the first in plan order wins.
        """
        if not self._message_rules:  # armed-but-idle: nothing to draw
            return "ok", 0.0
        fate = "ok"
        delay_s = 0.0
        for index, rule in self._message_rules:
            if rule.op is not None and rule.op != op:
                continue
            if rule.compute is not None and rule.compute != compute:
                continue
            if rule.subfile is not None and rule.subfile != subfile:
                continue
            draw = _unit(
                self.plan.seed, index, op_id, op, compute, subfile, attempt
            )
            if draw >= rule.rate:
                continue
            obs_metrics.inc(f"faults.injected.{rule.kind}")
            if rule.kind == "delay":
                delay_s += rule.delay_s
            elif fate == "ok":
                fate = rule.kind
        return fate, delay_s

    def corrupt_payload(self, payload: np.ndarray, *token) -> np.ndarray:
        """A corrupted *copy* of a payload (one byte flipped).

        The flip position is derived from the token, so the same seed
        corrupts the same byte; the original buffer is never modified —
        retransmission re-reads intact data.
        """
        out = np.array(payload, dtype=np.uint8, copy=True)
        if out.size:
            pos = int(_unit(self.plan.seed, "corrupt-pos", *token) * out.size)
            out[pos % out.size] ^= 0xFF
        return out
