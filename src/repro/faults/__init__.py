"""Fault injection, retry/recovery, and replica failover.

The unified I/O engine (:mod:`repro.clusterfile.engine`) is the single
seam every data path crosses — parallel write/read, two-phase
collective I/O, physical re-layout, checkpoint resharding — so
cross-cutting failure handling lives there, parameterised by this
package:

* :class:`FaultPlan` / :class:`FaultRule` — a declarative, seed-driven
  schedule of message drops, delays, payload corruption, I/O-node
  crashes, and slow disks (JSON round-trippable, so CI can save a
  failing plan and a developer can replay it);
* :class:`FaultInjector` — evaluates a plan deterministically per
  message attempt (BLAKE2b of seed + message identity; no RNG state);
* :func:`checksum` — CRC32 payload checksums, verified *before* any
  scatter (stamped lazily: the injector is the simulation's only
  corruption source, so never-corrupted messages skip the hash);
* :class:`RetryPolicy` — timeout + capped exponential backoff with
  deterministic jitter and a per-message retry budget;
* :class:`ReplicatedPartition` / :func:`replica_nodes` — k-way subfile
  replication so reads fail over and writes degrade gracefully when a
  node is down.

Everything is off by default: a ``Clusterfile`` without an injector and
with replication 1 runs the exact pre-existing fault-free code path.
"""

from .errors import (
    ChecksumError,
    FaultError,
    NoLiveReplica,
    RetryBudgetExceeded,
)
from .injector import FaultInjector, checksum
from .plan import FaultPlan, FaultRule
from .replica import ReplicatedPartition, replica_nodes
from .retry import RetryPolicy

__all__ = [
    "ChecksumError",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "NoLiveReplica",
    "ReplicatedPartition",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "checksum",
    "replica_nodes",
]
