"""Failure-handling exception hierarchy.

Every error the robustness layer can surface derives from
:class:`FaultError`, so callers that want "any injected-fault outcome"
catch one type.  The distinction that matters operationally:

* :class:`ChecksumError` — a payload arrived but its CRC32 does not
  match; the receiver must *not* apply it (raised before any store or
  user buffer is touched, so retries are idempotent);
* :class:`RetryBudgetExceeded` — the retry policy gave up; the
  operation made no partial progress visible to the caller;
* :class:`NoLiveReplica` — every I/O node holding a replica of the
  required subfile is crashed; with replication k=1 this is any crash
  of the owning node.
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "ChecksumError",
    "RetryBudgetExceeded",
    "NoLiveReplica",
]


class FaultError(RuntimeError):
    """Base class for failures surfaced by the fault-handling layer."""


class ChecksumError(FaultError):
    """A payload's CRC32 does not match the checksum it was sent with."""


class RetryBudgetExceeded(FaultError):
    """The retry policy's attempt budget ran out before success."""


class NoLiveReplica(FaultError):
    """No live I/O node holds a replica of the required subfile."""
