"""Disk cost model (IDE drive, circa 2001).

The paper's I/O nodes used single IDE disks.  We model a disk with the
classic decomposition — positioning time (seek + rotational latency)
plus media transfer — and a disk head that remembers its position, so
*sequential* writes pay no positioning cost while *fragmented* writes
pay it per discontiguous run.  That head-position memory is precisely
what makes the paper's poorly matched layouts slow at the disk (§1:
"poor spatial locality of data on the disks of the I/O nodes translates
into disk access other than sequential").

Default constants describe a 5400-rpm IDE drive of the era:

* average seek 9 ms, with short seeks cheaper (we scale by distance),
* rotational latency 5.6 ms average (half a revolution at 5400 rpm),
* 25 MB/s sustained media rate,
* 0.2 ms per-request controller/driver overhead.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Tuple

__all__ = ["DiskModel", "DiskHead", "write_time_for_segments"]

MB = 1_000_000


@dataclass(frozen=True)
class DiskModel:
    """Seek/rotation/transfer cost constants (era IDE defaults; see
    docs/MODEL.md for the calibration)."""

    avg_seek_s: float = 9e-3
    rotational_latency_s: float = 5.6e-3
    transfer_Bps: float = 25 * MB
    per_request_s: float = 0.2e-3
    #: Span (bytes) over which a seek reaches its average cost; shorter
    #: hops cost proportionally less, with a floor of ``min_seek_s``.
    full_seek_span: int = 512 * MB
    min_seek_s: float = 1.0e-3
    #: Forward gaps up to this size stream under the head (track-buffer
    #: skip-ahead) at media rate instead of paying seek + rotation.
    short_gap_window: int = 64 * 1024

    def seek_time(self, distance: int) -> float:
        """Arm movement time for a byte-distance hop (square-root law)."""
        if distance == 0:
            return 0.0
        frac = min(1.0, abs(distance) / self.full_seek_span)
        # Square-root law: short seeks dominated by arm settle time.
        return max(self.min_seek_s, self.avg_seek_s * frac**0.5)

    def positioning_time(self, distance: int) -> float:
        """Seek + rotational latency, with track-buffer skip-ahead for
        short forward gaps."""
        if distance == 0:
            return 0.0
        if 0 < distance <= self.short_gap_window:
            # The head simply passes over the gap at media speed.
            return distance / self.transfer_Bps
        return self.seek_time(distance) + self.rotational_latency_s

    def transfer_time(self, nbytes: int) -> float:
        """Media transfer time at the sustained rate."""
        return nbytes / self.transfer_Bps


class DiskHead:
    """A disk with head-position state and accumulated statistics.

    Head position and counters are updated under a lock: concurrent
    operations (the service layer runs many at once) interleave their
    accesses on one head like concurrent processes on a real disk —
    the *costs* depend on the interleaving, the state never corrupts.
    """

    def __init__(self, model: DiskModel | None = None) -> None:
        self.model = model or DiskModel()
        self.position = 0
        self.requests = 0
        self.sequential_requests = 0
        self.bytes_written = 0
        self._lock = threading.Lock()

    def access_time(self, offset: int, nbytes: int) -> float:
        """Time to write (or read) ``nbytes`` at ``offset``, advancing
        the head."""
        if nbytes < 0 or offset < 0:
            raise ValueError("need offset >= 0 and nbytes >= 0")
        m = self.model
        with self._lock:
            distance = offset - self.position
            if distance == 0:
                self.sequential_requests += 1
            self.position = offset + nbytes
            self.requests += 1
            self.bytes_written += nbytes
        return m.per_request_s + m.positioning_time(distance) + m.transfer_time(nbytes)


def write_time_for_segments(
    head: DiskHead, segments: Iterable[Tuple[int, int]]
) -> float:
    """Total time to write a list of ``(offset, nbytes)`` runs in order.

    Adjacent runs coalesce naturally through the head position: a run
    starting where the previous one ended pays only transfer time.
    """
    return sum(head.access_time(off, ln) for off, ln in segments)
