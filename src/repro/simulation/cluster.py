"""The simulated cluster: nodes, devices, and configuration.

Stands in for the paper's testbed — "a cluster of 16 Pentium III
800 MHz ... interconnected by Myrinet.  Each machine is equipped with
IDE disks ... Eight nodes were used: four compute nodes and four I/O
nodes" (§8.2).  Compute nodes run the application and the view-side
mapping code; each I/O node owns one subfile on its own disk behind a
buffer cache, with a FIFO CPU and a FIFO disk (requests from different
compute nodes queue — the contention the paper lists as inefficiency
source number three).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .cache import BufferCache, MemoryModel
from .disk import DiskHead, DiskModel
from .events import EventQueue, Resource
from .network import Network, NetworkModel

__all__ = ["ClusterConfig", "ComputeNode", "IONode", "Cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster shape and device models (defaults mirror the paper)."""

    compute_nodes: int = 4
    io_nodes: int = 4
    network: NetworkModel = field(default_factory=NetworkModel)
    disk: DiskModel = field(default_factory=DiskModel)
    memory: MemoryModel = field(default_factory=MemoryModel)
    #: Control-message size for (l_S, r_S) request headers and acks,
    #: bytes.  Every request path — independent writes/reads, two-phase
    #: collectives, relayout — prices headers from here.
    header_bytes: int = 16
    #: The paper notes: "We didn't optimize the contiguous write case to
    #: write directly from the network card to buffer cache.  Therefore,
    #: we perform an additional copy."  Keeping the extra copy (False)
    #: reproduces their convergence of all three layouts at large sizes;
    #: setting True models the optimisation they forgo.
    contiguous_write_optimized: bool = False

    def __post_init__(self) -> None:
        if self.compute_nodes < 1 or self.io_nodes < 1:
            raise ValueError("need at least one compute node and one I/O node")
        if self.header_bytes < 0:
            raise ValueError(f"header_bytes must be >= 0, got {self.header_bytes}")


class ComputeNode:
    """An application host: issues view I/O."""

    def __init__(self, index: int):
        self.index = index
        self.name = f"compute{index}"


class IONode:
    """An I/O server host: one subfile store, one disk, one buffer cache.

    ``disk_model`` overrides the cluster-wide disk model for this node —
    heterogeneous clusters (one aging drive) are how the paper's
    observation that "t_w is limited by the slowest I/O server" is
    tested directly.
    """

    def __init__(
        self,
        index: int,
        config: ClusterConfig,
        disk_model: DiskModel | None = None,
    ):
        self.index = index
        self.name = f"io{index}"
        self.cache = BufferCache(config.memory)
        self.disk = DiskHead(disk_model or config.disk)
        self.cpu = Resource(f"{self.name}.cpu")
        self.disk_queue = Resource(f"{self.name}.disk")


class Cluster:
    """Simulation container: nodes plus a shared network and event queue.

    A fresh :class:`EventQueue` is created per operation via
    :meth:`new_operation` so operation timings are independent, while
    device state (disk head position, cache dirtiness, traffic stats)
    persists across operations like on a real cluster.
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        disk_models: List[DiskModel] | None = None,
    ):
        self.config = config or ClusterConfig()
        if disk_models is not None and len(disk_models) != self.config.io_nodes:
            raise ValueError(
                f"need one disk model per I/O node "
                f"({self.config.io_nodes}), got {len(disk_models)}"
            )
        self.network = Network(self.config.network)
        self.compute: List[ComputeNode] = [
            ComputeNode(i) for i in range(self.config.compute_nodes)
        ]
        self.io: List[IONode] = [
            IONode(i, self.config, disk_models[i] if disk_models else None)
            for i in range(self.config.io_nodes)
        ]

    def new_operation(self) -> EventQueue:
        """Start a fresh operation timeline.

        The returned queue *is* the operation context: it owns the
        resource schedule clocks (every timeline starts at 0 with all
        resources free), so concurrent operations on separate queues
        are fully re-entrant.  Physical device state — disk head
        positions, cache dirtiness, traffic statistics — persists
        across operations, like on a real cluster.
        """
        return EventQueue()

    def io_node_for(self, subfile: int) -> IONode:
        """Subfiles are assigned to I/O nodes round-robin, one subfile per
        node in the paper's configuration."""
        return self.io[subfile % len(self.io)]
