"""Simulated cluster substrate: events, network, disk, cache, metrics."""

from .cache import BufferCache, MemoryModel
from .cluster import Cluster, ClusterConfig, ComputeNode, IONode
from .disk import DiskHead, DiskModel, write_time_for_segments
from .events import EventQueue, Resource
from .metrics import ScatterBreakdown, Stopwatch, WriteBreakdown, mean_breakdown
from .network import Network, NetworkModel, NetworkStats

__all__ = [
    "BufferCache",
    "Cluster",
    "ClusterConfig",
    "ComputeNode",
    "DiskHead",
    "DiskModel",
    "EventQueue",
    "IONode",
    "MemoryModel",
    "Network",
    "NetworkModel",
    "NetworkStats",
    "Resource",
    "ScatterBreakdown",
    "Stopwatch",
    "WriteBreakdown",
    "mean_breakdown",
    "write_time_for_segments",
]
