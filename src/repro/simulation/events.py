"""A minimal discrete-event simulation engine.

The paper's evaluation ran on a real 16-node cluster; we replace the
cluster with a deterministic discrete-event simulation.  This engine is
deliberately tiny: a priority queue of ``(time, seq, callback)`` events
plus per-resource FIFO serialisation (a disk or a NIC serves one request
at a time).  Everything else — cost models, node behaviour — lives in
the other :mod:`repro.simulation` modules.

Determinism: ties are broken by insertion order (monotonic sequence
numbers), so a simulation is a pure function of its inputs.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["EventQueue", "Resource"]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)


class EventQueue:
    """The simulation clock and pending-event queue."""

    def __init__(self) -> None:
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self._processed = 0
        #: Per-operation resource schedule: when each :class:`Resource`
        #: next frees up *on this timeline*.  Keeping the reservation
        #: high-water mark here (rather than on the shared Resource)
        #: makes operations re-entrant — concurrent operations each run
        #: on their own queue and never see each other's reservations.
        self._resource_free: Dict["Resource", float] = {}
        #: When set to a :class:`repro.obs.span.Span` (duck-typed: only
        #: ``record_sim`` is called), every resource acquisition on this
        #: queue records a simulation-clock child span — the hook that
        #: interleaves modelled network/CPU/disk activity with the
        #: measured compute-node phases in one trace.
        self.trace_span = None

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._heap, _Event(self.now + delay, next(self._seq), callback)
        )

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulation time ``time``."""
        self.schedule(time - self.now, callback)

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains (or ``until`` passes).

        Returns the final simulation time.
        """
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self.now = until
                return self.now
            ev = heapq.heappop(self._heap)
            self.now = ev.time
            self._processed += 1
            ev.callback()
        return self.now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending(self) -> int:
        return len(self._heap)


class Resource:
    """A FIFO-serialised resource (disk arm, NIC, CPU core).

    ``acquire(queue, service_time, done)`` reserves the resource for
    ``service_time`` seconds starting no earlier than now and no earlier
    than the resource's previous release, then calls ``done(start, end)``
    at the release instant.  This models queueing at I/O nodes — the
    contention effect the paper lists among the costs of poorly matched
    distributions.

    The reservation high-water mark lives on the :class:`EventQueue`
    (one queue per operation), so a Resource object is a pure identity
    plus cumulative statistics: concurrent operations on separate
    queues are re-entrant and never corrupt each other's schedules.
    The cumulative counters are lock-guarded for the same reason.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.busy_time = 0.0
        self.requests = 0
        self._stats_lock = threading.Lock()

    def acquire(
        self,
        queue: EventQueue,
        service_time: float,
        done: Callable[[float, float], None],
    ) -> Tuple[float, float]:
        """Schedule a service slot; returns ``(start, end)`` times."""
        if service_time < 0:
            raise ValueError(f"negative service time {service_time}")
        start = max(queue.now, queue._resource_free.get(self, 0.0))
        end = start + service_time
        queue._resource_free[self] = end
        with self._stats_lock:
            self.busy_time += service_time
            self.requests += 1
        if queue.trace_span is not None:
            queue.trace_span.record_sim(self.name or "resource", start, end)
        queue.at(end, lambda: done(start, end))
        return start, end

    def free_at(self, queue: EventQueue) -> float:
        """When this resource next frees up on one operation's timeline."""
        return queue._resource_free.get(self, 0.0)
