"""Network cost model (Myrinet-class interconnect, circa 2001).

The paper's cluster used Myrinet.  We model a message-passing network
with the standard alpha-beta cost: a fixed per-message latency plus a
bandwidth term, full-duplex links, and no topology contention (Myrinet's
Clos fabric was close to non-blocking at this node count).  Default
constants are era-appropriate:

* latency ``alpha`` = 10 microseconds (GM user-level messaging),
* bandwidth ``beta`` = 140 MB/s sustained node-to-node.

The model also counts messages and bytes so benchmarks can report the
message-aggregation effects the paper discusses (§1: "the fragmentation
of data results in sending lots of small messages over the network
instead of a few large ones").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["NetworkModel", "NetworkStats", "Network"]

MB = 1_000_000


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta point-to-point cost model."""

    latency_s: float = 10e-6
    bandwidth_Bps: float = 140 * MB

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.bandwidth_Bps <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")

    def transfer_time(self, nbytes: int, messages: int = 1) -> float:
        """Wire time for ``nbytes`` split over ``messages`` messages."""
        if nbytes < 0 or messages < 1:
            raise ValueError("need nbytes >= 0 and messages >= 1")
        return messages * self.latency_s + nbytes / self.bandwidth_Bps


@dataclass
class NetworkStats:
    """Cumulative traffic counters, including a per-(src, dst) byte map."""

    messages: int = 0
    bytes: int = 0
    by_pair: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def record(self, src: str, dst: str, nbytes: int) -> None:
        """Account one message."""
        self.messages += 1
        self.bytes += nbytes
        key = (src, dst)
        self.by_pair[key] = self.by_pair.get(key, 0) + nbytes


class Network:
    """A network instance: cost model plus traffic accounting."""

    def __init__(self, model: NetworkModel | None = None) -> None:
        self.model = model or NetworkModel()
        self.stats = NetworkStats()

    def send_time(self, src: str, dst: str, nbytes: int) -> float:
        """Time for one message; the transfer is recorded in the stats."""
        self.stats.record(src, dst, nbytes)
        return self.model.transfer_time(nbytes)

    def reset_stats(self) -> None:
        """Zero the traffic counters (the cost model is unaffected)."""
        self.stats = NetworkStats()
