"""Buffer-cache and memory-copy cost model (Pentium III era).

The paper distinguishes writes that stop at the I/O node's buffer cache
(``t^{bc}``) from writes flushed to disk (``t^{disk}``).  The buffer
cache is modelled as memory bandwidth plus a small per-operation cost:
a PIII-800 with PC100 SDRAM sustained roughly 300 MB/s for large
memcpys, and each distinct copied run pays a fixed overhead (function
call, page lookup) that penalises fragmented writes at small sizes —
the effect visible in the paper's small-matrix rows.

The cache also tracks dirty ranges per file so a flush knows which byte
runs must reach the disk (in offset order, as the kernel's writeback
would issue them).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["MemoryModel", "BufferCache"]

MB = 1_000_000


@dataclass(frozen=True)
class MemoryModel:
    """Memory-copy cost constants (era memcpy rate + per-run penalty)."""

    copy_Bps: float = 300 * MB
    per_run_s: float = 2e-6

    def copy_time(self, nbytes: int, runs: int = 1) -> float:
        """Time to copy ``nbytes`` in ``runs`` distinct contiguous runs."""
        if nbytes < 0 or runs < 0:
            raise ValueError("need nbytes >= 0 and runs >= 0")
        return runs * self.per_run_s + nbytes / self.copy_Bps


class BufferCache:
    """Dirty-range tracking plus memory-cost accounting for one node.

    Mutations are lock-guarded: the service layer runs concurrent
    operations against one node's cache, and dirty-range bookkeeping
    must not lose entries under that interleaving.
    """

    def __init__(self, model: MemoryModel | None = None) -> None:
        self.model = model or MemoryModel()
        self._dirty: Dict[str, List[Tuple[int, int]]] = {}
        self.bytes_cached = 0
        self._lock = threading.Lock()

    def write(self, key: str, offset: int, nbytes: int) -> float:
        """Record a dirty range; returns the buffer-cache copy time."""
        if nbytes <= 0:
            return 0.0
        with self._lock:
            self._dirty.setdefault(key, []).append((offset, nbytes))
            self.bytes_cached += nbytes
        return self.model.copy_time(nbytes, runs=1)

    def write_runs(self, key: str, runs: List[Tuple[int, int]]) -> float:
        """Record several dirty runs (a scattered write); returns the
        copy time including the per-run penalty."""
        total = 0
        with self._lock:
            for off, ln in runs:
                if ln <= 0:
                    continue
                self._dirty.setdefault(key, []).append((off, ln))
                total += ln
            self.bytes_cached += total
        return self.model.copy_time(total, runs=max(1, len(runs)))

    def dirty_runs(self, key: str) -> List[Tuple[int, int]]:
        """Dirty ranges coalesced and sorted by offset — the order the
        writeback would issue them to the disk."""
        with self._lock:
            runs = sorted(self._dirty.get(key, ()))
        merged: List[Tuple[int, int]] = []
        for off, ln in runs:
            if merged and off <= merged[-1][0] + merged[-1][1]:
                prev_off, prev_ln = merged[-1]
                merged[-1] = (prev_off, max(prev_ln, off + ln - prev_off))
            else:
                merged.append((off, ln))
        return merged

    def clear(self, key: str) -> None:
        """Drop the dirty ranges of one file (post-flush)."""
        with self._lock:
            self._dirty.pop(key, None)
