"""Timing instrumentation and breakdown records.

The evaluation reports two tables of phase timings (in microseconds):

* Table 1, per compute node: ``t_i`` (intersection + projections, paid
  at view-set), ``t_m`` (mapping the access extremities), ``t_g``
  (gathering non-contiguous view data), ``t_w^bc`` / ``t_w^disk`` (the
  whole write, to buffer cache / to disk).
* Table 2, per I/O node: ``t_sc^bc`` / ``t_sc^disk`` (scattering the
  received buffer into the subfile, to cache / to disk).

Two kinds of numbers flow into these records:

* **measured** — real wall-clock time of our algorithm implementations
  (intersection, mapping, gather), taken with ``perf_counter``; their
  *shape* across sizes and layouts is a property of the algorithms;
* **modelled** — device times from the era cost models
  (:mod:`repro.simulation`), marked by the ``model_`` prefix in field
  comments, used wherever the paper's number is dominated by 2001
  hardware we do not have.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Dict, Iterator, List

from ..obs.span import Span

__all__ = ["Stopwatch", "WriteBreakdown", "ScatterBreakdown", "mean_breakdown"]


class Stopwatch:
    """Accumulates named wall-clock phases.

    Backed by a span tree: every ``measure``/``add`` records a child
    under :attr:`root`, and :attr:`totals` sums those children by name.
    The classic dict-of-seconds API is unchanged, but the phases now
    interoperate with the :mod:`repro.obs` exporters — pass
    ``stopwatch.root`` to :func:`repro.obs.export.trace_to_chrome` and
    the phases show up on the timeline.  Nested ``measure`` calls each
    time their own child (the outer phase includes the inner one's
    wall time, same as the historical behaviour).
    """

    def __init__(self, name: str = "stopwatch") -> None:
        self.root = Span(name)

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        with self.root.measure(phase):
            yield

    def add(self, phase: str, seconds: float) -> None:
        self.root.record(phase, seconds)

    @property
    def totals(self) -> Dict[str, float]:
        """Accumulated seconds per phase name (derived from the spans)."""
        out: Dict[str, float] = {}
        for sp in self.root.children:
            out[sp.name] = out.get(sp.name, 0.0) + sp.wall_s
        return out

    def us(self, phase: str) -> float:
        """Accumulated time of a phase in microseconds."""
        return self.totals.get(phase, 0.0) * 1e6


@dataclass
class WriteBreakdown:
    """Per-compute-node write timing (paper Table 1), microseconds."""

    t_i: float = 0.0  # measured: intersection + projections at view set
    t_m: float = 0.0  # measured: mapping the access extremities
    t_g: float = 0.0  # measured: gather into the send buffer
    t_w_bc: float = 0.0  # modelled: full write, I/O nodes stop at cache
    t_w_disk: float = 0.0  # modelled: full write, flushed to disk

    def __add__(self, other: "WriteBreakdown") -> "WriteBreakdown":
        return WriteBreakdown(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )


@dataclass
class ScatterBreakdown:
    """Per-I/O-node scatter timing (paper Table 2), microseconds."""

    t_sc_bc: float = 0.0  # modelled: scatter into the buffer cache
    t_sc_disk: float = 0.0  # modelled: scatter + flush to disk

    def __add__(self, other: "ScatterBreakdown") -> "ScatterBreakdown":
        return ScatterBreakdown(
            t_sc_bc=self.t_sc_bc + other.t_sc_bc,
            t_sc_disk=self.t_sc_disk + other.t_sc_disk,
        )


def mean_breakdown(items: List) -> "WriteBreakdown | ScatterBreakdown":
    """Field-wise mean of a list of breakdown records."""
    if not items:
        raise ValueError("cannot average zero records")
    cls = type(items[0])
    out = cls()
    for item in items:
        out = out + item
    n = len(items)
    for f in fields(cls):
        setattr(out, f.name, getattr(out, f.name) / n)
    return out
