"""Periodic FALLS families.

Partitioning patterns repeat throughout the linear space of a file
(paper §5), so intersections of two partitions and their projections are
themselves periodic: one finite nested-FALLS structure describes a
period, plus a displacement where the periodicity starts and a period
length.  :class:`PeriodicFallsSet` packages that triple and answers the
queries the redistribution and Clusterfile layers need — "which byte
segments fall in this interval?", "how many bytes per period?", "is the
selection contiguous over this interval?" — without ever materialising
per-byte indices.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property
from typing import Tuple

import numpy as np

from .falls import FallsSet
from .segments import (
    SegmentArrays,
    clip_segments,
    leaf_segment_arrays_set,
    merge_segment_arrays,
    tile_segment_arrays,
)

__all__ = ["PeriodicFallsSet"]

#: Distinct query windows memoised per instance by :meth:`segments_in`.
#: Real workloads hit a handful of extremity pairs per projection (the
#: access pattern of one view repeated over many operations), so a small
#: LRU suffices.
_WINDOW_MEMO_CAPACITY = 8


@dataclass(frozen=True)
class PeriodicFallsSet:
    """A nested-FALLS family tiled with a fixed period.

    ``falls`` describes one period in period-relative coordinates
    ``[0, period)``; the family selects
    ``{displacement + k * period + b}`` for every ``k >= 0`` and every
    byte ``b`` selected by ``falls``.
    """

    falls: FallsSet
    displacement: int
    period: int

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if self.displacement < 0:
            raise ValueError(
                f"displacement must be >= 0, got {self.displacement}"
            )
        if self.falls and self.falls.extent_stop >= self.period:
            raise ValueError(
                f"period structure extends to {self.falls.extent_stop}, "
                f"beyond period {self.period}"
            )

    @property
    def is_empty(self) -> bool:
        return self.falls.is_empty

    @cached_property
    def size_per_period(self) -> int:
        """Bytes selected in each period."""
        return self.falls.size()

    @cached_property
    def _period_segments(self) -> SegmentArrays:
        """Merged, sorted segments of one period (period-relative)."""
        return merge_segment_arrays(leaf_segment_arrays_set(self.falls.falls))

    @cached_property
    def _period_prefix(self) -> np.ndarray:
        """Running byte count at each period segment: ``prefix[i]`` is the
        number of selected bytes in segments ``[0, i)`` of one period."""
        lengths = self._period_segments[1]
        out = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=out[1:])
        return out

    @cached_property
    def _window_memo(self) -> "OrderedDict[Tuple[int, int], SegmentArrays]":
        """Per-instance LRU of :meth:`segments_in` results, keyed by the
        query window.  Repeated same-extremity accesses (the amortisation
        workload) skip the tile/clip/merge entirely."""
        return OrderedDict()

    @property
    def fragment_count_per_period(self) -> int:
        """Number of maximal contiguous runs per period."""
        return int(self._period_segments[0].size)

    def segments_in(self, lo: int, hi: int) -> SegmentArrays:
        """Absolute byte segments selected within ``[lo, hi]`` (inclusive),
        sorted and merged.

        Results for recent windows are memoised per instance and returned
        as **read-only** arrays (callers derive new arrays via arithmetic,
        never write in place).
        """
        if hi < lo or self.is_empty:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        lo = max(lo, self.displacement)
        if hi < lo:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        memo = self._window_memo
        cached = memo.get((lo, hi))
        if cached is not None:
            memo.move_to_end((lo, hi))
            return cached
        k_first = (lo - self.displacement) // self.period
        k_last = (hi - self.displacement) // self.period
        base = self._period_segments
        tiled = tile_segment_arrays(
            base,
            self.period,
            k_last - k_first + 1,
            self.displacement + k_first * self.period,
        )
        # Runs can continue across period boundaries (a fully covering
        # pattern is one infinite run), so merge after tiling.
        result = merge_segment_arrays(clip_segments(tiled[0], tiled[1], lo, hi))
        result[0].setflags(write=False)
        result[1].setflags(write=False)
        memo[(lo, hi)] = result
        if len(memo) > _WINDOW_MEMO_CAPACITY:
            memo.popitem(last=False)
        return result

    def _count_below(self, x: int) -> int:
        """Selected bytes at absolute offsets in ``[displacement, x)``.

        Closed form: whole periods contribute ``size_per_period`` each;
        the partial edge period is resolved with one ``searchsorted``
        against the cached period segments and their prefix sums — no
        segment arrays are materialised, so the cost is O(log fragments)
        regardless of ``x``.
        """
        if x <= self.displacement:
            return 0
        full, rem = divmod(x - self.displacement, self.period)
        total = full * self.size_per_period
        if rem:
            starts, lengths = self._period_segments
            # Segments [0, i) start strictly before rem; only segment
            # i - 1 can straddle the boundary (segments are merged and
            # disjoint), so clip its overshoot.
            i = int(np.searchsorted(starts, rem, side="left"))
            if i:
                total += int(self._period_prefix[i])
                overshoot = int(starts[i - 1] + lengths[i - 1]) - rem
                if overshoot > 0:
                    total -= overshoot
        return int(total)

    def count_in(self, lo: int, hi: int) -> int:
        """Number of selected bytes within ``[lo, hi]``.

        Computed in closed form from the periodic structure — the cost
        depends only on the fragment count of one period, not on the
        width of the window (so ``Transfer.bytes_in_file`` and
        ``RedistributionPlan.total_bytes`` are O(period), never
        O(file length / period)).
        """
        if hi < lo or self.is_empty:
            return 0
        lo = max(lo, self.displacement)
        if hi < lo:
            return 0
        return self._count_below(hi + 1) - self._count_below(lo)

    def contiguous_run_in(self, lo: int, hi: int) -> Tuple[int, int] | None:
        """If the bytes selected within ``[lo, hi]`` form exactly one
        contiguous run, return it as ``(start, stop)``; else ``None``.

        Unlike :meth:`is_contiguous_in`, the run need not cover the whole
        window — this is the zero-copy send test: a single run can be
        sent straight out of the user's buffer without gathering.
        """
        starts, lengths = self.segments_in(lo, hi)
        if starts.size != 1:
            return None
        return int(starts[0]), int(starts[0] + lengths[0] - 1)

    def is_contiguous_in(self, lo: int, hi: int) -> bool:
        """True when the selected bytes within ``[lo, hi]`` form a single
        contiguous run covering ``[lo, hi]`` entirely.

        This is the test the Clusterfile write path uses to skip the
        gather/scatter copies (paper §8.1: "if PROJ is contiguous between
        the extremities, send the buffer directly").
        """
        starts, lengths = self.segments_in(lo, hi)
        if starts.size != 1:
            return False
        return int(starts[0]) == lo and int(starts[0] + lengths[0] - 1) == hi

    def shifted(self, delta: int) -> "PeriodicFallsSet":
        return PeriodicFallsSet(self.falls, self.displacement + delta, self.period)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PeriodicFallsSet(disp={self.displacement}, period={self.period}, "
            f"{self.falls})"
        )
