"""PITFALLS: Processor Indexed Tagged FAmilies of Line Segments.

The paper builds on Ramaswamy & Banerjee's PITFALLS representation and
notes (§4) that "for regular distributions, a set of nested FALLS can be
shortly expressed using the nested PITFALLS representation ... each
nested PITFALLS is just a compact representation of a set of nested
FALLS".

A PITFALLS ``(l, r, s, n, d, p)`` describes, for each of ``p``
processors, the FALLS ``(l + i*d, r + i*d, s, n)`` — one family per
processor, shifted by the processor displacement ``d``.  A *nested*
PITFALLS carries inner nested PITFALLS relative to each block, exactly
like nested FALLS.

This module provides the compact form, expansion to per-processor
nested FALLS, inference of a PITFALLS from a list of per-processor
FALLS, and a convenience constructor for the HPF CYCLIC(k) family that
motivated the representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from .falls import Falls, FallsSet
from .partition import Partition

__all__ = ["Pitfalls", "pitfalls_from_falls", "cyclic_pitfalls"]


@dataclass(frozen=True)
class Pitfalls:
    """A (possibly nested) PITFALLS.

    Attributes mirror the paper's tuple: for processor ``i`` in
    ``range(p)`` the represented FALLS is ``(l + i*d, r + i*d, s, n)``
    with inner structure ``inner`` (shared by all processors, as the
    representation requires).
    """

    l: int
    r: int
    s: int
    n: int
    d: int
    p: int
    inner: Tuple["Pitfalls", ...] = field(default=())

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ValueError(f"processor count must be >= 1, got {self.p}")
        if self.p > 1 and self.d < 1:
            raise ValueError(
                f"processor displacement must be >= 1 for p={self.p}"
            )
        # Validate the first processor's FALLS; the shift preserves
        # validity for the others as long as offsets stay non-negative.
        self.falls_for(0)

    @property
    def block_length(self) -> int:
        return self.r - self.l + 1

    def falls_for(self, proc: int) -> Falls:
        """Expand the FALLS of one processor."""
        if not 0 <= proc < self.p:
            raise ValueError(f"processor {proc} out of range [0, {self.p})")
        shift = proc * self.d
        # Inner PITFALLS with p > 1 describe per-processor inner families.
        inner = tuple(
            pf.falls_for(proc % pf.p) if pf.p > 1 else pf.falls_for(0)
            for pf in self.inner
        )
        return Falls(self.l + shift, self.r + shift, self.s, self.n, inner)

    def expand(self) -> List[Falls]:
        """All processors' FALLS, in processor order."""
        return [self.falls_for(i) for i in range(self.p)]

    def partition(self, displacement: int = 0, validate: bool = True) -> Partition:
        """The partition whose element ``i`` is processor ``i``'s FALLS."""
        return Partition(
            [FallsSet((f,)) for f in self.expand()],
            displacement=displacement,
            validate=validate,
        )

    def size_per_processor(self) -> int:
        return self.falls_for(0).size()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        core = f"{self.l},{self.r},{self.s},{self.n},{self.d},{self.p}"
        if not self.inner:
            return f"({core})"
        inner = ",".join(str(x) for x in self.inner)
        return f"({core},{{{inner}}})"


def pitfalls_from_falls(falls_list: Sequence[Falls]) -> Pitfalls | None:
    """Infer a PITFALLS from per-processor FALLS, if they fit the shape.

    Returns ``None`` when the families are not equally shaped and evenly
    displaced — in that case the general set-of-nested-FALLS form is the
    right representation (that generality is the paper's extension).
    """
    if not falls_list:
        return None
    first = falls_list[0]
    if len(falls_list) == 1:
        inner = _infer_inner(first.inner)
        if inner is None:
            return None
        return Pitfalls(first.l, first.r, first.s, first.n, 0, 1, inner)
    d = falls_list[1].l - first.l
    if d < 1:
        return None
    for i, f in enumerate(falls_list):
        if (
            f.l != first.l + i * d
            or f.r != first.r + i * d
            or f.s != first.s
            or f.n != first.n
            or f.inner != first.inner
        ):
            return None
    inner = _infer_inner(first.inner)
    if inner is None:
        return None
    return Pitfalls(first.l, first.r, first.s, first.n, d, len(falls_list), inner)


def _infer_inner(inner: Tuple[Falls, ...]) -> Tuple[Pitfalls, ...] | None:
    out: List[Pitfalls] = []
    for f in inner:
        sub = _infer_inner(f.inner)
        if sub is None:
            return None
        out.append(Pitfalls(f.l, f.r, f.s, f.n, 0, 1, sub))
    return tuple(out)


def cyclic_pitfalls(n_elements: int, k: int, nprocs: int, itemsize: int = 1) -> Pitfalls:
    """The CYCLIC(k) distribution of ``n_elements`` array elements over
    ``nprocs`` processors as one compact PITFALLS.

    Requires the clean case ``n_elements % (k * nprocs) == 0`` (ragged
    tails need the general FALLS-set form).
    """
    stripe = k * nprocs
    if n_elements % stripe:
        raise ValueError(
            f"{n_elements} elements do not divide into CYCLIC({k}) stripes "
            f"over {nprocs} processors; use the general FALLS form"
        )
    reps = n_elements // stripe
    kb = k * itemsize
    return Pitfalls(0, kb - 1, stripe * itemsize, reps, kb, nprocs)
