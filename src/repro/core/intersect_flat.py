"""INTERSECT-FALLS: intersection of two flat FALLS (paper §7).

The algorithm — due to Ramaswamy & Banerjee's PITFALLS work and reused by
the paper — exploits periodicity: the relative alignment of the two
families repeats with period ``T = lcm(s1, s2)``, so only the pairs of
line segments whose intersection *starts* within one period window need
to be examined.  Each such pair ``(i, j)`` then recurs every
``(T/s1, T/s2)`` blocks, giving a result FALLS with stride ``T`` whose
repetition count follows from how many recurrences stay within both
families.

Example from the paper (figure 4)::

    INTERSECT-FALLS((0,7,16,2), (0,3,8,4)) == [(0,3,16,2)]
"""

from __future__ import annotations

import math
from typing import List

from .falls import Falls

__all__ = ["intersect_falls"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _single_block_intersections(single: Falls, family: Falls) -> List[Falls]:
    """Intersections of a one-block FALLS with an arbitrary FALLS.

    This is exactly CUT-FALLS of the family to the block's window,
    shifted back to absolute coordinates — a run of untouched interior
    blocks stays one compact FALLS instead of one FALLS per block.
    """
    from .cut import cut_falls  # local import avoids a module cycle

    return [f.shifted(single.l) for f in cut_falls(family, single.l, single.r)]


def intersect_falls(f1: Falls, f2: Falls) -> List[Falls]:
    """Flat FALLS selecting exactly the bytes common to ``f1`` and ``f2``.

    Inner FALLS of the arguments are ignored (the nested algorithm in
    :mod:`repro.core.intersect_nested` handles them by recursion).  The
    result list is sorted by left index; result families are pairwise
    disjoint but may have interleaving footprints (all share the lcm
    stride).
    """
    lo = max(f1.l, f2.l)
    hi = min(f1.extent_stop, f2.extent_stop)
    if lo > hi:
        return []
    if f1.n == 1:
        return _single_block_intersections(f1, f2)
    if f2.n == 1:
        return [
            Falls(g.l, g.r, g.s, g.n)
            for g in _single_block_intersections(f2, f1)
        ]

    period = math.lcm(f1.s, f2.s)
    c1 = period // f1.s
    c2 = period // f2.s
    window_stop = lo + period  # exclusive

    blen1 = f1.block_length
    blen2 = f2.block_length

    # Blocks of f1 whose byte range can reach into [lo, window_stop).
    i_first = max(0, _ceil_div(lo - f1.l - (blen1 - 1), f1.s))
    i_last = min(f1.n - 1, (window_stop - 1 - f1.l) // f1.s)
    j_first = max(0, _ceil_div(lo - f2.l - (blen2 - 1), f2.s))
    j_last = min(f2.n - 1, (window_stop - 1 - f2.l) // f2.s)

    out: List[Falls] = []
    for i in range(i_first, i_last + 1):
        a1 = f1.l + i * f1.s
        b1 = a1 + blen1 - 1
        for j in range(j_first, j_last + 1):
            a2 = f2.l + j * f2.s
            b2 = a2 + blen2 - 1
            start = max(a1, a2)
            stop = min(b1, b2)
            if start > stop:
                continue
            if not (lo <= start < window_stop):
                # This residue class is (or was) enumerated at another
                # (i, j); skip to avoid duplicates.
                continue
            reps = 1 + min((f1.n - 1 - i) // c1, (f2.n - 1 - j) // c2)
            out.append(Falls(start, stop, period, reps))
    out.sort(key=lambda f: (f.l, f.r))
    return out
