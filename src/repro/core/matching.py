"""Quantitative matching degree of two partitions (paper §9, future work).

The paper closes with: "In the future, we plan to ... investigate
performance issues related to the matching degree of two partitions of
the same file.  We are interested in finding a quantitative description
of the matching degree."  This module provides that description,
grounded in the cost sources §1 enumerates for poorly matched
distributions:

1. fragmentation / index computation → **fragments per byte**;
2. many small network messages → **message count** and **mean message
   size**;
3. contention of related processes at I/O nodes → **fan-out/fan-in**;
4. non-sequential disk access → **contiguity score**;
5. false sharing within file blocks → **block sharing factor**.

All metrics are derived from the redistribution schedule's periodic
structure, so they are exact, data-independent, and cheap to compute —
a property the paper's representation makes possible.  ``degree()``
folds them into a single score in ``(0, 1]`` where 1 means a perfect
element-for-element match.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from .partition import Partition

__all__ = ["MatchingReport", "matching_degree"]


@dataclass(frozen=True)
class MatchingReport:
    """Exact matching metrics between a source and a target partition.

    All "per period" quantities refer to one common period — the lcm of
    the two pattern sizes — so they are invariant in the file length.
    """

    period: int
    #: Element pairs exchanging data (network messages per period).
    transfers: int
    #: The smallest possible transfer count: max of the element counts.
    min_transfers: int
    #: Maximal contiguous runs gathered at the source, per period.
    src_fragments: int
    #: Maximal contiguous runs scattered at the target, per period.
    dst_fragments: int
    #: Bytes moved per period (= period bytes).
    bytes_per_period: int
    #: Mean bytes per transfer.
    mean_message_bytes: float
    #: Mean bytes per contiguous fragment (min over both sides).
    mean_fragment_bytes: float
    #: Max number of target elements one source element feeds.
    fan_out: int
    #: Max number of source elements one target element drains.
    fan_in: int
    #: Fraction of transferred bytes that move as whole-window
    #: contiguous runs on *both* sides (1.0 = pure memcpy exchange).
    contiguity: float
    #: True when the partitions match element for element.
    identity: bool

    def degree(self) -> float:
        """A single matching score in (0, 1].

        The geometric mean of two normalised efficiencies:

        * *message efficiency* — the fewest messages any redistribution
          between these element counts could use, over the actual count;
        * *fragment efficiency* — one contiguous run per transfer is
          optimal; more runs mean gather/scatter work and non-sequential
          device access.

        Perfectly matched partitions score exactly 1.0; the score decays
        with both all-to-all communication and fine fragmentation, the
        two cost sources §1 of the paper blames on poor matching.
        """
        msg_eff = self.min_transfers / self.transfers
        frag_eff = self.transfers / max(
            self.src_fragments, self.dst_fragments, self.transfers
        )
        return math.sqrt(msg_eff * frag_eff)


def matching_degree(src: Partition, dst: Partition) -> MatchingReport:
    """Compute the full matching report between two partitions.

    Uses the redistribution schedule machinery; the result depends only
    on the partitioning patterns, never on file contents or length.
    """
    from ..redistribution.schedule import build_plan  # avoid cycle

    plan = build_plan(src, dst)
    period = math.lcm(src.size, dst.size)
    transfers = plan.message_count
    src_frag = 0
    dst_frag = 0
    total = 0
    contiguous_bytes = 0
    fan_out: Dict[int, int] = {}
    fan_in: Dict[int, int] = {}
    for t in plan.transfers:
        sf = t.src_fragments_per_period
        df = t.dst_fragments_per_period
        src_frag += sf
        dst_frag += df
        total += t.bytes_per_period
        if sf == 1 and df == 1:
            contiguous_bytes += t.bytes_per_period
        fan_out[t.src_element] = fan_out.get(t.src_element, 0) + 1
        fan_in[t.dst_element] = fan_in.get(t.dst_element, 0) + 1
    worst_frag = max(src_frag, dst_frag, 1)
    return MatchingReport(
        period=period,
        transfers=transfers,
        min_transfers=max(src.num_elements, dst.num_elements),
        src_fragments=src_frag,
        dst_fragments=dst_frag,
        bytes_per_period=total,
        mean_message_bytes=total / max(transfers, 1),
        mean_fragment_bytes=total / worst_frag,
        fan_out=max(fan_out.values(), default=0),
        fan_in=max(fan_in.values(), default=0),
        contiguity=contiguous_bytes / max(total, 1),
        identity=plan.is_identity,
    )
