"""CUT-FALLS: clipping a FALLS to a window (paper §7).

``CUT-FALLS(f, a, b)`` computes the set of FALLS resulting from cutting a
FALLS ``f`` between an inferior limit ``a`` and a superior limit ``b``,
with the result expressed **relative to** ``a``.

The paper's example — cutting ``(3, 5, 6, 5)`` between 4 and 28 — yields
``{(0,1,2,1), (5,7,6,3), (23,24,2,1)}``: a clipped first block, a run of
untouched full blocks, and a clipped last block.

The nested intersection algorithm additionally needs to know, for every
resulting piece, *where inside the original block* the piece starts (the
in-block offset), so that inner FALLS can be intersected in
block-relative coordinates; :func:`cut_falls_pieces` returns that
provenance alongside each piece.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .falls import Falls

__all__ = ["CutPiece", "cut_falls", "cut_falls_pieces"]


@dataclass(frozen=True)
class CutPiece:
    """One flat FALLS produced by cutting, with provenance.

    Attributes
    ----------
    falls:
        The piece, in coordinates relative to the cut's inferior limit
        ``a``.  Inner FALLS of the source are *not* attached — nested
        content is handled by the caller via :attr:`offset`.
    offset:
        Offset of the piece's block start within the source FALLS' block:
        0 for untouched blocks, positive when the block was clipped on
        the left.
    first_block:
        Index (within the source FALLS) of the first source block this
        piece covers.
    """

    falls: Falls
    offset: int
    first_block: int


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def cut_falls_pieces(f: Falls, a: int, b: int) -> List[CutPiece]:
    """Cut the flat structure of ``f`` between ``a`` and ``b``.

    Pieces are returned in increasing coordinate order, re-based to ``a``.
    Full interior blocks are grouped into a single multi-block piece;
    clipped boundary blocks become singleton pieces.  An empty list means
    the window selects nothing.
    """
    if b < a:
        return []
    blen = f.block_length
    if b < f.l or a > f.extent_stop:
        return []
    # First block whose stop >= a, last block whose start <= b.
    k_first = max(0, _ceil_div(a - f.l - (blen - 1), f.s))
    k_last = min(f.n - 1, (b - f.l) // f.s)
    if k_first > k_last:
        return []

    pieces: List[CutPiece] = []

    def block_bounds(k: int) -> Tuple[int, int]:
        start = f.l + k * f.s
        return start, start + blen - 1

    def clipped(k: int) -> Tuple[int, int, int]:
        bs, be = block_bounds(k)
        lo = max(a, bs)
        hi = min(b, be)
        return lo, hi, lo - bs

    first_lo, first_hi, first_off = clipped(k_first)
    first_is_full = first_off == 0 and first_hi - first_lo + 1 == blen
    last_lo, last_hi, last_off = clipped(k_last)
    last_is_full = last_off == 0 and last_hi - last_lo + 1 == blen

    if k_first == k_last:
        pieces.append(
            CutPiece(
                Falls(first_lo - a, first_hi - a, first_hi - first_lo + 1, 1),
                first_off,
                k_first,
            )
        )
        return pieces

    run_start = k_first
    run_stop = k_last
    if not first_is_full:
        pieces.append(
            CutPiece(
                Falls(first_lo - a, first_hi - a, first_hi - first_lo + 1, 1),
                first_off,
                k_first,
            )
        )
        run_start = k_first + 1
    if not last_is_full:
        run_stop = k_last - 1
    if run_start <= run_stop:
        bs, be = block_bounds(run_start)
        pieces.append(
            CutPiece(
                Falls(bs - a, be - a, f.s, run_stop - run_start + 1),
                0,
                run_start,
            )
        )
    if not last_is_full:
        pieces.append(
            CutPiece(
                Falls(last_lo - a, last_hi - a, last_hi - last_lo + 1, 1),
                last_off,
                k_last,
            )
        )
    return pieces


def cut_falls(f: Falls, a: int, b: int) -> List[Falls]:
    """The paper's CUT-FALLS: the flat pieces of ``f`` within ``[a, b]``,
    relative to ``a``."""
    return [p.falls for p in cut_falls_pieces(f, a, b)]
