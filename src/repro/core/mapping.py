"""Mapping functions MAP and MAP^{-1} (paper §6).

``MAP_S(x)`` maps a file offset ``x`` onto the linear space of the
partition element defined by the FALLS set ``S``; ``MAP_S^{-1}(y)`` is
its inverse.  Following the paper:

* ``MAP_S(x) = ((x - disp) div SIZE_P) * SIZE_S
  + MAP-AUX_S((x - disp) mod SIZE_P)``
* ``MAP-AUX_S`` locates the FALLS of ``S`` containing the offset (binary
  search on left indices), adds the sizes of the preceding FALLS, and
  recurses block-relative into the located FALLS.

``MAP`` is defined only for offsets the element actually selects; the
paper notes MAP-AUX can be "slightly modified" to map to the *next* or
*previous* byte that does map — those variants are the ``mode="next"``
and ``mode="prev"`` arguments here, used by the Clusterfile write path to
map access-interval extremities.

Composition between two partitions of the same file,
``MAP_S(MAP_V^{-1}(y))``, is :func:`map_between`.

Scalar functions implement the paper's recursive algorithms verbatim; the
:class:`ElementMapper` class provides NumPy-vectorised batch variants
built on per-period leaf-segment tables, used by the redistribution
executor and Clusterfile where thousands of offsets are mapped at once.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Literal, Optional, Sequence

import numpy as np

from .falls import Falls, FallsSet
from .partition import Partition
from .segments import leaf_segment_arrays_set

__all__ = [
    "MappingError",
    "Mode",
    "map_offset",
    "unmap_offset",
    "map_between",
    "count_below",
    "ElementMapper",
]

Mode = Literal["exact", "next", "prev"]


class MappingError(KeyError):
    """Raised when an offset does not map under the requested mode."""


# ---------------------------------------------------------------------------
# Scalar MAP-AUX over a FALLS sequence (paper's recursive formulation).
# ---------------------------------------------------------------------------


def _prefix_sizes(falls_seq: Sequence[Falls]) -> List[int]:
    cum = [0]
    for f in falls_seq:
        cum.append(cum[-1] + f.size())
    return cum


def _map_aux_seq(
    falls_seq: Sequence[Falls],
    lefts: Sequence[int],
    cum: Sequence[int],
    y: int,
    mode: Mode,
) -> Optional[int]:
    """Rank of offset ``y`` among the bytes selected by ``falls_seq``.

    Sentinel convention that makes the recursion uniform across levels:
    ``mode="next"`` returns ``total_size`` when no selected byte is >= y
    (i.e. "first byte of whatever comes after this subtree");
    ``mode="prev"`` returns ``-1`` when no selected byte is <= y.
    ``mode="exact"`` returns ``None`` on a miss.
    """
    j = bisect_right(lefts, y) - 1
    if j < 0:
        if mode == "exact":
            return None
        return 0 if mode == "next" else -1
    f = falls_seq[j]
    rel = y - f.l
    per_block = f.size() // f.n
    if rel >= f.span:
        # Past this FALLS' footprint, before the next one (or past the end).
        if mode == "exact":
            return None
        return cum[j + 1] if mode == "next" else cum[j + 1] - 1
    k, o = divmod(rel, f.s)
    base = cum[j] + k * per_block
    if o >= f.block_length:
        # Inside the stride gap between block k and block k + 1.
        if mode == "exact":
            return None
        return base + per_block if mode == "next" else base + per_block - 1
    if f.is_leaf:
        return base + o
    inner_lefts = [g.l for g in f.inner]
    inner_cum = _prefix_sizes(f.inner)
    r = _map_aux_seq(f.inner, inner_lefts, inner_cum, o, mode)
    if r is None:
        return None
    # next/prev sentinels (per_block and -1) shift into "first byte of the
    # following block" and "last byte of the preceding block" automatically.
    return base + r


def map_aux(element: FallsSet, y: int, mode: Mode = "exact") -> Optional[int]:
    """The paper's MAP-AUX_S: rank of pattern-relative offset ``y`` within
    element ``S`` (with next/prev sentinels as documented above)."""
    lefts = [f.l for f in element.falls]
    cum = _prefix_sizes(element.falls)
    return _map_aux_seq(element.falls, lefts, cum, y, mode)


def count_below(element: FallsSet, limit: int) -> int:
    """Number of bytes of ``element`` with pattern-relative offset < limit."""
    if limit <= 0:
        return 0
    r = map_aux(element, limit - 1, mode="prev")
    assert r is not None
    return r + 1


def map_offset(
    partition: Partition, element: int, x: int, mode: Mode = "exact"
) -> int:
    """MAP: file offset ``x`` -> linear offset within ``element``.

    ``mode="exact"`` requires ``x`` to belong to the element and raises
    :class:`MappingError` otherwise; ``mode="next"``/``"prev"`` return
    the mapping of the nearest following/preceding byte that does belong
    to the element (raising only when no such byte exists).
    """
    S = partition.elements[element]
    ssize = S.size()
    if x < partition.displacement:
        if mode == "next":
            return 0
        raise MappingError(
            f"offset {x} precedes displacement {partition.displacement}"
        )
    q, rem = divmod(x - partition.displacement, partition.size)
    r = map_aux(S, rem, mode)
    if r is None:
        raise MappingError(f"offset {x} does not map on element {element}")
    result = q * ssize + r
    if result < 0:
        raise MappingError(
            f"no byte of element {element} precedes offset {x}"
        )
    return result


def _unmap_aux_seq(
    falls_seq: Sequence[Falls], cum: Sequence[int], r: int
) -> int:
    j = bisect_right(cum, r) - 1
    if j >= len(falls_seq):  # pragma: no cover - guarded by callers
        raise MappingError(f"rank {r} out of range")
    f = falls_seq[j]
    per_block = f.size() // f.n
    k, o = divmod(r - cum[j], per_block)
    if f.is_leaf:
        return f.l + k * f.s + o
    return f.l + k * f.s + _unmap_aux_seq(f.inner, _prefix_sizes(f.inner), o)


def unmap_offset(partition: Partition, element: int, y: int) -> int:
    """MAP^{-1}: linear offset ``y`` within ``element`` -> file offset."""
    if y < 0:
        raise MappingError(f"element offset must be >= 0, got {y}")
    S = partition.elements[element]
    ssize = S.size()
    q, rem = divmod(y, ssize)
    within = _unmap_aux_seq(S.falls, _prefix_sizes(S.falls), rem)
    return partition.displacement + q * partition.size + within


def map_between(
    src: Partition,
    src_element: int,
    dst: Partition,
    dst_element: int,
    y: int,
    mode: Mode = "exact",
) -> int:
    """Map an offset of one partition element onto an element of another
    partition of the same file: ``MAP_S(MAP_V^{-1}(y))`` (paper §6.2)."""
    return map_offset(dst, dst_element, unmap_offset(src, src_element, y), mode)


# ---------------------------------------------------------------------------
# Vectorised mapping via per-period leaf-segment tables.
# ---------------------------------------------------------------------------


@dataclass
class ElementMapper:
    """Batch MAP / MAP^{-1} for one partition element.

    Precomputes the element's leaf segments over one pattern period
    (sorted starts, lengths, and the running count of selected bytes) so
    that whole offset arrays can be mapped with two ``searchsorted``
    calls.  This is the representation a view-set caches: the cost of
    building it is the paper's ``t_i``-adjacent precomputation, amortised
    over every subsequent access.
    """

    partition: Partition
    element: int

    def __post_init__(self) -> None:
        starts, lengths = leaf_segment_arrays_set(
            self.partition.elements[self.element].falls
        )
        self.seg_starts = starts
        self.seg_lengths = lengths
        self.seg_stops = starts + lengths - 1
        self.seg_rank = np.concatenate(
            ([0], np.cumsum(lengths))
        )  # rank of each segment's first byte; last entry = element size
        self.element_size = int(self.seg_rank[-1])

    # -- file offset -> element offset --------------------------------------

    def map_many(self, offsets: np.ndarray, mode: Mode = "exact") -> np.ndarray:
        """Vectorised :func:`map_offset` over an int64 offset array."""
        offsets = np.asarray(offsets, dtype=np.int64)
        disp = self.partition.displacement
        psize = self.partition.size
        if mode == "exact" and np.any(offsets < disp):
            raise MappingError("offset precedes displacement")
        rel = offsets - disp
        q, rem = np.divmod(rel, psize)
        j = np.searchsorted(self.seg_starts, rem, side="right") - 1
        inside = (j >= 0) & (rem <= self.seg_stops[np.maximum(j, 0)])
        if mode == "exact":
            if not np.all(inside):
                bad = offsets[~inside][0]
                raise MappingError(
                    f"offset {int(bad)} does not map on element {self.element}"
                )
            r = self.seg_rank[j] + (rem - self.seg_starts[j])
        elif mode == "next":
            r = np.where(
                inside,
                self.seg_rank[np.maximum(j, 0)]
                + (rem - self.seg_starts[np.maximum(j, 0)]),
                self.seg_rank[j + 1],  # first byte of the next segment
            )
            r = np.where(offsets < disp, -q * self.element_size, r)
        else:  # prev
            r = np.where(
                inside,
                self.seg_rank[np.maximum(j, 0)]
                + (rem - self.seg_starts[np.maximum(j, 0)]),
                self.seg_rank[np.maximum(j, 0) + 1] - 1,
            )
            r = np.where(j < 0, -1, r)
        result = q * self.element_size + r
        if mode == "prev" and np.any(result < 0):
            raise MappingError("no preceding byte for some offsets")
        return result

    def map_one(self, offset: int, mode: Mode = "exact") -> int:
        return int(self.map_many(np.array([offset], dtype=np.int64), mode)[0])

    # -- element offset -> file offset --------------------------------------

    def unmap_many(self, ranks: np.ndarray) -> np.ndarray:
        """Vectorised :func:`unmap_offset` over an int64 rank array."""
        ranks = np.asarray(ranks, dtype=np.int64)
        if np.any(ranks < 0):
            raise MappingError("element offsets must be >= 0")
        q, rem = np.divmod(ranks, self.element_size)
        j = np.searchsorted(self.seg_rank, rem, side="right") - 1
        within = self.seg_starts[j] + (rem - self.seg_rank[j])
        return self.partition.displacement + q * self.partition.size + within

    def unmap_one(self, rank: int) -> int:
        return int(self.unmap_many(np.array([rank], dtype=np.int64))[0])
