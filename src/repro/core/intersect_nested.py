"""Nested FALLS intersection: PREPROCESS + INTERSECT-AUX (paper §7).

The goal: given two partitions of the same file, compute — for a pair of
partition elements — the set of nested FALLS representing the bytes the
two elements have in common, so the data can be redistributed segment by
segment rather than byte by byte.

Structure of the implementation, following the paper:

``INTERSECT`` (:func:`intersect_elements`)
    The *PREPROCESS* phase extends both partitioning patterns over a
    common period — the lowest common multiple of the two pattern sizes —
    and aligns them at the maximum of the two displacements (rotating the
    pattern that starts earlier).  The aligned, extended elements are
    then intersected structurally.

``INTERSECT-AUX`` (:func:`_intersect_windowed`)
    Recursive tree traversal.  At each level, every FALLS of one set is
    cut (CUT-FALLS) to the current intersection window, the cut pieces
    are pairwise flat-intersected (INTERSECT-FALLS), and the recursion
    descends into the inner FALLS with the intersection window expressed
    in each side's block-relative coordinates.  Trees are first padded to
    a common uniform height with semantically neutral wrappers, as the
    paper prescribes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .cut import cut_falls_pieces
from .falls import Falls, FallsSet
from .intersect_flat import intersect_falls
from .normalize import equalize_set_heights, pad_to_height
from .partition import Partition
from .periodic import PeriodicFallsSet

__all__ = [
    "intersect_nested_sets",
    "intersect_elements",
    "intersect_partitions",
    "cut_nested_set",
]


def _intersect_windowed(
    set1: Sequence[Falls],
    l1: int,
    r1: int,
    set2: Sequence[Falls],
    l2: int,
    r2: int,
) -> List[Falls]:
    """The paper's INTERSECT-AUX.

    ``[l1, r1]`` and ``[l2, r2]`` denote the *same* intersection window
    expressed in the block-relative coordinates of each side (they have
    equal lengths).  The result is relative to the window start, i.e. a
    legal inner-FALLS layout for a block of the window's length.

    Both sets must have been padded to the same uniform tree height, so
    at every level either both sides are leaves or neither is.
    """
    assert r1 - l1 == r2 - l2, "intersection windows must have equal lengths"
    out: List[Falls] = []
    for f1 in set1:
        pieces1 = cut_falls_pieces(f1, l1, r1)
        if not pieces1:
            continue
        for f2 in set2:
            pieces2 = cut_falls_pieces(f2, l2, r2)
            for p1 in pieces1:
                for p2 in pieces2:
                    for g in intersect_falls(p1.falls, p2.falls):
                        if f1.is_leaf:
                            out.append(g)
                            continue
                        for h in _aligned_splits(g, p1.falls, f1, p2.falls, f2):
                            # Offset of h's blocks inside the original
                            # blocks of f1/f2 — constant across h's
                            # repetitions by construction of the split.
                            off1 = p1.offset + (
                                (h.l - p1.falls.l) % p1.falls.s
                            )
                            off2 = p2.offset + (
                                (h.l - p2.falls.l) % p2.falls.s
                            )
                            blen = h.block_length
                            inner = _intersect_windowed(
                                f1.inner,
                                off1,
                                off1 + blen - 1,
                                f2.inner,
                                off2,
                                off2 + blen - 1,
                            )
                            if inner:
                                out.append(h.with_inner(inner))
    out.sort(key=lambda f: (f.l, f.r, f.s))
    return out


def _is_trivial_chain(inner: Tuple[Falls, ...], block_length: int) -> bool:
    """True when ``inner`` is a semantically neutral full-coverage chain
    (the shape :func:`repro.core.normalize.trivial_inner` produces).

    Such inner structure is translation-invariant: cutting it to any
    window of a given length yields the same relative result, so blocks
    of an intersection result need not sit at a constant offset inside
    the parent's blocks.
    """
    while True:
        if len(inner) != 1:
            return False
        f = inner[0]
        if f.n != 1 or f.l != 0 or f.r != block_length - 1:
            return False
        if f.is_leaf:
            return True
        inner = f.inner


def _aligned_splits(
    g: Falls, p1: Falls, f1: Falls, p2: Falls, f2: Falls
) -> List[Falls]:
    """Split a flat intersection result so the inner-window recursion is
    expressible once per part.

    A multi-block result needs its blocks at a *constant* offset inside
    the blocks of a source piece, unless that source's inner structure is
    a trivial full-coverage chain (then the offset is irrelevant).
    Constant offset holds when the result's stride is a multiple of the
    piece's stride; otherwise the result is split into single blocks.
    """
    if g.n == 1:
        return [g]

    def side_ok(p: Falls, f: Falls) -> bool:
        if p.n > 1 and g.s % p.s == 0:
            return True
        return _is_trivial_chain(f.inner, f.block_length)

    if side_ok(p1, f1) and side_ok(p2, f2):
        return [g]
    return [
        Falls(g.l + k * g.s, g.r + k * g.s, g.block_length, 1, g.inner)
        for k in range(g.n)
    ]


def intersect_nested_sets(
    set1: Sequence[Falls], set2: Sequence[Falls]
) -> List[Falls]:
    """Intersect two nested-FALLS sets living in the same coordinate
    space.  Returns nested FALLS selecting exactly the common bytes."""
    a, b, _height = equalize_set_heights(tuple(set1), tuple(set2))
    if not a or not b:
        return []
    stop = max(
        max(f.extent_stop for f in a),
        max(f.extent_stop for f in b),
    )
    return _intersect_windowed(a, 0, stop, b, 0, stop)


def cut_nested_set(set1: Sequence[Falls], a: int, b: int) -> List[Falls]:
    """Cut a nested-FALLS set to the window ``[a, b]``, re-based to ``a``.

    Unlike the flat CUT-FALLS, inner FALLS of partially clipped blocks
    are clipped too.  Implemented as an intersection with a trivial
    window FALLS, which routes all the clipping through INTERSECT-AUX.
    """
    if b < a or not set1:
        return []
    falls = tuple(set1)
    height = max(f.height() for f in falls)
    window = pad_to_height(Falls(a, b, b - a + 1, 1), height)
    padded = tuple(pad_to_height(f, height) for f in falls)
    stop = max(b, max(f.extent_stop for f in padded))
    result = _intersect_windowed(padded, 0, stop, (window,), 0, stop)
    return [f.shifted(-a) for f in result]


# ---------------------------------------------------------------------------
# PREPROCESS and the partition-level entry points.
# ---------------------------------------------------------------------------


def _rotated_element(element: FallsSet, delta: int, pattern_size: int) -> List[Falls]:
    """The element's per-period structure when the pattern origin moves
    forward by ``delta`` bytes (pattern coordinates rotate left)."""
    if delta == 0:
        return list(element.falls)
    head = cut_nested_set(element.falls, delta, pattern_size - 1)
    tail = [
        f.shifted(pattern_size - delta)
        for f in cut_nested_set(element.falls, 0, delta - 1)
    ]
    return head + tail


def _extended_element(
    element: FallsSet, delta: int, pattern_size: int, copies: int
) -> List[Falls]:
    """PREPROCESS for one element: rotate the pattern so it starts at the
    common displacement, then extend it over ``copies`` pattern instances
    by wrapping it into an outer FALLS."""
    rotated = _rotated_element(element, delta, pattern_size)
    if copies == 1 or not rotated:
        return rotated
    height = max(f.height() for f in rotated)
    inner = tuple(pad_to_height(f, height) for f in rotated)
    return [Falls(0, pattern_size - 1, pattern_size, copies, inner)]


@dataclass(frozen=True)
class _AlignedPair:
    """Both patterns extended over a common period and displacement."""

    displacement: int
    period: int
    copies1: int
    copies2: int
    delta1: int
    delta2: int


def _align(p1: Partition, p2: Partition) -> _AlignedPair:
    period = math.lcm(p1.size, p2.size)
    displacement = max(p1.displacement, p2.displacement)
    return _AlignedPair(
        displacement=displacement,
        period=period,
        copies1=period // p1.size,
        copies2=period // p2.size,
        delta1=(displacement - p1.displacement) % p1.size,
        delta2=(displacement - p2.displacement) % p2.size,
    )


def intersect_elements(
    p1: Partition, e1: int, p2: Partition, e2: int
) -> PeriodicFallsSet:
    """The paper's INTERSECT: nested FALLS common to element ``e1`` of
    partition ``p1`` and element ``e2`` of partition ``p2``.

    The result is periodic in file linear space: displacement = the
    larger of the two displacements, period = lcm of the two pattern
    sizes.
    """
    al = _align(p1, p2)
    ext1 = _extended_element(p1.elements[e1], al.delta1, p1.size, al.copies1)
    ext2 = _extended_element(p2.elements[e2], al.delta2, p2.size, al.copies2)
    common = intersect_nested_sets(ext1, ext2)
    return PeriodicFallsSet(FallsSet(common), al.displacement, al.period)


def intersect_partitions(
    p1: Partition, p2: Partition
) -> dict[Tuple[int, int], PeriodicFallsSet]:
    """All pairwise element intersections with at least one common byte.

    This is the computation a view set performs against every subfile
    (paper §8.1); the redistribution schedule is derived from it.
    """
    out: dict[Tuple[int, int], PeriodicFallsSet] = {}
    for i in range(p1.num_elements):
        for j in range(p2.num_elements):
            inter = intersect_elements(p1, i, p2, j)
            if not inter.is_empty:
                out[(i, j)] = inter
    return out
