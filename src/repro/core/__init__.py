"""Core parallel-file model: FALLS algebra, mapping, intersection."""

from .falls import Falls, FallsSet, LineSegment, falls_from_segment
from .partition import Partition, PartitionError
from .mapping import (
    ElementMapper,
    MappingError,
    map_between,
    map_offset,
    unmap_offset,
)
from .algebra import complement, difference, partition_from_elements, same_bytes, union
from .cut import cut_falls
from .matching import MatchingReport, matching_degree
from .intersect_flat import intersect_falls
from .intersect_nested import (
    cut_nested_set,
    intersect_elements,
    intersect_nested_sets,
    intersect_partitions,
)
from .periodic import PeriodicFallsSet
from .projection import project

__all__ = [
    "ElementMapper",
    "MatchingReport",
    "Falls",
    "FallsSet",
    "LineSegment",
    "MappingError",
    "Partition",
    "PartitionError",
    "PeriodicFallsSet",
    "complement",
    "cut_falls",
    "cut_nested_set",
    "difference",
    "falls_from_segment",
    "intersect_elements",
    "intersect_falls",
    "intersect_nested_sets",
    "intersect_partitions",
    "map_between",
    "map_offset",
    "matching_degree",
    "partition_from_elements",
    "same_bytes",
    "union",
    "project",
    "unmap_offset",
]
