"""JSON serialization for FALLS structures and partitions.

Layout metadata must outlive the process that created it — a checkpoint
is useless if nobody remembers how it was partitioned.  This module
gives every layout object a stable, versioned JSON form:

* ``Falls``      -> ``[l, r, s, n, [inner...]]`` (compact array form);
* ``FallsSet``   -> list of Falls;
* ``Partition``  -> ``{"displacement", "elements"}``;
* ``Pitfalls``   -> ``[l, r, s, n, d, p, [inner...]]``.

The format is deliberately minimal and human-readable; round-trips are
exact (construction re-validates every invariant on load, so corrupt
metadata fails loudly instead of mis-mapping bytes).
"""

from __future__ import annotations

import json
from typing import Any, List

from .falls import Falls, FallsSet
from .partition import Partition
from .pitfalls import Pitfalls

__all__ = [
    "falls_to_obj",
    "falls_from_obj",
    "partition_to_obj",
    "partition_from_obj",
    "partition_to_json",
    "partition_from_json",
    "partition_structure_key",
    "pitfalls_to_obj",
    "pitfalls_from_obj",
]

FORMAT_VERSION = 1


def falls_to_obj(f: Falls) -> list:
    """``[l, r, s, n]`` for leaves, ``[l, r, s, n, [inner...]]`` else."""
    base: List[Any] = [f.l, f.r, f.s, f.n]
    if f.inner:
        base.append([falls_to_obj(g) for g in f.inner])
    return base


def falls_from_obj(obj: Any) -> Falls:
    """Decode a FALLS from its array form, re-validating invariants."""
    if not isinstance(obj, (list, tuple)) or len(obj) not in (4, 5):
        raise ValueError(f"not a FALLS encoding: {obj!r}")
    l, r, s, n = (int(x) for x in obj[:4])
    inner = tuple(falls_from_obj(x) for x in obj[4]) if len(obj) == 5 else ()
    return Falls(l, r, s, n, inner)


def partition_to_obj(p: Partition) -> dict:
    """Encode a partition as a plain-JSON-able dict."""
    return {
        "format": FORMAT_VERSION,
        "displacement": p.displacement,
        "elements": [
            [falls_to_obj(f) for f in element.falls] for element in p.elements
        ],
    }


def partition_from_obj(obj: dict, validate: bool = True) -> Partition:
    """Decode a partition, checking the format version and re-running
    the tiling validation (unless ``validate=False``)."""
    if not isinstance(obj, dict) or "elements" not in obj:
        raise ValueError("not a partition encoding")
    version = obj.get("format", 1)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported layout format version {version}")
    elements = [
        FallsSet(tuple(falls_from_obj(f) for f in element))
        for element in obj["elements"]
    ]
    return Partition(
        elements, displacement=int(obj.get("displacement", 0)), validate=validate
    )


def partition_to_json(p: Partition, indent: int | None = None) -> str:
    """The JSON text form of :func:`partition_to_obj`."""
    return json.dumps(partition_to_obj(p), indent=indent)


def partition_from_json(text: str, validate: bool = True) -> Partition:
    """Parse JSON text back into a validated partition."""
    return partition_from_obj(json.loads(text), validate=validate)


def partition_structure_key(p: Partition) -> str:
    """The stable content hash of a partition's displacement/FALLS trees.

    Delegates to :meth:`repro.core.partition.Partition.structure_key`;
    the hash is computed over the same canonical array form this module
    serializes, so a partition and its JSON round-trip share one key.
    Use it to key layout metadata (plan caches, checkpoint indexes)
    across processes.
    """
    return p.structure_key()


def pitfalls_to_obj(pf: Pitfalls) -> list:
    """Encode a PITFALLS as its array form."""
    base: List[Any] = [pf.l, pf.r, pf.s, pf.n, pf.d, pf.p]
    if pf.inner:
        base.append([pitfalls_to_obj(x) for x in pf.inner])
    return base


def pitfalls_from_obj(obj: Any) -> Pitfalls:
    """Decode a PITFALLS from its array form, re-validating."""
    if not isinstance(obj, (list, tuple)) or len(obj) not in (6, 7):
        raise ValueError(f"not a PITFALLS encoding: {obj!r}")
    l, r, s, n, d, p = (int(x) for x in obj[:6])
    inner = (
        tuple(pitfalls_from_obj(x) for x in obj[6]) if len(obj) == 7 else ()
    )
    return Pitfalls(l, r, s, n, d, p, inner)
