"""Core data representation: line segments, FALLS and nested FALLS.

The representation follows Isaila & Tichy (IPPS 2002), section 4, which in
turn extends the PITFALLS representation of Ramaswamy & Banerjee:

* A **line segment** ``(l, r)`` describes the contiguous byte range
  ``[l, r]`` (both ends inclusive) of a linear space.
* A **FALLS** ``(l, r, s, n)`` describes ``n`` equally sized, equally
  spaced line segments: segment ``k`` occupies
  ``[l + k*s, r + k*s]`` for ``k in range(n)``.
* A **nested FALLS** additionally carries a set of *inner* FALLS, located
  inside each block ``[l + k*s, r + k*s]`` and expressed **relative to the
  block's left index**.  Only the bytes selected by the inner FALLS belong
  to the nested FALLS; a FALLS without inner FALLS selects every byte of
  each block.

All coordinates are non-negative integers (byte offsets).  Instances are
immutable and hashable so they can be shared freely between partitions,
cached in projection tables, and used as dictionary keys in redistribution
schedules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, Tuple

__all__ = [
    "Falls",
    "FallsSet",
    "LineSegment",
    "falls_from_segment",
    "is_ordered_layout",
    "validate_inner_layout",
]


@dataclass(frozen=True)
class LineSegment:
    """A contiguous, inclusive byte range ``[start, stop]``."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"segment start must be >= 0, got {self.start}")
        if self.stop < self.start:
            raise ValueError(
                f"segment stop ({self.stop}) must be >= start ({self.start})"
            )

    @property
    def length(self) -> int:
        return self.stop - self.start + 1

    def shifted(self, delta: int) -> "LineSegment":
        return LineSegment(self.start + delta, self.stop + delta)

    def overlaps(self, other: "LineSegment") -> bool:
        return self.start <= other.stop and other.start <= self.stop

    def intersection(self, other: "LineSegment") -> "LineSegment | None":
        lo = max(self.start, other.start)
        hi = min(self.stop, other.stop)
        if lo > hi:
            return None
        return LineSegment(lo, hi)


def _as_falls_tuple(inner: Iterable["Falls"]) -> Tuple["Falls", ...]:
    out = tuple(inner)
    for f in out:
        if not isinstance(f, Falls):
            raise TypeError(f"inner entries must be Falls, got {type(f)!r}")
    return out


@dataclass(frozen=True)
class Falls:
    """A (possibly nested) FAmily of Line Segments.

    Parameters
    ----------
    l:
        Left index of the first block (inclusive).
    r:
        Right index of the first block (inclusive); ``r >= l``.
    s:
        Stride between consecutive block left indices.  Must satisfy
        ``s >= r - l + 1`` whenever ``n > 1`` so that blocks do not
        overlap.  For ``n == 1`` the stride is irrelevant; it is
        normalised to the block length.
    n:
        Number of blocks; ``n >= 1``.
    inner:
        Inner FALLS, relative to each block's left index, each contained
        in ``[0, r - l]``.  Empty for a *leaf* FALLS, which selects every
        byte of each block.
    """

    l: int
    r: int
    s: int
    n: int
    inner: Tuple["Falls", ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "inner", _as_falls_tuple(self.inner))
        if self.l < 0:
            raise ValueError(f"l must be >= 0, got {self.l}")
        if self.r < self.l:
            raise ValueError(f"r ({self.r}) must be >= l ({self.l})")
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        block_len = self.r - self.l + 1
        if self.n == 1:
            # Stride of a single block is meaningless; canonicalise it so
            # that structurally equal FALLS compare equal.
            object.__setattr__(self, "s", block_len)
        else:
            if self.s < block_len:
                raise ValueError(
                    f"stride {self.s} smaller than block length {block_len} "
                    f"with n={self.n} would overlap blocks"
                )
        validate_inner_layout(self.inner, block_len)

    # -- basic geometry ----------------------------------------------------

    @property
    def block_length(self) -> int:
        """Number of bytes spanned by one block, ``r - l + 1``."""
        return self.r - self.l + 1

    @property
    def extent_stop(self) -> int:
        """Last index covered by the FALLS footprint (inclusive)."""
        return self.l + (self.n - 1) * self.s + self.block_length - 1

    @property
    def span(self) -> int:
        """Total footprint length from ``l`` to the end of the last block."""
        return self.extent_stop - self.l + 1

    @property
    def is_leaf(self) -> bool:
        return not self.inner

    @property
    def is_contiguous(self) -> bool:
        """True when the FALLS selects one contiguous run of bytes."""
        if self.inner:
            if len(self.inner) != 1:
                return False
            child = self.inner[0]
            if not child.is_contiguous:
                return False
            if not (child.l == 0 and child.extent_stop == self.block_length - 1):
                return False
            # Inner covers the whole block contiguously; fall through to the
            # outer-level contiguity check.
        if self.n == 1:
            return True
        return self.s == self.block_length

    # -- derived quantities --------------------------------------------------

    def size(self) -> int:
        """Number of bytes selected (SIZE in the paper)."""
        if self.is_leaf:
            return self.n * self.block_length
        return self.n * sum(f.size() for f in self.inner)

    def height(self) -> int:
        """Tree height: 1 for a leaf FALLS."""
        if self.is_leaf:
            return 1
        return 1 + max(f.height() for f in self.inner)

    def has_uniform_depth(self) -> bool:
        """True when every leaf of the tree sits at the same depth."""
        if self.is_leaf:
            return True
        heights = {f.height() for f in self.inner}
        return len(heights) == 1 and all(f.has_uniform_depth() for f in self.inner)

    def block_starts(self) -> Iterator[int]:
        """Left index of each block, in increasing order."""
        for k in range(self.n):
            yield self.l + k * self.s

    def leaf_segments(self) -> Iterator[LineSegment]:
        """All selected byte ranges, in increasing order.

        For large FALLS prefer :func:`repro.core.segments.leaf_segment_arrays`,
        which produces the same ranges as NumPy arrays without a Python-level
        loop per segment.
        """
        if self.is_leaf:
            for start in self.block_starts():
                yield LineSegment(start, start + self.block_length - 1)
            return
        for start in self.block_starts():
            for f in self.inner:
                for seg in f.leaf_segments():
                    yield seg.shifted(start)

    def leaf_segment_count(self) -> int:
        """Number of leaf segments (fragments) selected by this FALLS."""
        if self.is_leaf:
            return self.n
        return self.n * sum(f.leaf_segment_count() for f in self.inner)

    def shifted(self, delta: int) -> "Falls":
        """The same FALLS translated by ``delta`` bytes (inner unchanged)."""
        return Falls(self.l + delta, self.r + delta, self.s, self.n, self.inner)

    def with_inner(self, inner: Sequence["Falls"]) -> "Falls":
        return Falls(self.l, self.r, self.s, self.n, tuple(inner))

    def flat(self) -> "Falls":
        """The outer FALLS alone, selecting every byte of each block."""
        return Falls(self.l, self.r, self.s, self.n)

    # -- display -------------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_leaf:
            return f"({self.l},{self.r},{self.s},{self.n})"
        inner = ",".join(str(f) for f in self.inner)
        return f"({self.l},{self.r},{self.s},{self.n},{{{inner}}})"


def validate_inner_layout(inner: Sequence[Falls], block_length: int) -> None:
    """Check that ``inner`` is a legal inner-FALLS layout for a block.

    Inner FALLS must lie inside ``[0, block_length - 1]`` and be sorted by
    non-decreasing left index.  Footprints are allowed to interleave —
    intersection results are naturally interleaved families with a common
    lcm stride — but the byte sets they select must be disjoint, which is
    guaranteed by construction and checked against the index-set oracle in
    the test suite rather than here (an exact check would require
    materialising the byte sets).
    """
    prev_l = -1
    for f in inner:
        if f.l < prev_l:
            raise ValueError(
                f"inner FALLS must be sorted by non-decreasing l; "
                f"got l={f.l} after l={prev_l}"
            )
        if f.extent_stop > block_length - 1:
            raise ValueError(
                f"inner FALLS {f} exceeds block length {block_length}"
            )
        prev_l = f.l


def is_ordered_layout(falls: Sequence[Falls]) -> bool:
    """True when footprints are non-interleaved (each FALLS' footprint ends
    before the next begins) at this level and recursively inside.

    This is the structural property the paper's MAP-AUX relies on to find
    the FALLS containing an offset by binary search on left indices;
    partition elements must satisfy it, intersection results need not.
    """
    prev_stop = -1
    for f in falls:
        if f.l <= prev_stop:
            return False
        if not is_ordered_layout(f.inner):
            return False
        prev_stop = f.extent_stop
    return True


def falls_from_segment(segment: LineSegment) -> Falls:
    """Represent a single line segment as a FALLS, as in the paper:
    ``(l, r)`` becomes ``(l, r, r - l + 1, 1)``."""
    return Falls(segment.start, segment.stop, segment.length, 1)


@dataclass(frozen=True)
class FallsSet:
    """An ordered set of nested FALLS describing one partition element.

    A subfile or a view is described by a set of nested FALLS (paper §5).
    The FALLS are kept sorted by non-decreasing left index.  Footprints may
    interleave (intersection results usually do); elements used as
    partition elements with the MAP functions must additionally satisfy
    :meth:`is_ordered`, which :class:`repro.core.partition.Partition`
    enforces.
    """

    falls: Tuple[Falls, ...]

    def __init__(self, falls: Iterable[Falls]):
        object.__setattr__(self, "falls", tuple(falls))
        prev_l = -1
        for f in self.falls:
            if not isinstance(f, Falls):
                raise TypeError(f"FallsSet entries must be Falls, got {type(f)!r}")
            if f.l < prev_l:
                raise ValueError(
                    "FALLS in a set must be sorted by non-decreasing l"
                )
            prev_l = f.l

    def __iter__(self) -> Iterator[Falls]:
        return iter(self.falls)

    def __len__(self) -> int:
        return len(self.falls)

    def __getitem__(self, idx: int) -> Falls:
        return self.falls[idx]

    def __bool__(self) -> bool:
        return bool(self.falls)

    @property
    def is_empty(self) -> bool:
        return not self.falls

    def size(self) -> int:
        """Total number of bytes selected by all FALLS of the set."""
        return sum(f.size() for f in self.falls)

    def height(self) -> int:
        if not self.falls:
            return 0
        return max(f.height() for f in self.falls)

    @property
    def extent_stop(self) -> int:
        if not self.falls:
            return -1
        return max(f.extent_stop for f in self.falls)

    @property
    def extent_start(self) -> int:
        if not self.falls:
            return 0
        return self.falls[0].l

    def is_ordered(self) -> bool:
        """True when footprints never interleave, at any nesting level.

        Required of partition elements so MAP-AUX can locate the FALLS
        containing an offset by binary search on left indices.
        """
        return is_ordered_layout(self.falls)

    def leaf_segments(self) -> Iterator[LineSegment]:
        """Selected byte ranges; globally sorted only for ordered sets."""
        if self.is_ordered():
            yield from itertools.chain.from_iterable(
                f.leaf_segments() for f in self.falls
            )
            return
        yield from sorted(
            itertools.chain.from_iterable(f.leaf_segments() for f in self.falls),
            key=lambda seg: seg.start,
        )

    def leaf_segment_count(self) -> int:
        return sum(f.leaf_segment_count() for f in self.falls)

    def is_contiguous(self) -> bool:
        """True when the whole set selects one contiguous byte run."""
        segs = list(self.leaf_segments())
        if not segs:
            return True
        for prev, cur in zip(segs, segs[1:]):
            if cur.start != prev.stop + 1:
                return False
        return True

    def shifted(self, delta: int) -> "FallsSet":
        return FallsSet(f.shifted(delta) for f in self.falls)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "{" + ",".join(str(f) for f in self.falls) + "}"


EMPTY_SET = FallsSet(())
