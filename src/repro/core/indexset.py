"""Reference semantics: explicit byte-index sets for FALLS structures.

Every structural algorithm in :mod:`repro.core` (mapping, cut,
intersection, projection) has a brute-force counterpart here that
materialises the exact set of byte offsets a structure selects.  The test
suite asserts that the fast structural algorithms agree with these
oracles; the oracles themselves are deliberately simple enough to audit
by eye against the paper's definitions.

These functions materialise one NumPy ``int64`` index per selected byte,
so they are only suitable for small instances (tests, examples, paper
figures) — the production code paths never call them.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .falls import Falls, FallsSet

__all__ = [
    "falls_indices",
    "falls_set_indices",
    "pattern_element_indices",
    "indices_to_offsets_map",
]


def falls_indices(falls: Falls) -> np.ndarray:
    """All byte offsets selected by a nested FALLS, sorted ascending."""
    block_starts = falls.l + falls.s * np.arange(falls.n, dtype=np.int64)
    if falls.is_leaf:
        within = np.arange(falls.block_length, dtype=np.int64)
    else:
        within = falls_set_indices(falls.inner)
    return np.sort((block_starts[:, None] + within[None, :]).reshape(-1))


def falls_set_indices(falls_set: Iterable[Falls]) -> np.ndarray:
    """All byte offsets selected by a set of nested FALLS, sorted."""
    parts = [falls_indices(f) for f in falls_set]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.concatenate(parts))


def pattern_element_indices(
    element: FallsSet,
    pattern_size: int,
    displacement: int,
    file_length: int,
) -> np.ndarray:
    """File offsets belonging to a partition element of a tiled pattern.

    The partitioning pattern repeats with period ``pattern_size`` starting
    at ``displacement`` (paper §5); offsets beyond ``file_length`` are
    dropped, as are offsets before the displacement.
    """
    if file_length <= displacement:
        return np.empty(0, dtype=np.int64)
    base = falls_set_indices(element)
    reps = -(-(file_length - displacement) // pattern_size)  # ceil div
    shifts = displacement + pattern_size * np.arange(reps, dtype=np.int64)
    tiled = (shifts[:, None] + base[None, :]).reshape(-1)
    return tiled[tiled < file_length]


def indices_to_offsets_map(indices: np.ndarray) -> dict[int, int]:
    """Map each file offset to its rank within the element's linear space.

    This is the brute-force definition of the paper's ``MAP`` function:
    the k-th smallest offset of an element maps to element-space
    offset k.
    """
    return {int(off): pos for pos, off in enumerate(indices)}
