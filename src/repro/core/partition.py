"""The parallel file model: partitioning patterns (paper §5).

A file is a linear sequence of bytes described by a *displacement* (an
absolute byte position where the partitioning starts) and a
*partitioning pattern*: a union of sets of nested FALLS, each set
defining one partition element (a subfile when the partition is
physical, a view when it is logical).  The pattern maps every byte to a
``(element, offset-within-element)`` pair and is applied repeatedly
throughout the linear space of the file, starting at the displacement.

The pattern must tile a contiguous region without gaps or overlaps; the
size of the pattern is the sum of the sizes of its elements.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .falls import Falls, FallsSet
from .segments import leaf_segment_arrays_set

__all__ = ["Partition", "PartitionError"]


class PartitionError(ValueError):
    """Raised when a partitioning pattern is structurally invalid."""


def _falls_canonical(f: Falls) -> list:
    """The compact array form ``[l, r, s, n, [inner...]]`` — identical to
    :func:`repro.core.serialize.falls_to_obj` (kept local to avoid an
    import cycle), so the structural key is stable across the JSON
    round-trip."""
    base: list = [f.l, f.r, f.s, f.n]
    if f.inner:
        base.append([_falls_canonical(g) for g in f.inner])
    return base


@dataclass(frozen=True)
class Partition:
    """A partitioning pattern: displacement + one FALLS set per element.

    Parameters
    ----------
    elements:
        One :class:`FallsSet` per partition element (subfile or view).
        Every element must be *ordered* (non-interleaved footprints at
        every nesting level) so the MAP functions can locate offsets by
        binary search, exactly as the paper's MAP-AUX assumes.
    displacement:
        Absolute byte position of the start of the first pattern
        instance.
    validate:
        When true (the default), check that the elements exactly tile
        ``[0, size)`` with no gaps and no overlaps.
    """

    elements: Tuple[FallsSet, ...]
    displacement: int = 0
    size: int = field(init=False)

    def __init__(
        self,
        elements: Iterable[FallsSet | Sequence[Falls] | Falls],
        displacement: int = 0,
        validate: bool = True,
    ):
        normalised: List[FallsSet] = []
        for e in elements:
            if isinstance(e, FallsSet):
                normalised.append(e)
            elif isinstance(e, Falls):
                normalised.append(FallsSet((e,)))
            else:
                normalised.append(FallsSet(e))
        object.__setattr__(self, "elements", tuple(normalised))
        object.__setattr__(self, "displacement", int(displacement))
        if self.displacement < 0:
            raise PartitionError(f"displacement must be >= 0, got {displacement}")
        if not self.elements:
            raise PartitionError("a partition needs at least one element")
        size = sum(e.size() for e in self.elements)
        object.__setattr__(self, "size", size)
        if size <= 0:
            raise PartitionError("partition elements select no bytes")
        if validate:
            self._validate()

    # -- validation ----------------------------------------------------------

    def _validate(self) -> None:
        for idx, e in enumerate(self.elements):
            if not e.is_ordered():
                raise PartitionError(
                    f"element {idx} has interleaved FALLS footprints; "
                    "partition elements must be ordered for MAP to work"
                )
        starts, lengths = self._all_segments()
        order = np.argsort(starts, kind="stable")
        starts = starts[order]
        stops = starts + lengths[order] - 1
        if starts.size == 0:
            raise PartitionError("partition selects no bytes")
        if starts[0] != 0:
            raise PartitionError(
                f"pattern must start at offset 0, first byte is {int(starts[0])}"
            )
        if np.any(starts[1:] <= stops[:-1]):
            bad = int(np.flatnonzero(starts[1:] <= stops[:-1])[0])
            raise PartitionError(
                f"partition elements overlap near offset {int(starts[bad + 1])}"
            )
        if np.any(starts[1:] != stops[:-1] + 1):
            bad = int(np.flatnonzero(starts[1:] != stops[:-1] + 1)[0])
            raise PartitionError(
                f"partition pattern has a gap after offset {int(stops[bad])}"
            )
        if int(stops[-1]) != self.size - 1:
            raise PartitionError(
                f"pattern covers [0, {int(stops[-1])}] but element sizes sum "
                f"to {self.size}"
            )

    def _all_segments(self) -> Tuple[np.ndarray, np.ndarray]:
        parts = [leaf_segment_arrays_set(e.falls) for e in self.elements]
        starts = np.concatenate([p[0] for p in parts])
        lengths = np.concatenate([p[1] for p in parts])
        return starts, lengths

    # -- accessors -----------------------------------------------------------

    @property
    def num_elements(self) -> int:
        return len(self.elements)

    def element_size(self, idx: int) -> int:
        return self.elements[idx].size()

    def element_length(self, idx: int, file_length: int) -> int:
        """Bytes of a file of ``file_length`` owned by element ``idx``.

        Accounts for the displacement (bytes before it belong to no
        element) and for a final partial pattern instance.
        """
        if file_length <= self.displacement:
            return 0
        span = file_length - self.displacement
        full, rem = divmod(span, self.size)
        total = full * self.element_size(idx)
        if rem:
            from .mapping import count_below  # local import avoids a cycle

            total += count_below(self.elements[idx], rem)
        return total

    def structure_key(self) -> str:
        """A stable content hash identifying this partition structurally.

        Two partitions get the same key exactly when their displacement
        and FALLS trees are identical (the canonical form mirrors the
        JSON serialization, so keys survive a
        :func:`repro.core.serialize.partition_to_json` round-trip and are
        comparable across processes).  This is the cache key the
        process-wide redistribution plan cache
        (:mod:`repro.redistribution.plan_cache`) uses to amortise the
        paper's ``t_i`` across every consumer of the same pattern pair.
        """
        cached = self.__dict__.get("_structure_key")
        if cached is None:
            payload = json.dumps(
                [
                    self.displacement,
                    [
                        [_falls_canonical(f) for f in e.falls]
                        for e in self.elements
                    ],
                ],
                separators=(",", ":"),
            )
            cached = hashlib.sha256(payload.encode("ascii")).hexdigest()
            # Frozen dataclass: memoise through __dict__ like
            # functools.cached_property does.
            self.__dict__["_structure_key"] = cached
        return cached

    def element_owning(self, x: int) -> Tuple[int, int]:
        """The ``(element index, element offset)`` pair owning file offset
        ``x`` (paper §5: the pattern maps each byte of the file on a pair
        subfile/position-within-subfile)."""
        if x < self.displacement:
            raise PartitionError(
                f"offset {x} precedes the displacement {self.displacement}"
            )
        from .mapping import map_offset

        rem = (x - self.displacement) % self.size
        for idx, element in enumerate(self.elements):
            for seg in element.leaf_segments():
                if seg.start <= rem <= seg.stop:
                    return idx, map_offset(self, idx, x)
        raise PartitionError(f"offset {x} not covered by any element")  # pragma: no cover

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = "; ".join(str(e) for e in self.elements)
        return f"Partition(disp={self.displacement}, size={self.size}, [{inner}])"
