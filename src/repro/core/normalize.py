"""Normalisation helpers: segment-run compression and tree shaping.

Two families of utilities live here:

* **Run compression** — turning a sorted list of disjoint byte segments
  back into a compact list of flat FALLS by detecting maximal arithmetic
  runs of equally sized segments.  The intersection and projection
  algorithms produce their results as segment lists per period; this is
  how those lists become FALLS again.

* **Tree shaping** — the paper's nested intersection algorithm "assumes,
  without loss of generality, that the nested FALLS trees have the same
  height.  If they don't, the height of the shorter tree can be
  transformed by adding outer FALLS" (§7).  ``pad_to_height`` and
  ``equalize_heights`` implement that transformation with semantically
  neutral wrappers (a trivial inner FALLS covering a whole block selects
  exactly the same bytes).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .falls import Falls, FallsSet
from .segments import SegmentArrays, merge_segment_arrays

__all__ = [
    "compress_segments",
    "falls_set_from_segments",
    "coalesced_falls_set",
    "pad_to_height",
    "equalize_set_heights",
    "trivial_inner",
]


def compress_segments(segs: SegmentArrays) -> List[Falls]:
    """Compress sorted disjoint segments into flat FALLS greedily.

    Maximal runs of equally long segments with a constant stride become a
    single FALLS; everything else becomes singleton FALLS.  The greedy
    left-to-right grouping is not guaranteed minimal, but it is exact for
    the regular patterns produced by array distributions and it preserves
    byte-for-byte semantics for arbitrary input.
    """
    starts_arr, lengths_arr = segs
    n = int(starts_arr.size)
    if n == 0:
        return []
    starts = starts_arr.tolist()
    lengths = lengths_arr.tolist()
    out: List[Falls] = []
    i = 0
    while i < n:
        length = lengths[i]
        j = i + 1
        if j < n and lengths[j] == length:
            stride = starts[j] - starts[i]
            while (
                j + 1 < n
                and lengths[j + 1] == length
                and starts[j + 1] - starts[j] == stride
            ):
                j += 1
            out.append(Falls(starts[i], starts[i] + length - 1, stride, j - i + 1))
            i = j + 1
        else:
            out.append(Falls(starts[i], starts[i] + length - 1, length, 1))
            i += 1
    return out


def falls_set_from_segments(segs: SegmentArrays) -> FallsSet:
    """Build a :class:`FallsSet` from sorted disjoint segments."""
    return FallsSet(compress_segments(segs))


def coalesced_falls_set(segs: SegmentArrays) -> FallsSet:
    """Like :func:`falls_set_from_segments`, but first merges adjacent
    segments so the result uses maximal contiguous runs."""
    return falls_set_from_segments(merge_segment_arrays(segs))


def trivial_inner(block_length: int, height: int) -> Falls:
    """A semantically neutral FALLS selecting all of ``[0, block_length)``
    as a degenerate tree of the requested height."""
    if height < 1:
        raise ValueError(f"height must be >= 1, got {height}")
    if height == 1:
        return Falls(0, block_length - 1, block_length, 1)
    return Falls(
        0,
        block_length - 1,
        block_length,
        1,
        (trivial_inner(block_length, height - 1),),
    )


def pad_to_height(falls: Falls, height: int) -> Falls:
    """Return an equivalent FALLS whose tree has exactly ``height`` levels
    on every root-to-leaf path.

    Leaves shallower than ``height`` gain trivial inner FALLS covering the
    whole block; the selected byte set is unchanged.
    """
    if height < falls.height():
        raise ValueError(
            f"cannot pad FALLS of height {falls.height()} down to {height}"
        )
    if height == 1:
        return falls
    if falls.is_leaf:
        return falls.with_inner((trivial_inner(falls.block_length, height - 1),))
    return falls.with_inner(tuple(pad_to_height(f, height - 1) for f in falls.inner))


def equalize_set_heights(
    a: Sequence[Falls], b: Sequence[Falls]
) -> Tuple[Tuple[Falls, ...], Tuple[Falls, ...], int]:
    """Pad every tree in both sets to the common maximum height.

    Returns the two padded sets and the common height.  Empty sets are
    passed through unchanged (their height is irrelevant — intersection
    with an empty set is empty).
    """
    heights = [f.height() for f in a] + [f.height() for f in b]
    if not heights:
        return tuple(a), tuple(b), 0
    h = max(heights)
    pa = tuple(pad_to_height(f, h) for f in a)
    pb = tuple(pad_to_height(f, h) for f in b)
    return pa, pb, h
