"""Set algebra on FALLS families.

The paper's machinery needs only intersection, but a usable library
wants the rest of the boolean algebra: complement (the bytes of a
pattern *not* owned by an element — how the remaining elements of a
partition are often defined), union and difference of disjoint/arbitrary
selections, and byte-set equality (two structurally different FALLS can
select the same bytes; equality must compare semantics, not syntax).

Everything here works on the leaf-segment representation and returns
run-compressed FALLS, so results are exact and reasonably compact even
when the inputs' nesting cannot be preserved.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from .falls import Falls, FallsSet
from .normalize import falls_set_from_segments
from .partition import Partition
from .segments import (
    SegmentArrays,
    leaf_segment_arrays_set,
    merge_segment_arrays,
)

__all__ = [
    "complement",
    "union",
    "difference",
    "same_bytes",
    "partition_from_elements",
]


def _segs(falls: Iterable[Falls]) -> SegmentArrays:
    return merge_segment_arrays(leaf_segment_arrays_set(falls))


def _subtract(a: SegmentArrays, b: SegmentArrays) -> SegmentArrays:
    """Segments of ``a`` minus segments of ``b`` (both sorted/merged)."""
    a_starts, a_lengths = a
    if a_starts.size == 0:
        return a
    b_starts, b_lengths = b
    out_starts: List[int] = []
    out_stops: List[int] = []
    bi = 0
    b_list = list(zip(b_starts.tolist(), (b_starts + b_lengths - 1).tolist()))
    for s, ln in zip(a_starts.tolist(), a_lengths.tolist()):
        stop = s + ln - 1
        cur = s
        while bi < len(b_list) and b_list[bi][1] < cur:
            bi += 1
        bj = bi
        while cur <= stop:
            if bj >= len(b_list) or b_list[bj][0] > stop:
                out_starts.append(cur)
                out_stops.append(stop)
                break
            bs, be = b_list[bj]
            if bs > cur:
                out_starts.append(cur)
                out_stops.append(bs - 1)
            cur = max(cur, be + 1)
            bj += 1
    starts = np.array(out_starts, dtype=np.int64)
    stops = np.array(out_stops, dtype=np.int64)
    return starts, stops - starts + 1


def complement(
    falls: Iterable[Falls] | FallsSet, within: int
) -> FallsSet:
    """The bytes of ``[0, within)`` not selected by ``falls``.

    This is how "the rest of the pattern" is built when defining a
    partition by one interesting element plus filler.
    """
    if within < 1:
        raise ValueError(f"'within' must be >= 1, got {within}")
    falls_list = list(falls.falls if isinstance(falls, FallsSet) else falls)
    whole = (
        np.array([0], dtype=np.int64),
        np.array([within], dtype=np.int64),
    )
    segs = _segs(falls_list)
    if segs[0].size and int(segs[0][-1] + segs[1][-1]) > within:
        raise ValueError(
            f"selection reaches byte {int(segs[0][-1] + segs[1][-1] - 1)}, "
            f"outside [0, {within})"
        )
    return falls_set_from_segments(_subtract(whole, segs))


def union(*families: Iterable[Falls] | FallsSet) -> FallsSet:
    """Union of byte selections (inputs need not be disjoint)."""
    all_falls: List[Falls] = []
    for fam in families:
        all_falls.extend(fam.falls if isinstance(fam, FallsSet) else fam)
    if not all_falls:
        return FallsSet(())
    starts, lengths = leaf_segment_arrays_set(all_falls)
    order = np.argsort(starts, kind="stable")
    return falls_set_from_segments(
        merge_segment_arrays((starts[order], lengths[order]))
    )


def difference(
    a: Iterable[Falls] | FallsSet, b: Iterable[Falls] | FallsSet
) -> FallsSet:
    """Bytes selected by ``a`` but not by ``b``."""
    fa = list(a.falls if isinstance(a, FallsSet) else a)
    fb = list(b.falls if isinstance(b, FallsSet) else b)
    return falls_set_from_segments(_subtract(_segs(fa), _segs(fb)))


def same_bytes(
    a: Iterable[Falls] | FallsSet, b: Iterable[Falls] | FallsSet
) -> bool:
    """Do two (possibly structurally different) families select exactly
    the same bytes?"""
    fa = list(a.falls if isinstance(a, FallsSet) else a)
    fb = list(b.falls if isinstance(b, FallsSet) else b)
    sa, sb = _segs(fa), _segs(fb)
    return (
        sa[0].size == sb[0].size
        and bool(np.all(sa[0] == sb[0]))
        and bool(np.all(sa[1] == sb[1]))
    )


def partition_from_elements(
    elements: Sequence[Iterable[Falls] | FallsSet],
    displacement: int = 0,
    fill_last: bool = False,
) -> Partition:
    """Build a partition from explicit elements, optionally adding a
    final element owning every unclaimed byte of the pattern.

    With ``fill_last=True`` the pattern size is taken from the maximum
    extent of the given elements and a complement element is appended —
    the convenient way to write "this view, and everything else".
    """
    sets: List[FallsSet] = [
        e if isinstance(e, FallsSet) else FallsSet(tuple(e)) for e in elements
    ]
    if fill_last:
        size = max((s.extent_stop + 1 for s in sets if s), default=0)
        rest = complement(union(*sets), size)
        if not rest.is_empty:
            sets.append(rest)
    return Partition(sets, displacement=displacement)
