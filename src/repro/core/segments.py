"""Vectorised leaf-segment enumeration for (nested) FALLS.

The structural algorithms (intersection, projection, gather/scatter) all
operate on the *leaf segments* of a nested FALLS — the maximal contiguous
byte ranges it selects.  Enumerating them one ``LineSegment`` at a time is
fine for small patterns but far too slow for the benchmark workloads, so
this module produces them as NumPy ``(starts, lengths)`` array pairs using
broadcasting: the starts of a nested FALLS are the outer block starts
crossed with the inner starts (outer[:, None] + inner[None, :]).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .falls import Falls, LineSegment

__all__ = [
    "SegmentArrays",
    "clip_segments",
    "leaf_segment_arrays",
    "leaf_segment_arrays_set",
    "merge_segment_arrays",
    "segments_to_linesegments",
    "intersect_segment_arrays",
    "tile_segment_arrays",
]

#: ``(starts, lengths)`` pair of equal-length int64 arrays, sorted by start.
SegmentArrays = Tuple[np.ndarray, np.ndarray]

_EMPTY = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))


def _empty() -> SegmentArrays:
    return (_EMPTY[0].copy(), _EMPTY[1].copy())


def leaf_segment_arrays(falls: Falls) -> SegmentArrays:
    """All leaf segments of ``falls`` as ``(starts, lengths)`` arrays.

    Starts are absolute in the coordinate space of ``falls``; the arrays
    are sorted by start.
    """
    block_starts = falls.l + falls.s * np.arange(falls.n, dtype=np.int64)
    if falls.is_leaf:
        lengths = np.full(falls.n, falls.block_length, dtype=np.int64)
        return block_starts, lengths
    inner_starts, inner_lengths = leaf_segment_arrays_set(falls.inner)
    starts = (block_starts[:, None] + inner_starts[None, :]).reshape(-1)
    lengths = np.broadcast_to(
        inner_lengths[None, :], (falls.n, inner_lengths.shape[0])
    ).reshape(-1)
    return _sorted_by_start((starts, np.ascontiguousarray(lengths)))


def _sorted_by_start(segs: SegmentArrays) -> SegmentArrays:
    starts, lengths = segs
    if starts.size > 1 and np.any(starts[1:] < starts[:-1]):
        order = np.argsort(starts, kind="stable")
        return starts[order], lengths[order]
    return starts, lengths


def leaf_segment_arrays_set(falls_set: Iterable[Falls]) -> SegmentArrays:
    """Leaf segments of a set of FALLS, sorted by start.

    For ordered (non-interleaved) sets the concatenation is already
    sorted; interleaved families — typical of intersection results — are
    sorted explicitly.
    """
    parts = [leaf_segment_arrays(f) for f in falls_set]
    if not parts:
        return _empty()
    starts = np.concatenate([p[0] for p in parts])
    lengths = np.concatenate([p[1] for p in parts])
    return _sorted_by_start((starts, lengths))


def clip_segments(
    starts: np.ndarray, lengths: np.ndarray, lo: int, hi: int
) -> SegmentArrays:
    """Clip segments to the inclusive window ``[lo, hi]``.

    Segments entirely outside the window are dropped; boundary segments
    are shortened.  Starts remain absolute (not re-based).
    """
    if hi < lo or starts.size == 0:
        return _empty()
    stops = starts + lengths - 1
    keep = (stops >= lo) & (starts <= hi)
    s = np.maximum(starts[keep], lo)
    e = np.minimum(stops[keep], hi)
    return s, e - s + 1


def segments_to_linesegments(segs: SegmentArrays) -> List[LineSegment]:
    starts, lengths = segs
    return [
        LineSegment(int(a), int(a + ln - 1)) for a, ln in zip(starts, lengths)
    ]


def merge_segment_arrays(segs: SegmentArrays) -> SegmentArrays:
    """Coalesce adjacent/overlapping segments of a start-sorted list.

    Segments may overlap or be fully contained in one another (unions of
    arbitrary families produce both), so runs are split against the
    *running maximum* of the stops, not just the previous segment's stop.
    """
    starts, lengths = segs
    if starts.size == 0:
        return _empty()
    stops = starts + lengths - 1
    # A new run begins wherever a segment starts beyond everything seen
    # so far (running max handles contained segments).
    seen_stop = np.maximum.accumulate(stops)
    breaks = np.empty(starts.size, dtype=bool)
    breaks[0] = True
    np.greater(starts[1:], seen_stop[:-1] + 1, out=breaks[1:])
    run_starts = starts[breaks]
    run_stops = np.maximum.reduceat(stops, np.flatnonzero(breaks))
    return run_starts, run_stops - run_starts + 1


def intersect_segment_arrays(a: SegmentArrays, b: SegmentArrays) -> SegmentArrays:
    """Intersection of two sorted, disjoint segment lists.

    Vectorised sweep: for each segment of ``a``, locate the range of
    segments of ``b`` it can overlap with ``searchsorted``, then emit the
    pairwise overlaps.  Output is sorted by start.
    """
    a_starts, a_lengths = a
    b_starts, b_lengths = b
    if a_starts.size == 0 or b_starts.size == 0:
        return _empty()
    a_stops = a_starts + a_lengths - 1
    b_stops = b_starts + b_lengths - 1
    # First b segment whose stop >= a.start, last b segment whose start <= a.stop.
    first = np.searchsorted(b_stops, a_starts, side="left")
    last = np.searchsorted(b_starts, a_stops, side="right")
    counts = last - first
    total = int(counts.sum())
    if total == 0:
        return _empty()
    a_idx = np.repeat(np.arange(a_starts.size, dtype=np.int64), counts)
    # Offsets of each pair inside its a-run.
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    b_idx = np.repeat(first, counts) + offsets
    lo = np.maximum(a_starts[a_idx], b_starts[b_idx])
    hi = np.minimum(a_stops[a_idx], b_stops[b_idx])
    keep = lo <= hi
    lo = lo[keep]
    hi = hi[keep]
    return lo, hi - lo + 1


def tile_segment_arrays(
    segs: SegmentArrays, period: int, copies: int, offset: int = 0
) -> SegmentArrays:
    """Repeat a one-period segment list ``copies`` times with ``period``
    spacing, translating the whole result by ``offset``."""
    starts, lengths = segs
    if copies < 0:
        raise ValueError(f"copies must be >= 0, got {copies}")
    if copies == 0 or starts.size == 0:
        return _empty()
    shifts = period * np.arange(copies, dtype=np.int64)
    tiled_starts = (shifts[:, None] + starts[None, :]).reshape(-1) + offset
    tiled_lengths = np.broadcast_to(
        lengths[None, :], (copies, lengths.shape[0])
    ).reshape(-1)
    return tiled_starts, np.ascontiguousarray(tiled_lengths)


def total_bytes(segs: SegmentArrays) -> int:
    """Sum of segment lengths."""
    return int(segs[1].sum()) if segs[1].size else 0


def segments_from_pairs(pairs: Sequence[Tuple[int, int]]) -> SegmentArrays:
    """Build segment arrays from ``(start, stop_inclusive)`` pairs."""
    if not pairs:
        return _empty()
    starts = np.array([p[0] for p in pairs], dtype=np.int64)
    stops = np.array([p[1] for p in pairs], dtype=np.int64)
    if np.any(stops < starts):
        raise ValueError("segment stop must be >= start")
    if np.any(starts[1:] <= stops[:-1]):
        raise ValueError("segments must be sorted and disjoint")
    return starts, stops - starts + 1
