"""Intersection projection (paper §7).

The intersection of two partition elements is expressed in *file* linear
space.  To actually move data, each side needs the common bytes expressed
in its **own** linear space: the compute node keeps ``PROJ_V(V ∩ S)`` (to
gather from the view buffer) and the I/O node keeps ``PROJ_S(V ∩ S)`` (to
scatter into the subfile).  A projection is computed by pushing every
leaf segment of the intersection through the MAP function of the target
element; because every intersection segment lies inside a single leaf
segment of the element, MAP is affine on it and the image is again a
segment, so the projection of a FALLS family is a FALLS family.

Projections of periodic intersections are periodic too: over one
intersection period (lcm of the pattern sizes) the element owns a fixed
number of bytes, so in element space the projection repeats with period
``(lcm / pattern size) * element size``.
"""

from __future__ import annotations

import numpy as np

from .falls import FallsSet
from .mapping import ElementMapper
from .normalize import falls_set_from_segments
from .partition import Partition
from .periodic import PeriodicFallsSet

__all__ = ["project"]


def project(
    intersection: PeriodicFallsSet,
    partition: Partition,
    element: int,
    mapper: ElementMapper | None = None,
) -> PeriodicFallsSet:
    """PROJ: re-express an intersection in one element's linear space.

    Parameters
    ----------
    intersection:
        Result of :func:`repro.core.intersect_nested.intersect_elements`
        for a pair that includes ``(partition, element)``.  Its byte set
        must be a subset of the element's byte set.
    partition, element:
        The side to project onto.
    mapper:
        Optional pre-built :class:`ElementMapper` for the element (a view
        set builds each mapper once and reuses it across projections).
    """
    if intersection.is_empty:
        return PeriodicFallsSet(FallsSet(()), 0, 1)
    if mapper is None:
        mapper = ElementMapper(partition, element)

    lo = intersection.displacement
    hi = lo + intersection.period - 1
    starts, lengths = intersection.segments_in(lo, hi)
    ranks = mapper.map_many(starts)

    # The projected period in element space: the element owns
    # size_S bytes per pattern period, and the intersection period spans
    # lcm / size_P pattern periods.
    if intersection.period % partition.size != 0:
        raise ValueError(
            "intersection period is not a multiple of the partition size; "
            "was the intersection computed against this partition?"
        )
    out_period = (intersection.period // partition.size) * partition.element_size(
        element
    )

    # Re-base so the projection's own displacement marks where its
    # periodicity starts in element space.
    out_disp = int(mapper.map_many(np.array([lo], dtype=np.int64), mode="next")[0])
    rel = ranks - out_disp
    if rel.size and (int(rel[0]) < 0 or int(rel[-1] + lengths[-1] - 1) >= out_period):
        raise ValueError(
            "projected segments escape the projected period; the "
            "intersection is not a subset of the element"
        )
    falls = falls_set_from_segments((rel, lengths))
    return PeriodicFallsSet(falls, out_disp, out_period)
