"""The compute-node side of Clusterfile data operations (paper §8.1).

The actual pipeline — map the access extremities (``t_m``), decide
between the contiguous fast path and GATHER (``t_g``), issue the
requests and drive the exchange through the discrete-event simulation
(``t_w``) — lives in the unified I/O engine
(:mod:`repro.clusterfile.engine`); this module keeps the historical
entry points.  ``t_i`` (paid at view set), ``t_m`` and ``t_g`` are
*measured* wall times of the real algorithms; message and device times
are *modelled* (see DESIGN.md §3).  All timings are recorded as spans
(:mod:`repro.obs`) and the Table 1/2 breakdowns are derived from the
span tree.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..faults import FaultInjector, RetryPolicy
from ..simulation.cluster import Cluster
from .engine import IOEngine, OperationResult, WriteRequest
from .file_model import ClusterFile

__all__ = ["WriteRequest", "OperationResult", "parallel_write", "parallel_read"]


def parallel_write(
    cluster: Cluster,
    cfile: ClusterFile,
    requests: Sequence[WriteRequest],
    to_disk: bool = False,
    injector: Optional[FaultInjector] = None,
    retry_policy: Optional[RetryPolicy] = None,
    backend=None,
) -> OperationResult:
    """All compute nodes write their view intervals concurrently.

    Returns per-compute-node :class:`WriteBreakdown` (Table 1 columns)
    and per-I/O-node :class:`ScatterBreakdown` (Table 2 columns), both
    derived from the operation's span tree (``result.trace``).

    ``backend`` (a :class:`~repro.mp.pool.ProcessPoolExecutorBackend`)
    moves the fault-free server-side work into worker processes.
    """
    return IOEngine(cluster, injector, retry_policy, backend=backend).write(
        cfile, requests, to_disk=to_disk
    )


def parallel_read(
    cluster: Cluster,
    cfile: ClusterFile,
    requests: Sequence[WriteRequest],
    from_disk: bool = False,
    injector: Optional[FaultInjector] = None,
    retry_policy: Optional[RetryPolicy] = None,
    backend=None,
) -> OperationResult:
    """The reverse-symmetric read operation (§8.1: "the write and read
    are reverse symmetrical").  Request buffers are filled in place."""
    return IOEngine(cluster, injector, retry_policy, backend=backend).read(
        cfile, requests, from_disk=from_disk
    )
