"""The compute-node side of Clusterfile data operations (paper §8.1).

Implements the first pseudocode fragment of §8.1 — for every subfile
intersecting the view: map the access extremities (``t_m``), decide
between the contiguous fast path and GATHER (``t_g``), and issue the
request — and drives the whole exchange through the discrete-event
simulation so that ``t_w`` reflects network serialisation, I/O-node CPU
queueing and (in write-through mode) disk positioning, "limited by the
slowest I/O server" exactly as the paper observes.

``t_i`` (paid at view set), ``t_m`` and ``t_g`` are *measured* wall
times of the real algorithms; message and device times are *modelled*
(see DESIGN.md §3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..redistribution.gather_scatter import gather_segments, scatter_segments
from ..simulation.cluster import Cluster
from ..simulation.events import EventQueue
from ..simulation.metrics import ScatterBreakdown, WriteBreakdown
from .file_model import ClusterFile
from .server import IOServer
from .view import View

__all__ = ["WriteRequest", "OperationResult", "parallel_write", "parallel_read"]

#: Control-message size for (l_S, r_S) request headers, bytes.
_HEADER_BYTES = 16


@dataclass(frozen=True)
class WriteRequest:
    """One compute node's access: a view interval plus its buffer."""

    view: View
    lo: int
    hi: int
    buf: np.ndarray  # for writes: data; for reads: destination

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"bad view interval [{self.lo}, {self.hi}]")
        if self.buf.size != self.hi - self.lo + 1:
            raise ValueError(
                f"buffer holds {self.buf.size} bytes for interval of "
                f"{self.hi - self.lo + 1}"
            )


@dataclass
class OperationResult:
    """Timings of one parallel operation."""

    per_compute: Dict[int, WriteBreakdown] = field(default_factory=dict)
    per_io: Dict[int, ScatterBreakdown] = field(default_factory=dict)
    messages: int = 0
    payload_bytes: int = 0


@dataclass
class _Message:
    compute: int
    subfile: int
    l_s: int
    r_s: int
    payload: np.ndarray
    #: Fragments gathered on the view side (1 = contiguous fast path).
    #: The §8.1 loop gathers per subfile *between* sends, so this cost
    #: sits on the client's critical path inside t_w.
    view_runs: int = 1
    reply_segs: Tuple[np.ndarray, np.ndarray] | None = None  # reads only


def _map_extremities(view: View, link, lo: int, hi: int) -> Tuple[int, int]:
    """Lines 3-4 of the first §8.1 fragment: l_S and r_S via MAP
    composition with next/prev rounding.

    When the view and the subfile perfectly overlap the mapping is the
    identity and costs nothing (the paper's t_m = 0 case).  Otherwise
    the scalar recursive MAP functions are used — a few binary searches,
    matching the paper's observation that t_m "is very small".
    """
    if link.is_identity:
        return lo, hi
    from ..core.mapping import map_offset, unmap_offset

    x0 = unmap_offset(view.logical, view.element, lo)
    x1 = unmap_offset(view.logical, view.element, hi)
    phys = link.subfile_mapper.partition
    l_s = map_offset(phys, link.subfile, x0, mode="next")
    r_s = map_offset(phys, link.subfile, x1, mode="prev")
    return l_s, r_s


def _prepare_messages(
    requests: Sequence[WriteRequest],
    gather_payload: bool,
) -> Tuple[List[_Message], Dict[int, WriteBreakdown]]:
    """Client-side phase: extremity mapping and (for writes) gathering.

    Gather destinations come from the view's per-subfile scratch buffers
    (:meth:`View.gather_buffer`), so a view issuing many accesses does
    not re-allocate its send buffers every time.  A buffer is only
    reused when its (view, subfile) pair appears once in this batch —
    messages outlive the loop, so aliasing two payloads would corrupt
    the first.
    """
    messages: List[_Message] = []
    breakdowns: Dict[int, WriteBreakdown] = {}
    seen_buffers: set = set()
    for req in requests:
        bd = WriteBreakdown(t_i=req.view.set_time_s * 1e6)
        view = req.view
        for link in view.links.values():
            # Which view-space bytes of this link fall in the window
            # (line 2's emptiness test, and the gather index set).
            starts, lengths = link.proj_view.segments_in(req.lo, req.hi)
            if starts.size == 0:
                continue

            # Lines 3-4: map the access extremities onto the subfile.
            t0 = time.perf_counter()
            l_s, r_s = _map_extremities(view, link, req.lo, req.hi)
            bd.t_m += (time.perf_counter() - t0) * 1e6

            payload = np.empty(0, dtype=np.uint8)
            runs = int(starts.size)
            if gather_payload:
                nbytes = int(lengths.sum())
                if runs == 1:
                    # Line 7: one contiguous run - send it straight out
                    # of the user buffer, no copy, no gather time.
                    a = int(starts[0]) - req.lo
                    payload = req.buf[a : a + nbytes]
                else:
                    # Line 9: GATHER the non-contiguous regions.
                    buf_key = (id(view), link.subfile)
                    scratch = (
                        view.gather_buffer(link.subfile, nbytes)
                        if buf_key not in seen_buffers
                        else None
                    )
                    seen_buffers.add(buf_key)
                    t0 = time.perf_counter()
                    payload = gather_segments(
                        req.buf, (starts - req.lo, lengths), scratch
                    )
                    bd.t_g += (time.perf_counter() - t0) * 1e6
            messages.append(
                _Message(
                    view.compute_node, link.subfile, l_s, r_s, payload, runs
                )
            )
        breakdowns[view.compute_node] = bd
    return messages, breakdowns


def _simulate_exchange(
    cluster: Cluster,
    messages: List[_Message],
    service_costs: List[Tuple[float, float]],
    result: OperationResult,
) -> Tuple[Dict[int, float], Dict[int, float]]:
    """Run the request/ack exchange through the event queue.

    ``service_costs[i]`` is ``(cache_s, disk_s)`` for message ``i``.
    Returns per-compute-node completion times for the cache-only and
    the write-through timelines (both computed in one pass: the disk
    stage extends the cache timeline).
    """
    queue: EventQueue = cluster.new_operation()
    done_bc: Dict[int, float] = {}
    done_disk: Dict[int, float] = {}
    nic_free: Dict[int, float] = {}

    net = cluster.network

    memory = cluster.config.memory
    for msg, (cache_s, disk_s) in zip(messages, service_costs):
        io_node = cluster.io_node_for(msg.subfile)
        compute_name = f"compute{msg.compute}"
        # The §8.1 loop runs per subfile: the gather for this message
        # happens after the previous message went out, so its (modelled)
        # copy cost sits on the client's critical path.
        prep_s = (
            memory.copy_time(int(msg.payload.size), msg.view_runs)
            if msg.view_runs > 1
            else 0.0
        )
        # Sender NIC serialises this node's outgoing messages.
        send_s = net.send_time(compute_name, io_node.name, _HEADER_BYTES) + (
            net.send_time(compute_name, io_node.name, int(msg.payload.size))
        )
        start = nic_free.get(msg.compute, 0.0) + prep_s
        arrival = start + send_s
        nic_free[msg.compute] = arrival

        def on_arrival(
            msg=msg, io_node=io_node, cache_s=cache_s, disk_s=disk_s
        ) -> None:
            def after_cpu(_s: float, cpu_end: float, msg=msg) -> None:
                ack = net.model.latency_s + _HEADER_BYTES / net.model.bandwidth_Bps

                def after_disk(_s2: float, disk_end: float, msg=msg) -> None:
                    t = disk_end + ack
                    done_disk[msg.compute] = max(
                        done_disk.get(msg.compute, 0.0), t
                    )

                t_bc = cpu_end + ack
                done_bc[msg.compute] = max(done_bc.get(msg.compute, 0.0), t_bc)
                io_node.disk_queue.acquire(queue, disk_s, after_disk)

            io_node.cpu.acquire(queue, cache_s, after_cpu)

        queue.at(arrival, on_arrival)
        result.messages += 1 if msg.payload.size == 0 else 2
        result.payload_bytes += int(msg.payload.size)

    queue.run()
    return done_bc, done_disk


def parallel_write(
    cluster: Cluster,
    cfile: ClusterFile,
    requests: Sequence[WriteRequest],
    to_disk: bool = False,
) -> OperationResult:
    """All compute nodes write their view intervals concurrently.

    Returns per-compute-node :class:`WriteBreakdown` (Table 1 columns)
    and per-I/O-node :class:`ScatterBreakdown` (Table 2 columns).
    """
    messages, breakdowns = _prepare_messages(requests, gather_payload=True)
    result = OperationResult(per_compute=breakdowns)

    servers = {
        s: IOServer(cluster.io_node_for(s), cfile.stores[s], cluster.config)
        for s in range(cfile.num_subfiles)
    }
    req_by_view = {req.view.compute_node: req for req in requests}
    service_costs: List[Tuple[float, float]] = []
    for msg in messages:
        view = req_by_view[msg.compute].view
        cost = servers[msg.subfile].write(
            msg.l_s,
            msg.r_s,
            msg.payload,
            view.links[msg.subfile].proj_subfile,
            to_disk=to_disk,
        )
        service_costs.append((cost.cache_s, cost.disk_s))
        io_index = cluster.io_node_for(msg.subfile).index
        sb = result.per_io.setdefault(io_index, ScatterBreakdown())
        sb.t_sc_bc += cost.cache_s * 1e6
        sb.t_sc_disk += (cost.cache_s + cost.disk_s) * 1e6

    done_bc, done_disk = _simulate_exchange(cluster, messages, service_costs, result)
    for compute, bd in result.per_compute.items():
        bd.t_w_bc = done_bc.get(compute, 0.0) * 1e6
        bd.t_w_disk = done_disk.get(compute, 0.0) * 1e6
    return result


def parallel_read(
    cluster: Cluster,
    cfile: ClusterFile,
    requests: Sequence[WriteRequest],
    from_disk: bool = False,
) -> OperationResult:
    """The reverse-symmetric read operation (§8.1: "the write and read
    are reverse symmetrical").  Request buffers are filled in place."""
    messages, breakdowns = _prepare_messages(requests, gather_payload=False)
    result = OperationResult(per_compute=breakdowns)

    servers = {
        s: IOServer(cluster.io_node_for(s), cfile.stores[s], cluster.config)
        for s in range(cfile.num_subfiles)
    }
    req_by_view = {req.view.compute_node: req for req in requests}
    service_costs: List[Tuple[float, float]] = []
    for msg in messages:
        req = req_by_view[msg.compute]
        link = req.view.links[msg.subfile]
        payload, cost = servers[msg.subfile].read(
            msg.l_s, msg.r_s, link.proj_subfile, from_disk=from_disk
        )
        msg.payload = payload
        service_costs.append((cost.cache_s, cost.disk_s))
        io_index = cluster.io_node_for(msg.subfile).index
        sb = result.per_io.setdefault(io_index, ScatterBreakdown())
        sb.t_sc_bc += cost.cache_s * 1e6
        sb.t_sc_disk += (cost.cache_s + cost.disk_s) * 1e6

        # Client-side scatter of the reply into the user buffer, the
        # mirror of the write-side gather (measured).
        bd = result.per_compute[msg.compute]
        t0 = time.perf_counter()
        starts, lengths = link.proj_view.segments_in(req.lo, req.hi)
        run = link.proj_view.contiguous_run_in(req.lo, req.hi)
        if run is not None:
            req.buf[run[0] - req.lo : run[1] - req.lo + 1] = payload
        else:
            scatter_segments(req.buf, (starts - req.lo, lengths), payload)
            bd.t_g += (time.perf_counter() - t0) * 1e6

    done_bc, done_disk = _simulate_exchange(cluster, messages, service_costs, result)
    for compute, bd in result.per_compute.items():
        bd.t_w_bc = done_bc.get(compute, 0.0) * 1e6
        bd.t_w_disk = done_disk.get(compute, 0.0) * 1e6
    return result
