"""The Clusterfile facade: create files, set views, read and write.

Ties the pieces together the way an application would use the paper's
system:

1. create a file with a physical partitioning pattern (subfiles land on
   the simulated I/O nodes round-robin);
2. each compute node sets a view with a logical pattern — paying ``t_i``
   once;
3. compute nodes write/read view intervals; the file system maps, moves
   and times the data.

The facade also exposes whole-array helpers used by the benchmarks and
examples (write a matrix through views, read it back linearly).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..core.partition import Partition
from ..simulation.cluster import Cluster, ClusterConfig
from .client import OperationResult, WriteRequest, parallel_read, parallel_write
from .file_model import ClusterFile
from .view import View, set_view

__all__ = ["Clusterfile"]


@dataclass
class Clusterfile:
    """A simulated Clusterfile deployment.

    ``storage`` selects where subfile *contents* live — in memory (the
    default) or in real files via
    :class:`repro.clusterfile.storage.FileStorage`; timings always come
    from the era device models either way.

    ``fault_injector`` / ``retry_policy`` switch every data operation
    onto the engine's robust path (checksums, retries, failover); both
    ``None`` — the default — runs the exact fault-free code.

    ``workers_mode="process"`` escapes the GIL: subfile stores default
    to shared memory and the fault-free write/read paths execute on a
    :class:`~repro.mp.pool.ProcessPoolExecutorBackend` of ``workers``
    processes (call :meth:`close` — or use the instance as a context
    manager — to tear the pool and its segments down).  The default
    ``"thread"`` keeps everything in-process, exactly as before.
    """

    config: ClusterConfig = field(default_factory=ClusterConfig)
    storage: object = None
    #: A :class:`repro.faults.FaultInjector`, or ``None`` (no faults).
    fault_injector: object = None
    #: A :class:`repro.faults.RetryPolicy`, or ``None`` (defaults).
    retry_policy: object = None
    #: ``"thread"`` (in-process, default) or ``"process"``.
    workers_mode: str = "thread"
    #: Worker-process count for ``workers_mode="process"``.
    workers: int = 4

    def __post_init__(self) -> None:
        self.cluster = Cluster(self.config)
        self.files: Dict[str, ClusterFile] = {}
        self.views: Dict[tuple, View] = {}
        self.backend = None
        if self.workers_mode not in ("thread", "process"):
            raise ValueError(
                f"workers_mode must be 'thread' or 'process', "
                f"got {self.workers_mode!r}"
            )
        if self.storage is None:
            if self.workers_mode == "process":
                from .storage import SharedMemoryStorage

                self.storage = SharedMemoryStorage()
            else:
                from .storage import MemoryStorage

                self.storage = MemoryStorage()
        if self.workers_mode == "process":
            from ..mp import ProcessPoolExecutorBackend

            self.backend = ProcessPoolExecutorBackend(
                processes=self.workers, config=self.config
            )

    def close(self) -> None:
        """Release every file's stores and (in process mode) shut the
        worker pool down, unlinking all shared-memory segments."""
        for name in list(self.files):
            try:
                self.unlink(name)
            except Exception:
                pass
        if self.backend is not None:
            self.backend.close()
            self.backend = None

    def __enter__(self) -> "Clusterfile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- namespace -----------------------------------------------------------

    def create(
        self, name: str, physical: Partition, replication: int = 1
    ) -> ClusterFile:
        """Create a file physically partitioned by ``physical``.

        ``replication`` keeps that many copies of every subfile on
        distinct I/O nodes (see :mod:`repro.faults.replica`): reads
        fail over when the primary's node is down, writes degrade
        gracefully.
        """
        if name in self.files:
            raise FileExistsError(name)
        if physical.num_elements > self.config.io_nodes * 64:
            raise ValueError("too many subfiles for this cluster")
        if not 1 <= replication <= self.config.io_nodes:
            raise ValueError(
                f"replication {replication} needs 1 <= k <= io_nodes "
                f"({self.config.io_nodes})"
            )
        stores = [
            self.storage.make_store(name, s)
            for s in range(physical.num_elements)
        ]
        mirrors = [
            [
                self.storage.make_store(f"{name}.r{r}", s)
                for r in range(1, replication)
            ]
            for s in range(physical.num_elements)
        ]
        f = ClusterFile(
            name=name,
            physical=physical,
            stores=stores,
            replication=replication,
            mirrors=mirrors,
        )
        self.files[name] = f
        return f

    def open(self, name: str) -> ClusterFile:
        """Look up an existing file (KeyError when absent)."""
        return self.files[name]

    def unlink(self, name: str) -> None:
        """Remove a file and its subfile stores.

        File-backed stores are durably flushed, closed, and their
        backing files deleted; the in-memory backend's flush/close are
        no-ops.
        """
        f = self.files.pop(name)
        for store in [
            st for st in f.stores
        ] + [st for group in f.mirrors for st in group]:
            store.flush(sync=True)
            store.close()
            path = getattr(store, "path", None)
            if path is not None and os.path.exists(path):
                os.remove(path)

    # -- views ---------------------------------------------------------------

    def set_view(
        self,
        name: str,
        compute_node: int,
        logical: Partition,
        element: int | None = None,
    ) -> View:
        """Set a view for a compute node (element defaults to the node's
        index, the common SPMD idiom)."""
        f = self.open(name)
        if not 0 <= compute_node < self.config.compute_nodes:
            raise ValueError(f"no compute node {compute_node}")
        e = compute_node if element is None else element
        view = set_view(compute_node, logical, e, f.physical)
        self.views[(name, compute_node)] = view
        return view

    def view_of(self, name: str, compute_node: int) -> View:
        """The view a compute node currently has set on a file."""
        return self.views[(name, compute_node)]

    # -- data operations -------------------------------------------------

    def write(
        self,
        name: str,
        accesses: Sequence[tuple],
        to_disk: bool = False,
    ) -> OperationResult:
        """Concurrent view writes: ``accesses`` is a list of
        ``(compute_node, view_offset, data)`` triples."""
        f = self.open(name)
        requests = [
            WriteRequest(
                view=self.view_of(name, node),
                lo=off,
                hi=off + np.asarray(data).size - 1,
                buf=np.ascontiguousarray(data, dtype=np.uint8).reshape(-1),
            )
            for node, off, data in accesses
        ]
        return parallel_write(
            self.cluster,
            f,
            requests,
            to_disk=to_disk,
            injector=self.fault_injector,
            retry_policy=self.retry_policy,
            backend=self.backend,
        )

    def read(
        self,
        name: str,
        accesses: Sequence[tuple],
        from_disk: bool = False,
    ) -> List[np.ndarray]:
        """Concurrent view reads: ``accesses`` is a list of
        ``(compute_node, view_offset, length)``; returns the buffers."""
        f = self.open(name)
        buffers = [np.zeros(length, dtype=np.uint8) for _, _, length in accesses]
        requests = [
            WriteRequest(
                view=self.view_of(name, node),
                lo=off,
                hi=off + length - 1,
                buf=buf,
            )
            for (node, off, length), buf in zip(accesses, buffers)
        ]
        parallel_read(
            self.cluster,
            f,
            requests,
            from_disk=from_disk,
            injector=self.fault_injector,
            retry_policy=self.retry_policy,
            backend=self.backend,
        )
        return buffers

    def read_with_result(
        self,
        name: str,
        accesses: Sequence[tuple],
        from_disk: bool = False,
    ) -> tuple:
        """Like :meth:`read` but also returns the
        :class:`OperationResult` timings."""
        f = self.open(name)
        buffers = [np.zeros(length, dtype=np.uint8) for _, _, length in accesses]
        requests = [
            WriteRequest(
                view=self.view_of(name, node),
                lo=off,
                hi=off + length - 1,
                buf=buf,
            )
            for (node, off, length), buf in zip(accesses, buffers)
        ]
        result = parallel_read(
            self.cluster,
            f,
            requests,
            from_disk=from_disk,
            injector=self.fault_injector,
            retry_policy=self.retry_policy,
            backend=self.backend,
        )
        return buffers, result

    # -- verification helpers --------------------------------------------

    def linear_contents(self, name: str, length: int | None = None) -> np.ndarray:
        """Assemble the file's linear byte contents (verification aid)."""
        return self.open(name).linear_contents(length)
