"""Clusterfile: the paper's case-study parallel file system (simulated)."""

from .client import OperationResult, WriteRequest, parallel_read, parallel_write
from .collective import (
    CollectiveResult,
    file_domain_partition,
    two_phase_read,
    two_phase_write,
)
from .file_model import ClusterFile, SubfileStore
from .fs import Clusterfile
from .relayout import RelayoutResult, relayout
from .server import IOServer, RequestCost
from .view import SubfileLink, View, set_view

__all__ = [
    "ClusterFile",
    "CollectiveResult",
    "RelayoutResult",
    "Clusterfile",
    "IOServer",
    "OperationResult",
    "RequestCost",
    "SubfileLink",
    "SubfileStore",
    "View",
    "WriteRequest",
    "file_domain_partition",
    "parallel_read",
    "parallel_write",
    "relayout",
    "set_view",
    "two_phase_read",
    "two_phase_write",
]
