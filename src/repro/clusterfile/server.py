"""The I/O server side of Clusterfile data operations (paper §8.1).

Each I/O node runs one server owning one subfile.  A write request
carries the subfile window ``[l_S, r_S]`` and the payload; the server
either writes it contiguously (when ``PROJ_S(V ∩ S)`` is contiguous in
the window) or scatters it through the projection — the second
pseudocode fragment of §8.1.  Reads are the mirror image.

Two things happen per request:

* the **real** bytes move into/out of the :class:`SubfileStore`
  (verified byte-exactly by the tests), and
* the **modelled** cost is computed from the era device models: a
  buffer-cache copy with a per-run penalty, plus — in write-through
  mode — a disk write of the dirty runs with seek/rotation accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.periodic import PeriodicFallsSet
from ..faults import ChecksumError, checksum
from ..redistribution.gather_scatter import gather_segments, scatter_segments
from ..simulation.cluster import ClusterConfig, IONode
from ..simulation.disk import write_time_for_segments
from .file_model import SubfileStore

__all__ = ["RequestCost", "IOServer"]


@dataclass(frozen=True)
class RequestCost:
    """Modelled device cost of one server request (seconds)."""

    cache_s: float
    disk_s: float
    nbytes: int
    runs: int


class IOServer:
    """One subfile's server, bound to an I/O node's devices."""

    def __init__(self, node: IONode, store: SubfileStore, config: ClusterConfig):
        self.node = node
        self.store = store
        self.config = config

    # -- write ---------------------------------------------------------------

    def write(
        self,
        l_s: int,
        r_s: int,
        payload: np.ndarray,
        proj_subfile: PeriodicFallsSet,
        to_disk: bool,
        crc: int | None = None,
    ) -> RequestCost:
        """Handle one write request (§8.1, second pseudocode fragment).

        When the message carries a checksum (``crc``, the CRC32 the
        sender computed at gather time) it is verified here, *before*
        the scatter: a corrupt payload raises
        :class:`~repro.faults.errors.ChecksumError` and leaves the
        subfile store untouched, so the engine's retransmit is
        idempotent.
        """
        if r_s < l_s:
            raise ValueError(f"bad subfile window [{l_s}, {r_s}]")
        segs = proj_subfile.segments_in(l_s, r_s)
        starts, lengths = segs
        nbytes = int(lengths.sum()) if lengths.size else 0
        if nbytes != payload.size:
            raise ValueError(
                f"payload holds {payload.size} bytes but the projection "
                f"selects {nbytes} in [{l_s}, {r_s}]"
            )
        if crc is not None and checksum(payload) != crc:
            raise ChecksumError(
                f"subfile {self.store.subfile}: payload checksum mismatch "
                f"in [{l_s}, {r_s}]"
            )
        if nbytes == 0:
            return RequestCost(0.0, 0.0, 0, 0)
        window = self.store.view(l_s, r_s)
        contiguous = starts.size == 1 and lengths[0] == r_s - l_s + 1
        if contiguous:
            window[:] = payload
            runs = 1
            if self.config.contiguous_write_optimized:
                cache_s = 0.0  # straight from the NIC into the cache
            else:
                cache_s = self.config.memory.copy_time(nbytes, runs=1)
        else:
            scatter_segments(window, (starts - l_s, lengths), payload)
            runs = int(starts.size)
            cache_s = self.config.memory.copy_time(nbytes, runs=runs)
        self.node.cache.write_runs(
            f"subfile{self.store.subfile}",
            list(zip((starts).tolist(), lengths.tolist())),
        )
        disk_s = 0.0
        if to_disk:
            disk_s = write_time_for_segments(
                self.node.disk, zip(starts.tolist(), lengths.tolist())
            )
        return RequestCost(cache_s, disk_s, nbytes, runs)

    # -- read ----------------------------------------------------------------

    def read(
        self,
        l_s: int,
        r_s: int,
        proj_subfile: PeriodicFallsSet,
        from_disk: bool,
    ) -> Tuple[np.ndarray, RequestCost]:
        """Handle one read request: gather the projected bytes of the
        window into a reply payload."""
        if r_s < l_s:
            raise ValueError(f"bad subfile window [{l_s}, {r_s}]")
        segs = proj_subfile.segments_in(l_s, r_s)
        starts, lengths = segs
        nbytes = int(lengths.sum()) if lengths.size else 0
        if nbytes == 0:
            return np.empty(0, dtype=np.uint8), RequestCost(0.0, 0.0, 0, 0)
        window = self.store.read(l_s, r_s)
        payload = gather_segments(window, (starts - l_s, lengths))
        runs = int(starts.size)
        contiguous = runs == 1 and lengths[0] == r_s - l_s + 1
        if contiguous and self.config.contiguous_write_optimized:
            cache_s = 0.0
        else:
            cache_s = self.config.memory.copy_time(nbytes, runs=runs)
        disk_s = 0.0
        if from_disk:
            disk_s = write_time_for_segments(
                self.node.disk, zip(starts.tolist(), lengths.tolist())
            )
        return payload, RequestCost(cache_s, disk_s, nbytes, runs)
