"""View setting (paper §8.1).

"When a compute node sets a view, described by V, on an open file ...
the intersection between V and each of the subfiles is computed.  The
projection of the intersection on V is computed and stored at [the]
compute node.  The projection of the intersection on S is computed and
sent to [the] I/O node of the corresponding subfile."

A :class:`View` therefore caches, per intersecting subfile:

* ``proj_view``  — PROJ_V(V ∩ S), used by GATHER/SCATTER at the compute
  node,
* ``proj_subfile`` — PROJ_S(V ∩ S), shipped to the I/O server and used
  there,
* the element mappers needed to map access extremities (``t_m``).

The wall-clock cost of building all of this is the paper's ``t_i``; it
is paid once per view set and amortised over every subsequent access.
Since the intersections and projections depend only on the two
partitioning patterns, the view set draws them from the process-wide
redistribution plan cache (:mod:`repro.redistribution.plan_cache`):
the first view against a (logical, physical) pair pays the full
``t_i``, every structurally identical later view — other elements of
the same logical partition, re-opened files, checkpoint restarts —
reuses the cached schedule and pays only the per-element slicing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..core.mapping import ElementMapper
from ..core.partition import Partition
from ..core.periodic import PeriodicFallsSet
from ..obs.span import Span, open_span
from ..redistribution.plan_cache import get_mapper, get_plan

__all__ = ["SubfileLink", "View", "set_view"]


@dataclass(frozen=True)
class SubfileLink:
    """Cached mapping state between one view and one subfile."""

    subfile: int
    intersection: PeriodicFallsSet
    proj_view: PeriodicFallsSet
    proj_subfile: PeriodicFallsSet
    subfile_mapper: ElementMapper
    #: True when the view and the subfile select exactly the same bytes,
    #: in which case MAP_S(MAP_V^{-1}(y)) == y and the access extremities
    #: need no mapping at all — the paper's "t_m is 0 when a view and a
    #: subfile perfectly overlap".
    is_identity: bool = False


@dataclass
class View:
    """A logical window on a file, owned by one compute node."""

    compute_node: int
    logical: Partition
    element: int
    links: Dict[int, SubfileLink]
    view_mapper: ElementMapper
    set_time_s: float  # the paper's t_i for this view set
    #: Reusable per-subfile gather buffers for the client-side GATHER of
    #: repeated accesses.  Grown on demand and held per *thread*: views
    #: are long-lived shared objects, and the service layer lets several
    #: concurrent readers use one view at once — each thread sees its
    #: own scratch, so repeated accesses on one thread still amortise.
    _gather_tls: threading.local = field(default_factory=threading.local)
    #: The ``view.set`` span this view's ``set_time_s`` was read from.
    trace: Optional[Span] = None

    @property
    def size_per_period(self) -> int:
        return self.logical.element_size(self.element)

    def length_for_file(self, file_length: int) -> int:
        return self.logical.element_length(self.element, file_length)

    def gather_buffer(self, subfile: int, nbytes: int) -> np.ndarray:
        """A scratch buffer of at least ``nbytes`` for gathering this
        view's payload toward one subfile, reused across accesses on
        the calling thread."""
        buffers: Dict[int, np.ndarray] | None = getattr(
            self._gather_tls, "buffers", None
        )
        if buffers is None:
            buffers = self._gather_tls.buffers = {}
        buf = buffers.get(subfile)
        if buf is None or buf.size < nbytes:
            buf = np.empty(nbytes, dtype=np.uint8)
            buffers[subfile] = buf
        return buf


def set_view(
    compute_node: int,
    logical: Partition,
    element: int,
    physical: Partition,
) -> View:
    """Compute and cache all view <-> subfile mapping state.

    Mirrors the paper's view-set step; the elapsed wall time is recorded
    as the view's ``t_i``.  The intersections and projections come from
    the process-wide plan cache: the first view set against a pattern
    pair runs INTERSECT + PROJ for real, later ones reuse the schedule
    (their recorded ``t_i`` is correspondingly the residual lookup cost
    — call :func:`repro.redistribution.plan_cache.clear_plan_cache`
    first to measure a cold set).
    """
    with open_span("view.set", compute=compute_node, element=element) as sp:
        plan = get_plan(logical, physical)
        view_mapper = get_mapper(logical, element)
        links: Dict[int, SubfileLink] = {}
        for t in plan.transfers_from(element):
            proj_view = t.src_projection
            proj_subfile = t.dst_projection
            identity = (
                proj_view.size_per_period == proj_view.period
                and proj_subfile.size_per_period == proj_subfile.period
                and proj_view.displacement == 0
                and proj_subfile.displacement == 0
            )
            links[t.dst_element] = SubfileLink(
                subfile=t.dst_element,
                intersection=t.intersection,
                proj_view=proj_view,
                proj_subfile=proj_subfile,
                subfile_mapper=get_mapper(physical, t.dst_element),
                is_identity=identity,
            )
    sp.annotate(links=len(links))
    return View(
        compute_node=compute_node,
        logical=logical,
        element=element,
        links=links,
        view_mapper=view_mapper,
        set_time_s=sp.wall_s,
        trace=sp,
    )
