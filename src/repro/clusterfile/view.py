"""View setting (paper §8.1).

"When a compute node sets a view, described by V, on an open file ...
the intersection between V and each of the subfiles is computed.  The
projection of the intersection on V is computed and stored at [the]
compute node.  The projection of the intersection on S is computed and
sent to [the] I/O node of the corresponding subfile."

A :class:`View` therefore caches, per intersecting subfile:

* ``proj_view``  — PROJ_V(V ∩ S), used by GATHER/SCATTER at the compute
  node,
* ``proj_subfile`` — PROJ_S(V ∩ S), shipped to the I/O server and used
  there,
* the element mappers needed to map access extremities (``t_m``).

The wall-clock cost of building all of this is the paper's ``t_i``; it
is paid once per view set and amortised over every subsequent access.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict

from ..core.intersect_nested import intersect_elements
from ..core.mapping import ElementMapper
from ..core.partition import Partition
from ..core.periodic import PeriodicFallsSet
from ..core.projection import project

__all__ = ["SubfileLink", "View", "set_view"]


@dataclass(frozen=True)
class SubfileLink:
    """Cached mapping state between one view and one subfile."""

    subfile: int
    intersection: PeriodicFallsSet
    proj_view: PeriodicFallsSet
    proj_subfile: PeriodicFallsSet
    subfile_mapper: ElementMapper
    #: True when the view and the subfile select exactly the same bytes,
    #: in which case MAP_S(MAP_V^{-1}(y)) == y and the access extremities
    #: need no mapping at all — the paper's "t_m is 0 when a view and a
    #: subfile perfectly overlap".
    is_identity: bool = False


@dataclass
class View:
    """A logical window on a file, owned by one compute node."""

    compute_node: int
    logical: Partition
    element: int
    links: Dict[int, SubfileLink]
    view_mapper: ElementMapper
    set_time_s: float  # the paper's t_i for this view set

    @property
    def size_per_period(self) -> int:
        return self.logical.element_size(self.element)

    def length_for_file(self, file_length: int) -> int:
        return self.logical.element_length(self.element, file_length)


def set_view(
    compute_node: int,
    logical: Partition,
    element: int,
    physical: Partition,
) -> View:
    """Compute and cache all view <-> subfile mapping state.

    Mirrors the paper's view-set step; the elapsed wall time is recorded
    as the view's ``t_i``.
    """
    start = time.perf_counter()
    view_mapper = ElementMapper(logical, element)
    links: Dict[int, SubfileLink] = {}
    for s in range(physical.num_elements):
        inter = intersect_elements(logical, element, physical, s)
        if inter.is_empty:
            continue
        subfile_mapper = ElementMapper(physical, s)
        proj_view = project(inter, logical, element, view_mapper)
        proj_subfile = project(inter, physical, s, subfile_mapper)
        identity = (
            proj_view.size_per_period == proj_view.period
            and proj_subfile.size_per_period == proj_subfile.period
            and proj_view.displacement == 0
            and proj_subfile.displacement == 0
        )
        links[s] = SubfileLink(
            subfile=s,
            intersection=inter,
            proj_view=proj_view,
            proj_subfile=proj_subfile,
            subfile_mapper=subfile_mapper,
            is_identity=identity,
        )
    elapsed = time.perf_counter() - start
    return View(
        compute_node=compute_node,
        logical=logical,
        element=element,
        links=links,
        view_mapper=view_mapper,
        set_time_s=elapsed,
    )
