"""On-the-fly physical re-layout of a Clusterfile file (paper §3).

"Using the redistribution algorithm it is possible to implement disk
redistribution on the fly, like in Panda, in order to better suit the
layout to a certain access pattern."  This module implements that: it
rewrites a file from its current physical partition to a new one by
running the redistribution schedule *between the I/O nodes* — each old
subfile's owner gathers the segments destined for each new subfile,
ships them, and the receiver scatters them into the new subfile store.

The data movement is real (byte-verified); the time is simulated on the
same device models as the write path, with disk reads at the sources,
network transfers between distinct I/O nodes (same-node moves skip the
wire), and disk writes at the destinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.partition import Partition
from ..redistribution.gather_scatter import gather_segments, scatter_segments
from ..redistribution.plan_cache import get_plan
from ..simulation.cluster import Cluster
from ..simulation.disk import write_time_for_segments
from ..simulation.events import EventQueue
from .file_model import ClusterFile
from .fs import Clusterfile

__all__ = ["RelayoutResult", "relayout"]


@dataclass
class RelayoutResult:
    """Outcome of one physical re-layout."""

    bytes_moved: int
    transfers: int
    cross_node_messages: int
    #: Simulated makespan of the whole re-layout, seconds.
    makespan_s: float
    #: Simulated busy time per destination disk, seconds.
    disk_busy_s: Dict[int, float]
    #: True when old and new layouts matched element-for-element (the
    #: re-layout degenerated to local copies).
    was_identity: bool


def relayout(
    fs: Clusterfile, name: str, new_physical: Partition
) -> RelayoutResult:
    """Redistribute a file's subfiles to a new physical partition.

    The file's logical length is preserved; views set on the file must
    be re-set afterwards (their projections referred to the old
    subfiles), exactly as a real system would invalidate them.
    """
    cfile: ClusterFile = fs.open(name)
    old = cfile.physical
    length = cfile.file_length()
    plan = get_plan(old, new_physical)

    # New stores come from the deployment's storage backend, under a
    # scratch name first (on-disk backends must not clobber the old
    # subfiles while they are still being read).
    new_stores = [
        fs.storage.make_store(f"{name}.relayout", s)
        for s in range(new_physical.num_elements)
    ]

    cluster: Cluster = fs.cluster
    queue: EventQueue = cluster.new_operation()
    read_free: Dict[int, float] = {}
    done_at: List[float] = [0.0]
    bytes_moved = 0
    cross = 0

    for t in plan.transfers:
        src_len = old.element_length(t.src_element, length)
        dst_len = new_physical.element_length(t.dst_element, length)
        if src_len == 0 or dst_len == 0:
            continue
        src_segs = t.src_projection.segments_in(0, src_len - 1)
        dst_segs = t.dst_projection.segments_in(0, dst_len - 1)
        nbytes = int(src_segs[1].sum()) if src_segs[1].size else 0
        if nbytes == 0:
            continue

        # Real data movement.
        src_store = cfile.stores[t.src_element]
        payload = gather_segments(src_store.view(0, src_len - 1), src_segs)
        dst_window = new_stores[t.dst_element].view(0, dst_len - 1)
        scatter_segments(dst_window, dst_segs, payload)
        bytes_moved += nbytes

        # Simulated timing: read at source, wire, write at destination.
        src_node = cluster.io_node_for(t.src_element)
        dst_node = cluster.io_node_for(t.dst_element)
        read_s = write_time_for_segments(
            src_node.disk, zip(src_segs[0].tolist(), src_segs[1].tolist())
        )
        start = read_free.get(src_node.index, 0.0)
        read_done = start + read_s
        read_free[src_node.index] = read_done
        if src_node.index != dst_node.index:
            wire_s = cluster.network.send_time(
                src_node.name, dst_node.name, nbytes
            )
            cross += 1
        else:
            wire_s = 0.0
        write_s = write_time_for_segments(
            dst_node.disk, zip(dst_segs[0].tolist(), dst_segs[1].tolist())
        )

        def finish(_s: float, end: float) -> None:
            done_at[0] = max(done_at[0], end)

        queue.at(
            read_done + wire_s,
            lambda write_s=write_s, dst_node=dst_node: dst_node.disk_queue.acquire(
                queue, write_s, finish
            ),
        )

    queue.run()

    # Swap in the new layout; file-backed old subfiles are deleted from
    # disk (their bytes now live in the new stores).
    for store in cfile.stores:
        path = getattr(store, "path", None)
        if path is not None:
            import os

            if os.path.exists(path):
                os.unlink(path)
    cfile.physical = new_physical
    cfile.stores = new_stores
    # Invalidate every view on this file.
    for key in [k for k in fs.views if k[0] == name]:
        del fs.views[key]

    return RelayoutResult(
        bytes_moved=bytes_moved,
        transfers=plan.message_count,
        cross_node_messages=cross,
        makespan_s=done_at[0],
        disk_busy_s={n.index: n.disk_queue.busy_time for n in cluster.io},
        was_identity=plan.is_identity,
    )
