"""On-the-fly physical re-layout of a Clusterfile file (paper §3).

"Using the redistribution algorithm it is possible to implement disk
redistribution on the fly, like in Panda, in order to better suit the
layout to a certain access pattern."  This module implements that: it
rewrites a file from its current physical partition to a new one by
running the redistribution schedule *between the I/O nodes* — each old
subfile's owner gathers the segments destined for each new subfile,
ships them, and the receiver scatters them into the new subfile store.

The per-transfer gather→wire→scatter loop runs on the unified I/O
engine (:meth:`repro.clusterfile.engine.IOEngine.relayout_transfers`):
the data movement is real (byte-verified); the time is simulated on
the same device models as the write path, with disk reads at the
sources, network transfers between distinct I/O nodes (same-node moves
skip the wire), and disk writes at the destinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.partition import Partition
from ..redistribution.plan_cache import get_plan
from ..simulation.cluster import Cluster
from .engine import IOEngine
from .file_model import ClusterFile
from .fs import Clusterfile

__all__ = ["RelayoutResult", "relayout"]


@dataclass
class RelayoutResult:
    """Outcome of one physical re-layout."""

    bytes_moved: int
    transfers: int
    cross_node_messages: int
    #: Simulated makespan of the whole re-layout, seconds.
    makespan_s: float
    #: Simulated busy time per destination disk, seconds.
    disk_busy_s: Dict[int, float]
    #: True when old and new layouts matched element-for-element (the
    #: re-layout degenerated to local copies).
    was_identity: bool
    #: Span tree of the re-layout (see :mod:`repro.obs`).
    trace: object = None
    #: Transfer retransmissions forced by injected faults.
    retries: int = 0
    #: Source reads served by a non-primary replica.
    failed_over: int = 0


def relayout(
    fs: Clusterfile, name: str, new_physical: Partition
) -> RelayoutResult:
    """Redistribute a file's subfiles to a new physical partition.

    The file's logical length is preserved; views set on the file must
    be re-set afterwards (their projections referred to the old
    subfiles), exactly as a real system would invalidate them.
    """
    cfile: ClusterFile = fs.open(name)
    old = cfile.physical
    length = cfile.file_length()
    plan = get_plan(old, new_physical)

    # New stores come from the deployment's storage backend, under a
    # scratch name first (on-disk backends must not clobber the old
    # subfiles while they are still being read).  A replicated file gets
    # a full set of new mirror stores too.
    new_stores = [
        fs.storage.make_store(f"{name}.relayout", s)
        for s in range(new_physical.num_elements)
    ]
    new_mirrors = [
        [
            fs.storage.make_store(f"{name}.relayout.r{r}", s)
            for r in range(1, cfile.replication)
        ]
        for s in range(new_physical.num_elements)
    ]

    cluster: Cluster = fs.cluster
    bytes_moved, cross, makespan_s, trace = IOEngine(
        cluster, fs.fault_injector, fs.retry_policy, backend=fs.backend
    ).relayout_transfers(
        plan,
        old,
        new_physical,
        length,
        cfile.stores,
        new_stores,
        src_mirrors=cfile.mirrors if cfile.replication > 1 else None,
        dst_mirrors=new_mirrors if cfile.replication > 1 else None,
    )

    # Swap in the new layout; file-backed old subfiles (and their
    # mirrors) are deleted from disk — their bytes now live in the new
    # stores.
    import os

    for store in list(cfile.stores) + [
        st for group in cfile.mirrors for st in group
    ]:
        store.close()
        path = getattr(store, "path", None)
        if path is not None and os.path.exists(path):
            os.unlink(path)
    cfile.physical = new_physical
    cfile.stores = new_stores
    cfile.mirrors = new_mirrors
    # Invalidate every view on this file.
    for key in [k for k in fs.views if k[0] == name]:
        del fs.views[key]

    return RelayoutResult(
        bytes_moved=bytes_moved,
        transfers=plan.message_count,
        cross_node_messages=cross,
        makespan_s=makespan_s,
        disk_busy_s={n.index: n.disk_queue.busy_time for n in cluster.io},
        was_identity=plan.is_identity,
        trace=trace,
        retries=sum(
            int(sp.attrs.get("messages", 0))
            for sp in trace.find_all("retry")
        ),
        failed_over=len(trace.find_all("failover")),
    )
