"""The unified I/O engine: one map→gather→transport→scatter pipeline.

Before this module, the four data-movement paths — independent parallel
write/read (§8.1), two-phase collective I/O, on-the-fly physical
re-layout, and checkpoint resharding — each re-implemented the same
per-subfile request loop: *map* the access extremities, *gather* the
non-contiguous source bytes, move them over a *transport*, and
*scatter* them into the destination.  ViPIOS (PAPERS.md) demonstrates
the value of funnelling every request through one I/O-engine layer;
this module is ours.

Two transports plug into the pipeline:

* :class:`SimulatedTransport` — the discrete-event exchange on the
  simulated cluster (sender-NIC serialisation, I/O-node CPU and disk
  FIFOs, header/ack pricing), used by the client write/read paths and
  by re-layout's disk-to-disk moves;
* :class:`DirectTransport` — synchronous in-process movement with an
  alpha-beta cost model, used by the memory-memory paths (collective
  shuffle, checkpoint resharding).

Every operation builds a span tree (:mod:`repro.obs`): measured
wall-clock phases (``t_m`` mapping, ``t_g`` gather/scatter) interleaved
with modelled simulation-clock events (NIC, CPU, disk), and the Table
1/2 breakdown records are **derived from that tree** by
:func:`breakdowns_from_trace` — the table numbers and the trace are
provably the same measurements.

Because every data path crosses this one seam, cross-cutting failure
handling lives here too (:mod:`repro.faults`): when an engine carries a
:class:`~repro.faults.FaultInjector`, corrupted payloads are caught by
CRC32 checksums verified before any scatter (stamped lazily — the
injector is the simulation's only corruption source, so intact messages
never pay the hash), lost or corrupt messages
are retransmitted under a :class:`~repro.faults.RetryPolicy` (timeout +
capped, jittered exponential backoff, per-message budget), reads fail
over to replica subfiles when a node is crashed, and writes degrade
gracefully to the live replicas.  With no injector and replication 1
the engine runs the exact fault-free code path — not one extra branch
or checksum on the hot loop.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.partition import Partition
from ..faults import (
    ChecksumError,
    FaultInjector,
    NoLiveReplica,
    RetryBudgetExceeded,
    RetryPolicy,
    checksum,
    replica_nodes,
)
from ..obs import metrics as obs_metrics
from ..obs.context import current_trace_id, new_trace_id
from ..obs.span import Span, open_span
from ..redistribution.executor import execute_plan, execute_plan_windowed
from ..redistribution.gather_scatter import gather_segments, scatter_segments
from ..redistribution.schedule import RedistributionPlan
from ..simulation.cluster import Cluster
from ..simulation.disk import write_time_for_segments
from ..simulation.metrics import ScatterBreakdown, WriteBreakdown
from ..simulation.network import NetworkModel
from .file_model import ClusterFile
from .server import IOServer
from .view import View

__all__ = [
    "WriteRequest",
    "OperationResult",
    "SimMessage",
    "SimulatedTransport",
    "DirectTransport",
    "IOEngine",
    "ShuffleResult",
    "run_shuffle",
    "breakdowns_from_trace",
]


@dataclass(frozen=True)
class WriteRequest:
    """One compute node's access: a view interval plus its buffer."""

    view: View
    lo: int
    hi: int
    buf: np.ndarray  # for writes: data; for reads: destination

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"bad view interval [{self.lo}, {self.hi}]")
        if self.buf.dtype != np.uint8:
            raise ValueError(
                f"request buffer must be uint8 (the file model is bytes), "
                f"got dtype {self.buf.dtype}"
            )
        if not self.buf.flags.c_contiguous:
            raise ValueError(
                "request buffer must be C-contiguous: gather/scatter "
                "address it by flat byte offset"
            )
        if self.buf.size != self.hi - self.lo + 1:
            raise ValueError(
                f"buffer holds {self.buf.size} bytes for interval of "
                f"{self.hi - self.lo + 1}"
            )


@dataclass
class OperationResult:
    """Timings of one parallel operation.

    ``per_compute`` / ``per_io`` carry the paper's Table 1/2 records;
    both are derived from :attr:`trace` by
    :func:`breakdowns_from_trace`, never accumulated separately.
    """

    per_compute: Dict[int, WriteBreakdown] = field(default_factory=dict)
    per_io: Dict[int, ScatterBreakdown] = field(default_factory=dict)
    messages: int = 0
    payload_bytes: int = 0
    #: The operation's span tree (wall + simulation clocks).
    trace: Optional[Span] = None
    #: Message attempts beyond the first (sum over ``retry`` spans).
    retries: int = 0
    #: Reads served by a non-primary replica (``failover`` span count).
    failed_over: int = 0
    #: True when a write reached fewer than ``replication`` replicas.
    degraded: bool = False


@dataclass
class _Message:
    compute: int
    subfile: int
    l_s: int
    r_s: int
    payload: np.ndarray
    #: Fragments gathered on the view side (1 = contiguous fast path).
    #: The §8.1 loop gathers per subfile *between* sends, so this cost
    #: sits on the client's critical path inside t_w.
    view_runs: int = 1
    #: CRC32 of ``payload``, stamped lazily the first time the message
    #: meets injected corruption; verified by the receiver before any
    #: scatter (``None`` = never corrupted, nothing to verify).
    crc: Optional[int] = None


#: The fate of every message under an injector with no rules (shared
#: so the robust loops don't build a tuple per message).
_FATE_OK: Tuple[str, float] = ("ok", 0.0)


def _op_trace_id() -> str:
    """The trace id for an operation root span: the caller's bound id
    (a service worker executing a batch binds the head ticket's) or a
    fresh one for direct engine use."""
    return current_trace_id() or new_trace_id()


#: Histogram handles per op, cached because the registry lookup (name
#: f-string + dict probe, five per operation) is measurable on the
#: telemetry-overhead benchmark.  Keyed by op; invalidated whenever the
#: registry generation changes (a reset replaced the instruments).
_HIST_CACHE: Dict[str, Tuple] = {}
_HIST_CACHE_GEN = -1


def _stage_hists(op: str) -> Tuple:
    """``(map_s, gather_s, scatter_s, transport_s, op_s)`` histogram
    handles for one operation kind, cached across calls."""
    global _HIST_CACHE_GEN
    gen = obs_metrics.get_registry().generation
    if gen != _HIST_CACHE_GEN:
        _HIST_CACHE.clear()
        _HIST_CACHE_GEN = gen
    hists = _HIST_CACHE.get(op)
    if hists is None:
        hists = tuple(
            obs_metrics.histogram(f"engine.{op}.{stage}")
            for stage in ("map_s", "gather_s", "scatter_s", "transport_s", "op_s")
        )
        _HIST_CACHE[op] = hists
    return hists


def _observe_op(root: Span, op: str, nbytes: int) -> None:
    """Record an operation's wall time on its ``engine.<op>.op_s``
    histogram, with the trace id and byte count as the exemplar.

    A root still open (a return from inside its ``with`` block) is
    measured up to now — the close happens microseconds later."""
    if not obs_metrics.stage_histograms_enabled():
        return
    if root.wall_start_s is None:
        return
    end = root.wall_end_s if root.wall_end_s is not None else time.perf_counter()
    _stage_hists(op)[4].observe(
        end - root.wall_start_s,
        trace_id=root.attrs.get("trace_id"),
        bytes=nbytes,
    )


# --------------------------------------------------------------------------
# Transports
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SimMessage:
    """One message on the simulated cluster, transport-agnostic form.

    ``lane`` serialises the sender side (a NIC, a source disk);
    ``stages`` are destination resources acquired in order, each
    optionally recording its completion (plus ``ack_s``) into the named
    timeline bucket keyed by ``key``.
    """

    key: Hashable
    lane: Hashable
    lane_s: float
    post_lane_s: float = 0.0
    stages: Tuple[Tuple[object, float, Optional[str]], ...] = ()
    ack_s: float = 0.0
    #: A message lost (or rejected) in flight: the sender still burns
    #: its lane time, but no destination stage runs and no completion
    #: is recorded — the retry layer notices via its timeout.
    dropped: bool = False


class SimulatedTransport:
    """Event-queue transport: lanes, wire latency, destination FIFOs.

    Runs one batch of :class:`SimMessage` through a fresh operation
    timeline and returns per-label completion maps, e.g. ``{"bc":
    {compute: t}, "disk": {compute: t}}`` — "limited by the slowest I/O
    server" falls out of the max-merge per key.
    """

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    def run(
        self,
        messages: Sequence[SimMessage],
        trace_span: Optional[Span] = None,
    ) -> Dict[str, Dict[Hashable, float]]:
        queue = self.cluster.new_operation()
        queue.trace_span = trace_span
        lane_free: Dict[Hashable, float] = {}
        done: Dict[str, Dict[Hashable, float]] = {}

        def chain(msg: SimMessage, stage_idx: int) -> None:
            resource, service_s, label = msg.stages[stage_idx]

            def after(_start: float, stage_end: float) -> None:
                if label is not None:
                    bucket = done.setdefault(label, {})
                    t = stage_end + msg.ack_s
                    bucket[msg.key] = max(bucket.get(msg.key, 0.0), t)
                if stage_idx + 1 < len(msg.stages):
                    chain(msg, stage_idx + 1)

            resource.acquire(queue, service_s, after)

        n_dropped = 0
        for msg in messages:
            start = lane_free.get(msg.lane, 0.0)
            lane_end = start + msg.lane_s
            lane_free[msg.lane] = lane_end
            if msg.dropped:
                n_dropped += 1
                continue
            if not msg.stages:
                continue
            queue.at(lane_end + msg.post_lane_s, lambda msg=msg: chain(msg, 0))
        queue.run()
        if n_dropped and trace_span is not None:
            trace_span.annotate(dropped=n_dropped)
        if n_dropped:
            obs_metrics.inc("faults.transport.dropped", n_dropped)
        return done


class DirectTransport:
    """In-process transport cost: the alpha-beta model of an irregular
    exchange.

    Data moves synchronously (the caller's gather/scatter has already
    placed the bytes); this transport prices it — each sender ships its
    cross-element payloads serially on its own NIC, senders run in
    parallel.  With no network model the move is free (pure
    memory-memory resharding) but traffic is still counted.
    """

    def __init__(self, network: Optional[NetworkModel] = None):
        self.network = network

    def cost(self, moves) -> Tuple[int, int, float]:
        """``moves`` yields ``(src_element, dst_element, nbytes)``;
        returns ``(messages, off_node_bytes, time_s)``."""
        per_sender: Dict[int, float] = {}
        messages = 0
        off_node_bytes = 0
        for src, dst, nbytes in moves:
            if nbytes == 0:
                continue
            if src == dst:
                continue  # stays in the process's own memory
            messages += 1
            off_node_bytes += nbytes
            if self.network is not None:
                per_sender[src] = per_sender.get(
                    src, 0.0
                ) + self.network.transfer_time(nbytes)
        return messages, off_node_bytes, max(per_sender.values(), default=0.0)


# --------------------------------------------------------------------------
# Breakdown derivation
# --------------------------------------------------------------------------


def breakdowns_from_trace(
    root: Span,
) -> Tuple[Dict[int, WriteBreakdown], Dict[int, ScatterBreakdown]]:
    """Derive the paper's Table 1/2 records from an operation span tree.

    * ``t_i`` — the ``t_i_us`` attribute of each ``client.prepare``
      span (measured at view set);
    * ``t_m`` / ``t_g`` — sums of the ``map`` and ``gather``/``scatter``
      span wall durations;
    * ``t_w^bc`` / ``t_w^disk`` — the transport spans' per-compute
      completion timelines, max-merged across retry rounds with each
      round's ``round_start_s`` offset applied (a message acked in a
      retransmission round completes that much later on the modelled
      clock);
    * ``t_sc`` — the modelled cache/disk seconds on the ``server.*``
      spans (every replica write and every retransmission attempt
      counts — the work was really done).

    The whole tree is walked, so robust-path spans nested under
    ``retry`` groups contribute exactly like the flat fault-free
    layout.
    """
    per_compute: Dict[int, WriteBreakdown] = {}
    per_io: Dict[int, ScatterBreakdown] = {}
    done_bc: Dict = {}
    done_disk: Dict = {}
    for sp in root.walk():
        if sp.name == "client.prepare":
            node = sp.attrs["compute"]
            bd = WriteBreakdown(t_i=sp.attrs.get("t_i_us", 0.0))
            for c in sp.children:
                if c.name == "map":
                    bd.t_m += c.wall_us
                elif c.name == "gather":
                    bd.t_g += c.wall_us
            per_compute[node] = bd
        elif sp.name == "scatter":
            per_compute[sp.attrs["compute"]].t_g += sp.wall_us
        elif sp.name in ("server.write", "server.read"):
            if "cache_s" not in sp.attrs:
                continue  # request rejected (checksum) before costing
            sb = per_io.setdefault(sp.attrs["io_node"], ScatterBreakdown())
            cache_s = sp.attrs["cache_s"]
            disk_s = sp.attrs["disk_s"]
            sb.t_sc_bc += cache_s * 1e6
            sb.t_sc_disk += (cache_s + disk_s) * 1e6
        elif sp.name == "transport":
            offset = float(sp.attrs.get("round_start_s", 0.0))
            for bucket, total in (
                ("done_bc", done_bc),
                ("done_disk", done_disk),
            ):
                for key, t in sp.attrs.get(bucket, {}).items():
                    total[key] = max(total.get(key, 0.0), offset + t)
    for node, bd in per_compute.items():
        bd.t_w_bc = done_bc.get(node, 0.0) * 1e6
        bd.t_w_disk = done_disk.get(node, 0.0) * 1e6
    return per_compute, per_io


# --------------------------------------------------------------------------
# The engine
# --------------------------------------------------------------------------


class IOEngine:
    """Owns the map→gather→transport→scatter pipeline for one cluster.

    The client paths (:meth:`write` / :meth:`read`) implement the §8.1
    pseudocode fragments; :meth:`relayout_transfers` runs the same
    pipeline between I/O nodes for physical re-layout.  Memory-memory
    shuffles go through the module-level :func:`run_shuffle` (no
    cluster needed).

    With a :class:`~repro.faults.FaultInjector` (and/or a replicated
    file) the engine takes the **robust** path: payload CRC32s, the
    retry-round loop under ``retry_policy`` (default
    :class:`~repro.faults.RetryPolicy`), replica fan-out on writes and
    failover on reads.  Without either, the original fault-free code
    runs untouched.
    """

    def __init__(
        self,
        cluster: Cluster,
        injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        backend=None,
    ):
        self.cluster = cluster
        self.transport = SimulatedTransport(cluster)
        self.injector = injector
        self.retry_policy = retry_policy or RetryPolicy()
        #: Optional :class:`~repro.mp.pool.ProcessPoolExecutorBackend`.
        #: When set, the fault-free fast paths fan the server-side work
        #: out across worker processes (stores must live in shared
        #: memory); the robust paths always run parent-side.
        self.backend = backend

    # -- client-side phases --------------------------------------------------

    @staticmethod
    def _map_extremities(view: View, link, lo: int, hi: int) -> Tuple[int, int]:
        """Lines 3-4 of the first §8.1 fragment: l_S and r_S via MAP
        composition with next/prev rounding.

        When the view and the subfile perfectly overlap the mapping is
        the identity and costs nothing (the paper's t_m = 0 case).
        Otherwise the scalar recursive MAP functions are used — a few
        binary searches, matching the paper's observation that t_m "is
        very small".
        """
        if link.is_identity:
            return lo, hi
        from ..core.mapping import map_offset, unmap_offset

        x0 = unmap_offset(view.logical, view.element, lo)
        x1 = unmap_offset(view.logical, view.element, hi)
        phys = link.subfile_mapper.partition
        l_s = map_offset(phys, link.subfile, x0, mode="next")
        r_s = map_offset(phys, link.subfile, x1, mode="prev")
        return l_s, r_s

    def _prepare(
        self, requests: Sequence[WriteRequest], gather_payload: bool
    ) -> List[_Message]:
        """Client-side phase: extremity mapping and (for writes)
        gathering, one ``client.prepare`` span per request.

        Gather destinations come from the view's per-subfile scratch
        buffers (:meth:`View.gather_buffer`), so a view issuing many
        accesses does not re-allocate its send buffers every time.  A
        buffer is only reused when its (view, subfile) pair appears once
        in this batch — messages outlive the loop, so aliasing two
        payloads would corrupt the first.
        """
        messages: List[_Message] = []
        seen_buffers: set = set()
        for req in requests:
            view = req.view
            with open_span(
                "client.prepare",
                compute=view.compute_node,
                t_i_us=view.set_time_s * 1e6,
            ):
                for link in view.links.values():
                    # Which view-space bytes of this link fall in the
                    # window (line 2's emptiness test, and the gather
                    # index set).
                    starts, lengths = link.proj_view.segments_in(
                        req.lo, req.hi
                    )
                    if starts.size == 0:
                        continue

                    # Lines 3-4: map the access extremities.
                    with open_span("map", subfile=link.subfile):
                        l_s, r_s = self._map_extremities(
                            view, link, req.lo, req.hi
                        )

                    payload = np.empty(0, dtype=np.uint8)
                    runs = int(starts.size)
                    if gather_payload:
                        nbytes = int(lengths.sum())
                        if runs == 1:
                            # Line 7: one contiguous run - send it
                            # straight out of the user buffer, no copy,
                            # no gather time.
                            a = int(starts[0]) - req.lo
                            payload = req.buf[a : a + nbytes]
                        else:
                            # Line 9: GATHER the non-contiguous regions.
                            buf_key = (id(view), link.subfile)
                            scratch = (
                                view.gather_buffer(link.subfile, nbytes)
                                if buf_key not in seen_buffers
                                else None
                            )
                            seen_buffers.add(buf_key)
                            with open_span(
                                "gather",
                                subfile=link.subfile,
                                bytes=nbytes,
                                runs=runs,
                            ):
                                payload = gather_segments(
                                    req.buf, (starts - req.lo, lengths), scratch
                                )
                    messages.append(
                        _Message(
                            view.compute_node,
                            link.subfile,
                            l_s,
                            r_s,
                            payload,
                            runs,
                        )
                    )
        return messages

    def _exchange(
        self, messages: List[_Message], service_costs: List[Tuple[float, float]]
    ) -> Tuple[int, int]:
        """Price and run the request/ack exchange; returns traffic.

        ``service_costs[i]`` is ``(cache_s, disk_s)`` for message ``i``.
        Completion timelines land on the ``transport`` span's
        ``done_bc`` / ``done_disk`` attributes (the cache-only and
        write-through clocks; the disk stage extends the cache one).
        """
        net = self.cluster.network
        memory = self.cluster.config.memory
        header = self.cluster.config.header_bytes
        sim_msgs: List[SimMessage] = []
        n_messages = 0
        payload_bytes = 0
        for msg, (cache_s, disk_s) in zip(messages, service_costs):
            io_node = self.cluster.io_node_for(msg.subfile)
            compute_name = f"compute{msg.compute}"
            # The §8.1 loop runs per subfile: the gather for this message
            # happens after the previous message went out, so its
            # (modelled) copy cost sits on the client's critical path.
            prep_s = (
                memory.copy_time(int(msg.payload.size), msg.view_runs)
                if msg.view_runs > 1
                else 0.0
            )
            # Sender NIC serialises this node's outgoing messages.
            send_s = net.send_time(compute_name, io_node.name, header) + (
                net.send_time(compute_name, io_node.name, int(msg.payload.size))
            )
            ack_s = net.model.latency_s + header / net.model.bandwidth_Bps
            sim_msgs.append(
                SimMessage(
                    key=msg.compute,
                    lane=("nic", msg.compute),
                    lane_s=prep_s + send_s,
                    stages=(
                        (io_node.cpu, cache_s, "bc"),
                        (io_node.disk_queue, disk_s, "disk"),
                    ),
                    ack_s=ack_s,
                )
            )
            n_messages += 1 if msg.payload.size == 0 else 2
            payload_bytes += int(msg.payload.size)

        with open_span(
            "transport", messages=n_messages, payload_bytes=payload_bytes
        ) as tspan:
            done = self.transport.run(sim_msgs, trace_span=tspan)
        tspan.annotate(
            done_bc=done.get("bc", {}), done_disk=done.get("disk", {})
        )
        return n_messages, payload_bytes

    # -- parallel write / read ----------------------------------------------

    def write(
        self,
        cfile: ClusterFile,
        requests: Sequence[WriteRequest],
        to_disk: bool = False,
    ) -> OperationResult:
        """All compute nodes write their view intervals concurrently."""
        if self.injector is None and cfile.replication == 1:
            return self._write_fast(cfile, requests, to_disk)
        return self._write_robust(cfile, requests, to_disk)

    def read(
        self,
        cfile: ClusterFile,
        requests: Sequence[WriteRequest],
        from_disk: bool = False,
    ) -> OperationResult:
        """The reverse-symmetric read operation (§8.1: "the write and
        read are reverse symmetrical").  Request buffers are filled in
        place."""
        if self.injector is None and cfile.replication == 1:
            return self._read_fast(cfile, requests, from_disk)
        return self._read_robust(cfile, requests, from_disk)

    def _write_fast(
        self,
        cfile: ClusterFile,
        requests: Sequence[WriteRequest],
        to_disk: bool,
    ) -> OperationResult:
        """The fault-free write: byte- and timing-identical to the
        pre-faults engine (no checksum, no replica fan-out)."""
        with open_span(
            "parallel_write", op="write", to_disk=to_disk,
            trace_id=_op_trace_id(),
        ) as root:
            messages = self._prepare(requests, gather_payload=True)
            req_by_view = {req.view.compute_node: req for req in requests}
            if self.backend is not None:
                service_costs = self._mp_serve_write(
                    cfile, req_by_view, messages, to_disk, root
                )
            else:
                servers = self._servers(cfile)
                service_costs = []
                for msg in messages:
                    view = req_by_view[msg.compute].view
                    io_index = self.cluster.io_node_for(msg.subfile).index
                    with open_span(
                        "server.write", subfile=msg.subfile, io_node=io_index
                    ) as sp:
                        cost = servers[msg.subfile].write(
                            msg.l_s,
                            msg.r_s,
                            msg.payload,
                            view.links[msg.subfile].proj_subfile,
                            to_disk=to_disk,
                        )
                    sp.annotate(
                        bytes=cost.nbytes,
                        runs=cost.runs,
                        cache_s=cost.cache_s,
                        disk_s=cost.disk_s,
                    )
                    service_costs.append((cost.cache_s, cost.disk_s))
            n_messages, payload_bytes = self._exchange(messages, service_costs)
        return self._finish(root, "write", n_messages, payload_bytes)

    def _read_fast(
        self,
        cfile: ClusterFile,
        requests: Sequence[WriteRequest],
        from_disk: bool,
    ) -> OperationResult:
        """The fault-free read path (see :meth:`_write_fast`)."""
        with open_span(
            "parallel_read", op="read", from_disk=from_disk,
            trace_id=_op_trace_id(),
        ) as root:
            messages = self._prepare(requests, gather_payload=False)
            req_by_view = {req.view.compute_node: req for req in requests}
            if self.backend is not None:
                service_costs = self._mp_serve_read(
                    cfile, req_by_view, messages, from_disk, root
                )
            else:
                servers = self._servers(cfile)
                service_costs = []
                for msg in messages:
                    req = req_by_view[msg.compute]
                    link = req.view.links[msg.subfile]
                    io_index = self.cluster.io_node_for(msg.subfile).index
                    with open_span(
                        "server.read", subfile=msg.subfile, io_node=io_index
                    ) as sp:
                        payload, cost = servers[msg.subfile].read(
                            msg.l_s, msg.r_s, link.proj_subfile,
                            from_disk=from_disk,
                        )
                    sp.annotate(
                        bytes=cost.nbytes,
                        runs=cost.runs,
                        cache_s=cost.cache_s,
                        disk_s=cost.disk_s,
                    )
                    msg.payload = payload
                    service_costs.append((cost.cache_s, cost.disk_s))
                    self._scatter_reply(root, req, link, msg, payload)
            n_messages, payload_bytes = self._exchange(messages, service_costs)
        return self._finish(root, "read", n_messages, payload_bytes)

    @staticmethod
    def _scatter_reply(
        root: Span, req: WriteRequest, link, msg: _Message, payload: np.ndarray
    ) -> None:
        """Client-side scatter of a read reply into the user buffer, the
        mirror of the write-side gather (measured)."""
        t0 = time.perf_counter()
        starts, lengths = link.proj_view.segments_in(req.lo, req.hi)
        run = link.proj_view.contiguous_run_in(req.lo, req.hi)
        if run is not None:
            req.buf[run[0] - req.lo : run[1] - req.lo + 1] = payload
        else:
            scatter_segments(req.buf, (starts - req.lo, lengths), payload)
            root.record(
                "scatter",
                time.perf_counter() - t0,
                compute=msg.compute,
                subfile=msg.subfile,
                bytes=int(payload.size),
                runs=int(starts.size),
            )

    # -- multiprocess fan-out (fault-free fast paths only) --------------------

    def _mp_jobs(
        self, cfile: ClusterFile, req_by_view: Dict[int, WriteRequest],
        messages: List[_Message],
    ) -> Tuple[List[List[dict]], List[List[int]]]:
        """Group per-message server jobs by owning worker.

        The parent resolves everything a worker cannot cheaply (or
        picklably) compute itself — the projection's segment arrays come
        from the view's mapping-function machinery, which carries
        thread-local scratch state — so a job is plain arrays and ints:
        one bulk pickle, no View/plan objects crossing the boundary.
        """
        backend = self.backend
        jobs: List[List[dict]] = [[] for _ in range(backend.processes)]
        order: List[List[int]] = [[] for _ in range(backend.processes)]
        for i, msg in enumerate(messages):
            store = cfile.stores[msg.subfile]
            shm_name = getattr(store, "shm_name", None)
            if shm_name is None:
                raise ValueError(
                    "multiprocess execution needs shared-memory subfile "
                    "stores; build the Clusterfile with "
                    "SharedMemoryStorage (or workers_mode='process')"
                )
            link = req_by_view[msg.compute].view.links[msg.subfile]
            starts, lengths = link.proj_subfile.segments_in(msg.l_s, msg.r_s)
            nbytes = int(lengths.sum()) if lengths.size else 0
            w = backend.worker_for(msg.subfile, cfile.num_subfiles)
            jobs[w].append(
                {
                    "store": shm_name,
                    "capacity": store.capacity,
                    "subfile": msg.subfile,
                    "l_s": msg.l_s,
                    "r_s": msg.r_s,
                    "starts": starts,
                    "lengths": lengths,
                    "nbytes": nbytes,
                    "io_node": self.cluster.io_node_for(msg.subfile).index,
                }
            )
            order[w].append(i)
        return jobs, order

    def _mp_serve_write(
        self,
        cfile: ClusterFile,
        req_by_view: Dict[int, WriteRequest],
        messages: List[_Message],
        to_disk: bool,
        root: Span,
    ) -> List[Tuple[float, float]]:
        """Fan the server-side write loop out across the pool: payloads
        leave in one packed all-to-all round, per-message costs come
        back with the worker span trees (grafted under ``root``)."""
        backend = self.backend
        jobs, order = self._mp_jobs(cfile, req_by_view, messages)
        for w in range(backend.processes):
            for j, i in enumerate(order[w]):
                if jobs[w][j]["nbytes"] != int(messages[i].payload.size):
                    raise ValueError(
                        f"subfile {jobs[w][j]['subfile']}: payload of "
                        f"{int(messages[i].payload.size)} bytes does not "
                        f"match the projection's {jobs[w][j]['nbytes']}"
                    )
        outbox = [
            (w + 1, messages[i].payload)
            for w in range(backend.processes)
            for i in order[w]
        ]
        with backend.lock:
            results = backend.exchange_write(jobs, outbox, to_disk, root)
        service_costs: List[Tuple[float, float]] = (
            [(0.0, 0.0)] * len(messages)
        )
        for w, res in enumerate(results):
            for j, i in enumerate(order[w]):
                cost = res["costs"][j]
                service_costs[i] = (cost[0], cost[1])
        return service_costs

    def _mp_serve_read(
        self,
        cfile: ClusterFile,
        req_by_view: Dict[int, WriteRequest],
        messages: List[_Message],
        from_disk: bool,
        root: Span,
    ) -> List[Tuple[float, float]]:
        """The read mirror: reply payloads arrive packed per worker;
        scatters into the user buffers run parent-side in the original
        message order, exactly like the serial loop."""
        backend = self.backend
        jobs, order = self._mp_jobs(cfile, req_by_view, messages)
        with backend.lock:
            results, inbox = backend.exchange_read(jobs, from_disk, root)
        service_costs: List[Tuple[float, float]] = (
            [(0.0, 0.0)] * len(messages)
        )
        for w, res in enumerate(results):
            block, off = inbox[w + 1], 0
            for j, i in enumerate(order[w]):
                nbytes = jobs[w][j]["nbytes"]
                messages[i].payload = block[off : off + nbytes]
                off += nbytes
                cost = res["costs"][j]
                service_costs[i] = (cost[0], cost[1])
        for msg in messages:
            req = req_by_view[msg.compute]
            link = req.view.links[msg.subfile]
            self._scatter_reply(root, req, link, msg, msg.payload)
        return service_costs

    # -- robust (fault-injected / replicated) paths ---------------------------

    def _live_replicas(
        self, injector: FaultInjector, subfile: int, k: int, op_id: int
    ) -> List[Tuple[int, int]]:
        """``(replica, io_node)`` pairs whose node is up for this op."""
        nodes = replica_nodes(subfile, k, len(self.cluster.io))
        crashed = injector.crashed_nodes(op_id)
        if not crashed:
            return list(enumerate(nodes))
        return [(r, n) for r, n in enumerate(nodes) if n not in crashed]

    def _fanout_messages(
        self,
        msg: _Message,
        replicas: Sequence[Tuple[int, int]],
        costs: Sequence[Tuple[float, float]],
        fate: str,
        delay_s: float,
    ) -> List[SimMessage]:
        """Price one logical message attempt as :class:`SimMessage` s.

        The sender's NIC serialises one copy per destination replica
        (the gather prep cost is paid once, on the first copy).  A
        dropped or corrupted attempt still holds the lane — the bytes
        travelled — but runs no destination stage and records no
        completion, so the retry layer's timeout is what ends it.
        """
        net = self.cluster.network
        memory = self.cluster.config.memory
        header = self.cluster.config.header_bytes
        prep_s = (
            memory.copy_time(int(msg.payload.size), msg.view_runs)
            if msg.view_runs > 1
            else 0.0
        )
        compute_name = f"compute{msg.compute}"
        lost = fate != "ok"
        out: List[SimMessage] = []
        for j, (_r, node_idx) in enumerate(replicas):
            io_node = self.cluster.io[node_idx]
            send_s = net.send_time(compute_name, io_node.name, header) + (
                net.send_time(compute_name, io_node.name, int(msg.payload.size))
            )
            lane_s = (prep_s if j == 0 else 0.0) + send_s
            if lost or j >= len(costs):
                out.append(
                    SimMessage(
                        key=msg.compute,
                        lane=("nic", msg.compute),
                        lane_s=lane_s,
                        post_lane_s=delay_s,
                        dropped=True,
                    )
                )
                continue
            cache_s, disk_s = costs[j]
            ack_s = net.model.latency_s + header / net.model.bandwidth_Bps
            out.append(
                SimMessage(
                    key=msg.compute,
                    lane=("nic", msg.compute),
                    lane_s=lane_s,
                    post_lane_s=delay_s,
                    stages=(
                        (io_node.cpu, cache_s, "bc"),
                        (io_node.disk_queue, disk_s, "disk"),
                    ),
                    ack_s=ack_s,
                )
            )
        return out

    def _write_robust(
        self,
        cfile: ClusterFile,
        requests: Sequence[WriteRequest],
        to_disk: bool,
    ) -> OperationResult:
        """Write with checksums, replica fan-out, and retry rounds.

        Round 0 sends every message; a round's drops/corruptions are
        retransmitted in the next round, which starts ``timeout_s +
        backoff_s(round)`` later on the modelled clock.  Checksum
        verification precedes any store scatter, so retransmitting a
        message is idempotent, and each message fans out to every
        *live* replica of its subfile (fewer than ``replication``
        marks the operation degraded).
        """
        injector = self.injector or FaultInjector()
        policy = self.retry_policy
        op_id = injector.begin_op("write")
        k = cfile.replication
        # With zero rules every fate is "ok" and every disk factor is
        # 1.0 — skip those per-message queries so an armed-but-idle
        # injector stays cheap.
        armed = bool(injector.plan.rules)
        with open_span(
            "parallel_write", op="write", to_disk=to_disk, op_id=op_id,
            trace_id=_op_trace_id(),
        ) as root:
            messages = self._prepare(requests, gather_payload=True)
            req_by_view = {req.view.compute_node: req for req in requests}
            n_messages = 0
            payload_bytes = 0
            degraded = False
            pending = list(range(len(messages)))
            # Replica liveness and server bindings are functions of
            # (subfile, op_id) only — constant across messages and retry
            # rounds of one operation — so resolve each subfile once.
            live_by_subfile: Dict[int, List[Tuple[int, int]]] = {}
            servers_by_subfile: Dict[int, List[IOServer]] = {}
            round_start = 0.0
            round_idx = 0
            while pending:
                if round_idx > policy.max_retries:
                    raise RetryBudgetExceeded(
                        f"write op {op_id}: {len(pending)} message(s) still "
                        f"failing after {policy.max_retries} retries"
                    )
                group = (
                    open_span("retry", round=round_idx, messages=len(pending))
                    if round_idx
                    else contextlib.nullcontext()
                )
                with group:
                    if round_idx:
                        obs_metrics.inc("faults.retry.rounds")
                        obs_metrics.inc("faults.retry.messages", len(pending))
                    failed: List[int] = []
                    sim_msgs: List[SimMessage] = []
                    for i in pending:
                        msg = messages[i]
                        view = req_by_view[msg.compute].view
                        live = live_by_subfile.get(msg.subfile)
                        if live is None:
                            live = live_by_subfile[msg.subfile] = (
                                self._live_replicas(
                                    injector, msg.subfile, k, op_id
                                )
                            )
                        if not live:
                            raise NoLiveReplica(
                                f"all {k} replica(s) of subfile "
                                f"{msg.subfile} are down"
                            )
                        if len(live) < k:
                            degraded = True
                        fate, delay_s = (
                            injector.message_fate(
                                op_id,
                                "write",
                                msg.compute,
                                msg.subfile,
                                round_idx,
                            )
                            if armed
                            else _FATE_OK
                        )
                        payload = msg.payload
                        if fate == "corrupt":
                            # CRCs are stamped lazily, only once a message
                            # actually meets corruption: for intact
                            # payloads the verify is a tautology (the
                            # injector is the sole corruption source), so
                            # hashing them would tax every fault-free run.
                            if msg.crc is None:
                                msg.crc = checksum(msg.payload)
                            payload = injector.corrupt_payload(
                                msg.payload,
                                op_id,
                                "write",
                                msg.compute,
                                msg.subfile,
                                round_idx,
                            )
                            if checksum(payload) == msg.crc:
                                fate = "ok"  # empty payload: nothing to flip
                        costs: List[Tuple[float, float]] = []
                        servers = servers_by_subfile.get(msg.subfile)
                        if servers is None:
                            stores = cfile.replica_stores(msg.subfile)
                            servers = servers_by_subfile[msg.subfile] = [
                                IOServer(
                                    self.cluster.io[node_idx],
                                    stores[r],
                                    self.cluster.config,
                                )
                                for r, node_idx in live
                            ]
                        if fate != "drop":
                            for (r, node_idx), server in zip(live, servers):
                                with open_span(
                                    "server.write",
                                    subfile=msg.subfile,
                                    io_node=node_idx,
                                ) as sp:
                                    if r or round_idx:
                                        sp.annotate(
                                            replica=r, attempt=round_idx
                                        )
                                    try:
                                        cost = server.write(
                                            msg.l_s,
                                            msg.r_s,
                                            payload,
                                            view.links[msg.subfile].proj_subfile,
                                            to_disk=to_disk,
                                            crc=msg.crc,
                                        )
                                    except ChecksumError:
                                        obs_metrics.inc(
                                            "faults.checksum_failures"
                                        )
                                        sp.annotate(error="checksum")
                                        break
                                disk_s = (
                                    cost.disk_s
                                    * injector.disk_factor(node_idx)
                                    if armed
                                    else cost.disk_s
                                )
                                sp.annotate(
                                    bytes=cost.nbytes,
                                    runs=cost.runs,
                                    cache_s=cost.cache_s,
                                    disk_s=disk_s,
                                )
                                costs.append((cost.cache_s, disk_s))
                        if fate != "ok":
                            failed.append(i)
                        sim_msgs.extend(
                            self._fanout_messages(msg, live, costs, fate, delay_s)
                        )
                        per_copy = 1 if msg.payload.size == 0 else 2
                        n_messages += per_copy * len(live)
                        payload_bytes += int(msg.payload.size) * len(live)
                    with open_span(
                        "transport", messages=len(sim_msgs), round=round_idx
                    ) as tspan:
                        done = self.transport.run(sim_msgs, trace_span=tspan)
                    tspan.annotate(
                        done_bc=done.get("bc", {}),
                        done_disk=done.get("disk", {}),
                        round_start_s=round_start,
                    )
                if failed:
                    round_start += policy.timeout_s + policy.backoff_s(
                        round_idx,
                        seed=injector.plan.seed,
                        token=("write", op_id),
                    )
                pending = failed
                round_idx += 1
            root.annotate(degraded=degraded)
            if degraded:
                obs_metrics.inc("faults.degraded.writes")
        return self._finish(root, "write", n_messages, payload_bytes)

    def _read_robust(
        self,
        cfile: ClusterFile,
        requests: Sequence[WriteRequest],
        from_disk: bool,
    ) -> OperationResult:
        """Read with reply checksums, replica failover, and retries.

        Each message is served by the lowest-index *live* replica of
        its subfile; when that is not the primary, a ``failover`` span
        marks the switch.  A reply dropped or corrupted in flight is
        re-requested next round — reads have no side effects, so the
        retry is trivially idempotent — and the user buffer is only
        ever written with a checksum-verified reply.
        """
        injector = self.injector or FaultInjector()
        policy = self.retry_policy
        op_id = injector.begin_op("read")
        k = cfile.replication
        armed = bool(injector.plan.rules)  # see _write_robust
        with open_span(
            "parallel_read", op="read", from_disk=from_disk, op_id=op_id,
            trace_id=_op_trace_id(),
        ) as root:
            messages = self._prepare(requests, gather_payload=False)
            req_by_view = {req.view.compute_node: req for req in requests}
            n_messages = 0
            payload_bytes = 0
            pending = list(range(len(messages)))
            # As in _write_robust: liveness and the serving replica's
            # server are per-(subfile, op) invariants, resolved once.
            live_by_subfile: Dict[int, List[Tuple[int, int]]] = {}
            server_by_subfile: Dict[int, IOServer] = {}
            round_start = 0.0
            round_idx = 0
            while pending:
                if round_idx > policy.max_retries:
                    raise RetryBudgetExceeded(
                        f"read op {op_id}: {len(pending)} message(s) still "
                        f"failing after {policy.max_retries} retries"
                    )
                group = (
                    open_span("retry", round=round_idx, messages=len(pending))
                    if round_idx
                    else contextlib.nullcontext()
                )
                with group:
                    if round_idx:
                        obs_metrics.inc("faults.retry.rounds")
                        obs_metrics.inc("faults.retry.messages", len(pending))
                    failed: List[int] = []
                    sim_msgs: List[SimMessage] = []
                    for i in pending:
                        msg = messages[i]
                        req = req_by_view[msg.compute]
                        link = req.view.links[msg.subfile]
                        live = live_by_subfile.get(msg.subfile)
                        if live is None:
                            live = live_by_subfile[msg.subfile] = (
                                self._live_replicas(
                                    injector, msg.subfile, k, op_id
                                )
                            )
                        if not live:
                            raise NoLiveReplica(
                                f"all {k} replica(s) of subfile "
                                f"{msg.subfile} are down"
                            )
                        r, node_idx = live[0]
                        if r != 0 and round_idx == 0:
                            obs_metrics.inc("faults.failover.reads")
                            primary = replica_nodes(
                                msg.subfile, k, len(self.cluster.io)
                            )[0]
                            root.child(
                                "failover",
                                subfile=msg.subfile,
                                from_node=primary,
                                to_node=node_idx,
                                replica=r,
                            )
                        server = server_by_subfile.get(msg.subfile)
                        if server is None:
                            server = server_by_subfile[msg.subfile] = IOServer(
                                self.cluster.io[node_idx],
                                cfile.replica_stores(msg.subfile)[r],
                                self.cluster.config,
                            )
                        with open_span(
                            "server.read",
                            subfile=msg.subfile,
                            io_node=node_idx,
                        ) as sp:
                            if r or round_idx:
                                sp.annotate(replica=r, attempt=round_idx)
                            payload, cost = server.read(
                                msg.l_s,
                                msg.r_s,
                                link.proj_subfile,
                                from_disk=from_disk,
                            )
                        disk_s = (
                            cost.disk_s * injector.disk_factor(node_idx)
                            if armed
                            else cost.disk_s
                        )
                        sp.annotate(
                            bytes=cost.nbytes,
                            runs=cost.runs,
                            cache_s=cost.cache_s,
                            disk_s=disk_s,
                        )
                        fate, delay_s = (
                            injector.message_fate(
                                op_id,
                                "read",
                                msg.compute,
                                msg.subfile,
                                round_idx,
                            )
                            if armed
                            else _FATE_OK
                        )
                        if fate == "corrupt":
                            # Lazy CRC: only a corrupted reply needs the
                            # reference checksum (see _write_robust).
                            crc = checksum(payload)
                            received = injector.corrupt_payload(
                                payload,
                                op_id,
                                "read",
                                msg.compute,
                                msg.subfile,
                                round_idx,
                            )
                            if checksum(received) != crc:
                                obs_metrics.inc("faults.checksum_failures")
                                sp.annotate(error="checksum")
                            else:
                                fate = "ok"  # empty reply: nothing to flip
                        msg.payload = payload
                        if fate == "ok":
                            self._scatter_reply(root, req, link, msg, payload)
                        else:
                            failed.append(i)
                        costs = (
                            [(cost.cache_s, disk_s)] if fate == "ok" else []
                        )
                        sim_msgs.extend(
                            self._fanout_messages(
                                msg, [(r, node_idx)], costs, fate, delay_s
                            )
                        )
                        n_messages += 1 if payload.size == 0 else 2
                        payload_bytes += int(payload.size)
                    with open_span(
                        "transport", messages=len(sim_msgs), round=round_idx
                    ) as tspan:
                        done = self.transport.run(sim_msgs, trace_span=tspan)
                    tspan.annotate(
                        done_bc=done.get("bc", {}),
                        done_disk=done.get("disk", {}),
                        round_start_s=round_start,
                    )
                if failed:
                    round_start += policy.timeout_s + policy.backoff_s(
                        round_idx,
                        seed=injector.plan.seed,
                        token=("read", op_id),
                    )
                pending = failed
                round_idx += 1
        return self._finish(root, "read", n_messages, payload_bytes)

    def _servers(self, cfile: ClusterFile) -> Dict[int, IOServer]:
        return {
            s: IOServer(
                self.cluster.io_node_for(s), cfile.stores[s], self.cluster.config
            )
            for s in range(cfile.num_subfiles)
        }

    def _finish(
        self, root: Span, op: str, n_messages: int, payload_bytes: int
    ) -> OperationResult:
        per_compute, per_io = breakdowns_from_trace(root)
        # Fault-handling outcomes and per-stage latencies are derived
        # from the span tree in one walk, like the breakdowns — the
        # trace is the single source of truth.
        retries = 0
        failed_over = 0
        map_s = gather_s = scatter_s = transport_s = 0.0
        for sp in root.walk():
            name = sp.name
            if name == "map":
                map_s += sp.wall_end_s - sp.wall_start_s
            elif name == "gather":
                gather_s += sp.wall_end_s - sp.wall_start_s
            elif name == "scatter":
                scatter_s += sp.wall_end_s - sp.wall_start_s
            elif name == "transport":
                transport_s += sp.wall_end_s - sp.wall_start_s
            elif name == "retry":
                retries += int(sp.attrs.get("messages", 0))
            elif name == "failover":
                failed_over += 1
        degraded = bool(root.attrs.get("degraded", False))
        obs_metrics.inc(f"engine.{op}.ops")
        obs_metrics.inc(f"engine.{op}.messages", n_messages)
        obs_metrics.inc(f"engine.{op}.payload_bytes", payload_bytes)
        if obs_metrics.stage_histograms_enabled():
            h_map, h_gather, h_scatter, h_transport, _ = _stage_hists(op)
            h_map.observe(map_s)
            h_gather.observe(gather_s)
            h_scatter.observe(scatter_s)
            h_transport.observe(transport_s)
            _observe_op(root, op, payload_bytes)
        return OperationResult(
            per_compute=per_compute,
            per_io=per_io,
            messages=n_messages,
            payload_bytes=payload_bytes,
            trace=root,
            retries=retries,
            failed_over=failed_over,
            degraded=degraded,
        )

    # -- physical re-layout --------------------------------------------------

    def relayout_transfers(
        self,
        plan: RedistributionPlan,
        old: Partition,
        new_physical: Partition,
        length: int,
        src_stores: Sequence,
        dst_stores: Sequence,
        src_mirrors: Optional[Sequence[Sequence]] = None,
        dst_mirrors: Optional[Sequence[Sequence]] = None,
    ) -> Tuple[int, int, float, Span]:
        """The per-transfer loop of a physical re-layout: gather at the
        source subfile, wire between distinct I/O nodes, scatter into
        the destination subfile — data movement real, timing simulated.

        With an injector (or replica mirrors) each transfer reads from
        the first live source replica, verifies the payload checksum,
        retries dropped/corrupt transfers under the retry policy, and
        writes every live destination replica.

        Returns ``(bytes_moved, cross_node_messages, makespan_s,
        trace)``.
        """
        if self.injector is not None or src_mirrors or dst_mirrors:
            return self._relayout_robust(
                plan,
                old,
                new_physical,
                length,
                src_stores,
                dst_stores,
                src_mirrors,
                dst_mirrors,
            )
        with open_span(
            "relayout", transfers=len(plan.transfers), length=length,
            trace_id=_op_trace_id(),
        ) as root:
            sim_msgs: List[SimMessage] = []
            bytes_moved = 0
            cross = 0
            for t in plan.transfers:
                src_len = old.element_length(t.src_element, length)
                dst_len = new_physical.element_length(t.dst_element, length)
                if src_len == 0 or dst_len == 0:
                    continue
                src_segs = t.src_projection.segments_in(0, src_len - 1)
                dst_segs = t.dst_projection.segments_in(0, dst_len - 1)
                nbytes = int(src_segs[1].sum()) if src_segs[1].size else 0
                if nbytes == 0:
                    continue

                # Real data movement.
                with open_span(
                    "move",
                    src=t.src_element,
                    dst=t.dst_element,
                    bytes=nbytes,
                ):
                    payload = gather_segments(
                        src_stores[t.src_element].view(0, src_len - 1), src_segs
                    )
                    scatter_segments(
                        dst_stores[t.dst_element].view(0, dst_len - 1),
                        dst_segs,
                        payload,
                    )
                bytes_moved += nbytes

                # Simulated timing: read at source, wire, write at
                # destination.
                src_node = self.cluster.io_node_for(t.src_element)
                dst_node = self.cluster.io_node_for(t.dst_element)
                read_s = write_time_for_segments(
                    src_node.disk,
                    zip(src_segs[0].tolist(), src_segs[1].tolist()),
                )
                if src_node.index != dst_node.index:
                    wire_s = self.cluster.network.send_time(
                        src_node.name, dst_node.name, nbytes
                    )
                    cross += 1
                else:
                    wire_s = 0.0
                write_s = write_time_for_segments(
                    dst_node.disk,
                    zip(dst_segs[0].tolist(), dst_segs[1].tolist()),
                )
                sim_msgs.append(
                    SimMessage(
                        key=t.dst_element,
                        lane=("disk-read", src_node.index),
                        lane_s=read_s,
                        post_lane_s=wire_s,
                        stages=((dst_node.disk_queue, write_s, "disk"),),
                    )
                )

            with open_span("transport", messages=cross) as tspan:
                done = self.transport.run(sim_msgs, trace_span=tspan)
            makespan_s = max(done.get("disk", {}).values(), default=0.0)
            root.annotate(bytes_moved=bytes_moved, makespan_s=makespan_s)
        obs_metrics.inc("engine.relayout.ops")
        obs_metrics.inc("engine.relayout.bytes_moved", bytes_moved)
        obs_metrics.inc("engine.relayout.cross_node_messages", cross)
        _observe_op(root, "relayout", bytes_moved)
        return bytes_moved, cross, makespan_s, root

    def _relayout_robust(
        self,
        plan: RedistributionPlan,
        old: Partition,
        new_physical: Partition,
        length: int,
        src_stores: Sequence,
        dst_stores: Sequence,
        src_mirrors: Optional[Sequence[Sequence]],
        dst_mirrors: Optional[Sequence[Sequence]],
    ) -> Tuple[int, int, float, Span]:
        """Re-layout under faults: per-transfer checksum + retry, source
        failover, destination replica fan-out.

        The gather from the chosen live source replica happens once —
        the source bytes never change mid-relayout, so a retried
        transfer re-sends the same verified payload; only the *wire*
        fate is re-drawn per attempt.
        """
        injector = self.injector or FaultInjector()
        policy = self.retry_policy
        op_id = injector.begin_op("relayout")
        n_io = len(self.cluster.io)
        with open_span(
            "relayout", transfers=len(plan.transfers), length=length,
            op_id=op_id, trace_id=_op_trace_id(),
        ) as root:
            sim_msgs: List[SimMessage] = []
            bytes_moved = 0
            cross = 0
            degraded = False
            for t in plan.transfers:
                src_len = old.element_length(t.src_element, length)
                dst_len = new_physical.element_length(t.dst_element, length)
                if src_len == 0 or dst_len == 0:
                    continue
                src_segs = t.src_projection.segments_in(0, src_len - 1)
                dst_segs = t.dst_projection.segments_in(0, dst_len - 1)
                nbytes = int(src_segs[1].sum()) if src_segs[1].size else 0
                if nbytes == 0:
                    continue

                # Source side: first live replica serves the gather.
                src_replicas = [src_stores[t.src_element]]
                if src_mirrors:
                    src_replicas += list(src_mirrors[t.src_element])
                src_nodes = replica_nodes(
                    t.src_element, len(src_replicas), n_io
                )
                src_live = [
                    (r, n)
                    for r, n in enumerate(src_nodes)
                    if not injector.node_crashed(n, op_id)
                ]
                if not src_live:
                    raise NoLiveReplica(
                        f"all {len(src_replicas)} replica(s) of source "
                        f"subfile {t.src_element} are down"
                    )
                r_src, src_node_idx = src_live[0]
                if r_src != 0:
                    obs_metrics.inc("faults.failover.reads")
                    root.child(
                        "failover",
                        subfile=t.src_element,
                        from_node=src_nodes[0],
                        to_node=src_node_idx,
                        replica=r_src,
                    )

                # Destination side: every live replica gets the bytes.
                dst_replicas = [dst_stores[t.dst_element]]
                if dst_mirrors:
                    dst_replicas += list(dst_mirrors[t.dst_element])
                dst_nodes = replica_nodes(
                    t.dst_element, len(dst_replicas), n_io
                )
                dst_live = [
                    (r, n)
                    for r, n in enumerate(dst_nodes)
                    if not injector.node_crashed(n, op_id)
                ]
                if not dst_live:
                    raise NoLiveReplica(
                        f"all {len(dst_replicas)} replica(s) of destination "
                        f"subfile {t.dst_element} are down"
                    )
                if len(dst_live) < len(dst_replicas):
                    degraded = True

                with open_span(
                    "move",
                    src=t.src_element,
                    dst=t.dst_element,
                    bytes=nbytes,
                ) as mv:
                    payload = gather_segments(
                        src_replicas[r_src].view(0, src_len - 1), src_segs
                    )
                    crc = None  # stamped lazily on first corruption
                    attempt = 0
                    extra_s = 0.0
                    delay_s = 0.0
                    while True:
                        fate, delay_s = injector.message_fate(
                            op_id,
                            "relayout",
                            t.src_element,
                            t.dst_element,
                            attempt,
                        )
                        if fate == "corrupt":
                            if crc is None:
                                crc = checksum(payload)
                            received = injector.corrupt_payload(
                                payload,
                                op_id,
                                "relayout",
                                t.src_element,
                                t.dst_element,
                                attempt,
                            )
                            if checksum(received) == crc:
                                fate = "ok"  # empty: nothing to flip
                            else:
                                obs_metrics.inc("faults.checksum_failures")
                        if fate == "ok":
                            break
                        attempt += 1
                        if attempt > policy.max_retries:
                            raise RetryBudgetExceeded(
                                f"relayout transfer {t.src_element}->"
                                f"{t.dst_element} still failing after "
                                f"{policy.max_retries} retries"
                            )
                        obs_metrics.inc("faults.retry.messages")
                        extra_s += policy.timeout_s + policy.backoff_s(
                            attempt - 1,
                            seed=injector.plan.seed,
                            token=(
                                "relayout",
                                op_id,
                                t.src_element,
                                t.dst_element,
                            ),
                        )
                    if attempt:
                        obs_metrics.inc("faults.retry.rounds", attempt)
                        mv.child("retry", messages=attempt, rounds=attempt)
                    for r_dst, _node in dst_live:
                        scatter_segments(
                            dst_replicas[r_dst].view(0, dst_len - 1),
                            dst_segs,
                            payload,
                        )
                bytes_moved += nbytes

                # Simulated timing: read once at the live source, wire
                # to each live destination replica, write there.
                src_node = self.cluster.io[src_node_idx]
                read_s = write_time_for_segments(
                    src_node.disk,
                    zip(src_segs[0].tolist(), src_segs[1].tolist()),
                ) * injector.disk_factor(src_node_idx)
                first = True
                for _r_dst, dst_node_idx in dst_live:
                    dst_node = self.cluster.io[dst_node_idx]
                    if src_node_idx != dst_node_idx:
                        wire_s = self.cluster.network.send_time(
                            src_node.name, dst_node.name, nbytes
                        )
                        cross += 1
                    else:
                        wire_s = 0.0
                    write_s = write_time_for_segments(
                        dst_node.disk,
                        zip(dst_segs[0].tolist(), dst_segs[1].tolist()),
                    ) * injector.disk_factor(dst_node_idx)
                    sim_msgs.append(
                        SimMessage(
                            key=t.dst_element,
                            lane=("disk-read", src_node_idx),
                            lane_s=read_s if first else 0.0,
                            post_lane_s=wire_s + delay_s + extra_s,
                            stages=((dst_node.disk_queue, write_s, "disk"),),
                        )
                    )
                    first = False

            with open_span("transport", messages=cross) as tspan:
                done = self.transport.run(sim_msgs, trace_span=tspan)
            makespan_s = max(done.get("disk", {}).values(), default=0.0)
            root.annotate(
                bytes_moved=bytes_moved,
                makespan_s=makespan_s,
                degraded=degraded,
            )
            if degraded:
                obs_metrics.inc("faults.degraded.writes")
        obs_metrics.inc("engine.relayout.ops")
        obs_metrics.inc("engine.relayout.bytes_moved", bytes_moved)
        obs_metrics.inc("engine.relayout.cross_node_messages", cross)
        _observe_op(root, "relayout", bytes_moved)
        return bytes_moved, cross, makespan_s, root


# --------------------------------------------------------------------------
# Memory-memory shuffle (collective phase 1, checkpoint resharding)
# --------------------------------------------------------------------------


@dataclass
class ShuffleResult:
    """One memory-memory redistribution through the direct transport."""

    buffers: List[np.ndarray]
    messages: int
    off_node_bytes: int
    #: Modelled parallel alpha-beta exchange time (0.0 with no network).
    time_s: float
    trace: Optional[Span] = None
    #: Transfer retransmissions forced by injected faults.
    retries: int = 0


def _shuffle_fate_accounting(
    plan: RedistributionPlan,
    src_buffers: Sequence[np.ndarray],
    injector: FaultInjector,
    policy: RetryPolicy,
    op_id: int,
    root,
) -> int:
    """Draw each transfer's wire fates without moving any bytes.

    Fates are a pure function of ``(seed, op_id, transfer, attempt)``,
    so retry counts and budget failures are identical whichever executor
    variant later moves the data; the packed payload is gathered only to
    answer the corrupt-checksum question exactly as the serial robust
    loop would."""
    retries = 0
    for t in plan.transfers:
        src_len = src_buffers[t.src_element].size
        if src_len == 0:
            continue
        src_segs = t.src_projection.segments_in(0, src_len - 1)
        nbytes = int(src_segs[1].sum()) if src_segs[1].size else 0
        if nbytes == 0:
            continue
        packed = gather_segments(src_buffers[t.src_element], src_segs)
        crc = None
        attempt = 0
        while True:
            fate, _delay_s = injector.message_fate(
                op_id, "shuffle", t.src_element, t.dst_element, attempt
            )
            if fate == "corrupt":
                if crc is None:
                    crc = checksum(packed)
                received = injector.corrupt_payload(
                    packed,
                    op_id,
                    "shuffle",
                    t.src_element,
                    t.dst_element,
                    attempt,
                )
                if checksum(received) == crc:
                    fate = "ok"  # empty: nothing to flip
                else:
                    obs_metrics.inc("faults.checksum_failures")
            if fate == "ok":
                break
            attempt += 1
            if attempt > policy.max_retries:
                raise RetryBudgetExceeded(
                    f"shuffle transfer {t.src_element}->"
                    f"{t.dst_element} still failing after "
                    f"{policy.max_retries} retries"
                )
            obs_metrics.inc("faults.retry.messages")
        if attempt:
            retries += attempt
            root.child("retry", messages=attempt)
    return retries


def _execute_plan_mp(
    plan: RedistributionPlan,
    src_buffers: Sequence[np.ndarray],
    file_length: int,
    backend,
    root: Span,
) -> List[np.ndarray]:
    """Execute a redistribution plan across the worker pool.

    Destination elements are partitioned into contiguous blocks, one
    block per worker; the parent gathers every transfer's packed
    payload (sources are read-only, so gather order is free) and ships
    all of a worker's payloads in one packed round; workers scatter in
    the plan's transfer order per destination element — the only order
    that matters for bytes — and a second round brings the finished
    destination buffers back.  Byte-identical to :func:`execute_plan`.
    """
    nproc = backend.processes
    n_dst = plan.dst.num_elements
    jobs: List[List[dict]] = [[] for _ in range(nproc)]
    owned: List[List[int]] = [[] for _ in range(nproc)]
    job_index: Dict[int, Tuple[int, int]] = {}
    for j in range(n_dst):
        w = min(j * nproc // n_dst, nproc - 1)
        job_index[j] = (w, len(jobs[w]))
        owned[w].append(j)
        jobs[w].append(
            {
                "dst_len": plan.dst.element_length(j, file_length),
                "transfers": [],
            }
        )
    gathers: List[List[List[tuple]]] = [
        [[] for _ in jobs[w]] for w in range(nproc)
    ]
    for t in plan.transfers:
        src_len = src_buffers[t.src_element].size
        dst_len = plan.dst.element_length(t.dst_element, file_length)
        if src_len == 0 or dst_len == 0:
            continue
        src_segs = t.src_projection.segments_in(0, src_len - 1)
        dst_segs = t.dst_projection.segments_in(0, dst_len - 1)
        nbytes = int(src_segs[1].sum()) if src_segs[1].size else 0
        if nbytes == 0:
            continue
        w, jpos = job_index[t.dst_element]
        jobs[w][jpos]["transfers"].append(
            {"starts": dst_segs[0], "lengths": dst_segs[1], "nbytes": nbytes}
        )
        gathers[w][jpos].append((t.src_element, src_segs))
    # Pack payloads in exactly the order a worker will slice its block:
    # job by job, transfer by transfer.
    outbox = [
        (w + 1, gather_segments(src_buffers[src], segs))
        for w in range(nproc)
        for per_job in gathers[w]
        for src, segs in per_job
    ]
    with backend.lock:
        _results, inbox = backend.exchange_shuffle(jobs, outbox, root)
    buffers: List[np.ndarray] = [
        np.zeros(0, dtype=np.uint8) for _ in range(n_dst)
    ]
    for w in range(nproc):
        block, off = inbox[w + 1], 0
        for j in owned[w]:
            dst_len = plan.dst.element_length(j, file_length)
            buffers[j] = block[off : off + dst_len]
            off += dst_len
    return buffers


def run_shuffle(
    plan: RedistributionPlan,
    src_buffers: Sequence[np.ndarray],
    file_length: int,
    network: Optional[NetworkModel] = None,
    parallel: bool = False,
    injector: Optional[FaultInjector] = None,
    retry_policy: Optional[RetryPolicy] = None,
    window_bytes: Optional[int] = None,
    backend=None,
) -> ShuffleResult:
    """Execute a redistribution plan in memory through the engine.

    The gather/scatter loop is the plan executor's (scratch reuse and
    all); the :class:`DirectTransport` prices the exchange when a
    network model is supplied.  Used by two-phase collective I/O
    (phase-1 shuffle) and by checkpoint resharding (no network — ranks
    convert their own pieces).  ``window_bytes`` selects the out-of-core
    executor (fixed file windows, bounded temporary memory);
    ``parallel`` the thread-pool executor — both are byte-identical to
    the serial path, with or without faults.

    With an injector, each transfer's packed payload is checksummed and
    its wire fate drawn per attempt; dropped/corrupt transfers re-send
    the same packed bytes (source buffers are never modified by the
    shuffle, so the re-gather is idempotent) until the retry budget
    runs out.  Fate draws depend only on the plan seed, the operation
    id and the transfer identity — never on the executor variant — so
    retry counts are reproducible across variants.  Injector ``None``
    is the exact pre-faults path.
    """
    if window_bytes is not None and parallel:
        raise ValueError("window_bytes and parallel are mutually exclusive")
    if backend is not None and (parallel or window_bytes is not None):
        raise ValueError(
            "backend is mutually exclusive with parallel/window_bytes"
        )
    if backend is not None and injector is not None:
        # Fault injection needs parent-side fate draws per attempt; the
        # robust shuffle always runs in-process.
        backend = None
    if injector is None:
        with open_span(
            "shuffle", transfers=len(plan.transfers),
            file_length=file_length, trace_id=_op_trace_id(),
        ) as root:
            with open_span("move"):
                if backend is not None:
                    buffers = _execute_plan_mp(
                        plan, src_buffers, file_length, backend, root
                    )
                elif window_bytes is not None:
                    buffers = execute_plan_windowed(
                        plan, src_buffers, file_length, window_bytes
                    )
                else:
                    buffers = execute_plan(
                        plan, src_buffers, file_length, parallel=parallel
                    )
            transport = DirectTransport(network)
            messages, off_node_bytes, time_s = transport.cost(
                (t.src_element, t.dst_element, t.bytes_in_file(file_length))
                for t in plan.transfers
            )
            root.annotate(
                messages=messages,
                off_node_bytes=off_node_bytes,
                time_us=time_s * 1e6,
            )
        obs_metrics.inc("engine.shuffle.ops")
        obs_metrics.inc("engine.shuffle.messages", messages)
        obs_metrics.inc("engine.shuffle.off_node_bytes", off_node_bytes)
        _observe_op(root, "shuffle", off_node_bytes)
        return ShuffleResult(buffers, messages, off_node_bytes, time_s, root)

    policy = retry_policy or RetryPolicy()
    op_id = injector.begin_op("shuffle")
    retries = 0
    with open_span(
        "shuffle",
        transfers=len(plan.transfers),
        file_length=file_length,
        op_id=op_id,
        trace_id=_op_trace_id(),
    ) as root:
        if parallel or window_bytes is not None:
            # Variant executors: settle every transfer's wire fate first
            # (same draws, retries and budget failures as the serial
            # loop), then move the bytes with the requested executor —
            # the movement itself is byte-identical by construction.
            with open_span("move"):
                retries = _shuffle_fate_accounting(
                    plan, src_buffers, injector, policy, op_id, root
                )
                if window_bytes is not None:
                    buffers = execute_plan_windowed(
                        plan, src_buffers, file_length, window_bytes
                    )
                else:
                    buffers = execute_plan(
                        plan, src_buffers, file_length, parallel=True
                    )
            transport = DirectTransport(network)
            messages, off_node_bytes, time_s = transport.cost(
                (t.src_element, t.dst_element, t.bytes_in_file(file_length))
                for t in plan.transfers
            )
            root.annotate(
                messages=messages,
                off_node_bytes=off_node_bytes,
                time_us=time_s * 1e6,
                retries=retries,
            )
            obs_metrics.inc("engine.shuffle.ops")
            obs_metrics.inc("engine.shuffle.messages", messages)
            obs_metrics.inc("engine.shuffle.off_node_bytes", off_node_bytes)
            _observe_op(root, "shuffle", off_node_bytes)
            return ShuffleResult(
                buffers, messages, off_node_bytes, time_s, root, retries
            )
        buffers = [
            np.zeros(plan.dst.element_length(j, file_length), dtype=np.uint8)
            for j in range(plan.dst.num_elements)
        ]
        with open_span("move"):
            for t in plan.transfers:
                src_len = src_buffers[t.src_element].size
                dst_len = buffers[t.dst_element].size
                if src_len == 0 or dst_len == 0:
                    continue
                src_segs = t.src_projection.segments_in(0, src_len - 1)
                dst_segs = t.dst_projection.segments_in(0, dst_len - 1)
                nbytes = int(src_segs[1].sum()) if src_segs[1].size else 0
                if nbytes == 0:
                    continue
                packed = gather_segments(src_buffers[t.src_element], src_segs)
                crc = None  # stamped lazily on first corruption
                attempt = 0
                while True:
                    fate, _delay_s = injector.message_fate(
                        op_id, "shuffle", t.src_element, t.dst_element, attempt
                    )
                    if fate == "corrupt":
                        if crc is None:
                            crc = checksum(packed)
                        received = injector.corrupt_payload(
                            packed,
                            op_id,
                            "shuffle",
                            t.src_element,
                            t.dst_element,
                            attempt,
                        )
                        if checksum(received) == crc:
                            fate = "ok"  # empty: nothing to flip
                        else:
                            obs_metrics.inc("faults.checksum_failures")
                    if fate == "ok":
                        break
                    attempt += 1
                    if attempt > policy.max_retries:
                        raise RetryBudgetExceeded(
                            f"shuffle transfer {t.src_element}->"
                            f"{t.dst_element} still failing after "
                            f"{policy.max_retries} retries"
                        )
                    obs_metrics.inc("faults.retry.messages")
                scatter_segments(buffers[t.dst_element], dst_segs, packed)
                if attempt:
                    retries += attempt
                    root.child("retry", messages=attempt)
        transport = DirectTransport(network)
        messages, off_node_bytes, time_s = transport.cost(
            (t.src_element, t.dst_element, t.bytes_in_file(file_length))
            for t in plan.transfers
        )
        root.annotate(
            messages=messages,
            off_node_bytes=off_node_bytes,
            time_us=time_s * 1e6,
            retries=retries,
        )
    obs_metrics.inc("engine.shuffle.ops")
    obs_metrics.inc("engine.shuffle.messages", messages)
    obs_metrics.inc("engine.shuffle.off_node_bytes", off_node_bytes)
    _observe_op(root, "shuffle", off_node_bytes)
    return ShuffleResult(
        buffers, messages, off_node_bytes, time_s, root, retries
    )
