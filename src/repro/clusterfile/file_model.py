"""Clusterfile's file model: physically partitioned files.

A Clusterfile file is a linear byte sequence physically partitioned into
subfiles by a partitioning pattern (paper §5, §8).  Each subfile is a
linear-addressable byte store living on one I/O node's disk; this module
keeps the subfile *contents* (NumPy buffers that grow on demand) while
the devices that make access cost time live in
:mod:`repro.simulation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..core.partition import Partition

__all__ = ["SubfileStore", "ClusterFile"]


class SubfileStore:
    """One subfile's byte contents, growable, zero-filled like a sparse
    POSIX file."""

    def __init__(self, subfile: int):
        self.subfile = subfile
        self._data = np.zeros(0, dtype=np.uint8)
        self.length = 0

    def _ensure(self, length: int) -> None:
        if length > self._data.size:
            grown = np.zeros(max(length, 2 * self._data.size), dtype=np.uint8)
            grown[: self._data.size] = self._data
            self._data = grown
        self.length = max(self.length, length)

    def view(self, lo: int, hi: int) -> np.ndarray:
        """A writable window ``[lo, hi]`` of the subfile (grows it)."""
        if lo < 0 or hi < lo:
            raise ValueError(f"bad subfile window [{lo}, {hi}]")
        self._ensure(hi + 1)
        return self._data[lo : hi + 1]

    def read(self, lo: int, hi: int) -> np.ndarray:
        """A copy of ``[lo, hi]``; bytes beyond EOF read as zero."""
        if lo < 0 or hi < lo:
            raise ValueError(f"bad subfile window [{lo}, {hi}]")
        out = np.zeros(hi - lo + 1, dtype=np.uint8)
        avail = min(self.length, hi + 1)
        if avail > lo:
            out[: avail - lo] = self._data[lo:avail]
        return out

    def read_bytes(self, lo: int, hi: int) -> bytes:
        """``bytes`` of ``[lo, hi]`` (zero-filled past EOF).

        The journal's redo-payload read: when the range is entirely
        within the written length — the overwhelmingly common case on
        the commit path — this skips the intermediate zero-filled
        array that :meth:`read` allocates.  Works unchanged for every
        store subclass via the :attr:`data` prefix view."""
        if hi < self.length:
            return self.data[lo : hi + 1].tobytes()
        return self.read(lo, hi).tobytes()

    @property
    def data(self) -> np.ndarray:
        return self._data[: self.length]

    def flush(self, sync: bool = False) -> None:
        """Persist buffered contents (no-op for the in-memory store)."""

    def close(self) -> None:
        """Release backing resources (no-op for the in-memory store)."""


@dataclass
class ClusterFile:
    """An open Clusterfile file: displacement + physical partition +
    per-subfile stores.

    With ``replication > 1`` each subfile additionally keeps
    ``replication - 1`` mirror stores (``mirrors[s]``), placed on
    distinct I/O nodes by :func:`repro.faults.replica.replica_nodes`;
    ``stores[s]`` remains the primary replica, so every consumer of the
    unreplicated model keeps working unchanged.
    """

    name: str
    physical: Partition
    stores: List[SubfileStore] = field(default_factory=list)
    replication: int = 1
    #: ``mirrors[s]`` holds subfile ``s``'s non-primary replica stores.
    mirrors: List[List[SubfileStore]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.stores:
            self.stores = [
                SubfileStore(s) for s in range(self.physical.num_elements)
            ]
        if self.replication < 1:
            raise ValueError(
                f"replication must be >= 1, got {self.replication}"
            )
        if self.replication > 1 and not self.mirrors:
            self.mirrors = [
                [SubfileStore(s) for _ in range(self.replication - 1)]
                for s in range(self.physical.num_elements)
            ]

    def replica_stores(self, subfile: int) -> List[SubfileStore]:
        """All stores holding a subfile, primary first."""
        if self.replication == 1:
            return [self.stores[subfile]]
        return [self.stores[subfile], *self.mirrors[subfile]]

    @property
    def displacement(self) -> int:
        return self.physical.displacement

    @property
    def num_subfiles(self) -> int:
        return self.physical.num_elements

    def file_length(self) -> int:
        """Logical file length implied by the subfile lengths."""
        best = self.displacement
        for s, store in enumerate(self.stores):
            if store.length == 0:
                continue
            from ..core.mapping import unmap_offset

            best = max(best, unmap_offset(self.physical, s, store.length - 1) + 1)
        return best

    def linear_contents(self, length: int | None = None) -> np.ndarray:
        """Assemble the file's linear bytes (for verification and tools).

        Bytes before the displacement read as zero, as do holes.
        """
        from ..core.mapping import ElementMapper

        if length is None:
            length = self.file_length()
        out = np.zeros(length, dtype=np.uint8)
        for s, store in enumerate(self.stores):
            n = min(store.length, self.physical.element_length(s, length))
            if n == 0:
                continue
            mapper = ElementMapper(self.physical, s)
            offsets = mapper.unmap_many(np.arange(n, dtype=np.int64))
            keep = offsets < length
            out[offsets[keep]] = store.data[:n][keep]
        return out
