"""Two-phase collective I/O on top of the redistribution algorithm.

The paper positions its machinery as the foundation for MPI-IO-style
systems (§3: the MPI-IO file model "can be implemented using our file
model and mappings"; redistribution works "memory-memory" too).  The
classic payoff of that combination is ROMIO's *two-phase collective
I/O*: when per-process views are poorly matched to the file, processes
first **shuffle** data among themselves in memory so that each of a few
*aggregators* holds one large contiguous range of the file domain, and
only then hit the file system with big contiguous writes.

Both phases fall out of the paper's algorithms directly:

* the shuffle is a memory-memory redistribution between the logical
  partition and a contiguous *file-domain* partition
  (:func:`file_domain_partition`), scheduled by INTERSECT + PROJ;
* the write phase is an ordinary Clusterfile write through views set to
  the file-domain partition — whose matching degree against any
  physical layout is at least as good as the original views'.

The collective write here supports the collective-buffering case where
the participating accesses exactly tile a whole number of logical
periods (the usual aligned collective pattern); unaligned collectives
fall back to independent writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.falls import Falls
from ..core.partition import Partition
from ..redistribution.plan_cache import get_plan
from .client import OperationResult
from .engine import run_shuffle
from .fs import Clusterfile

__all__ = [
    "CollectiveResult",
    "file_domain_partition",
    "two_phase_read",
    "two_phase_write",
]


@dataclass
class CollectiveResult:
    """Timings and traffic of one two-phase collective write."""

    #: Phase-1 shuffle: messages between compute nodes and bytes moved
    #: off-node (on-node bytes are free).
    shuffle_messages: int
    shuffle_bytes: int
    #: Simulated phase-1 time (seconds): parallel alpha-beta exchange.
    shuffle_time_s: float
    #: Phase-2 file-system write result (the usual breakdown).
    write: OperationResult
    #: Aggregate fragments the file system had to scatter, for
    #: comparison against the direct write.
    scatter_fragments: int
    #: Span tree of the phase-1 shuffle (see :mod:`repro.obs`).
    shuffle_trace: object = None


def file_domain_partition(
    file_bytes: int, aggregators: int, displacement: int = 0
) -> Partition:
    """Contiguous file-domain chunks, one per aggregator (ROMIO-style).

    The chunks are equal to within one byte; the partition's pattern is
    the whole file region, applied once.
    """
    if file_bytes < 1 or aggregators < 1:
        raise ValueError("need file_bytes >= 1 and aggregators >= 1")
    aggregators = min(aggregators, file_bytes)
    chunk = file_bytes // aggregators
    rem = file_bytes % aggregators
    elements = []
    pos = 0
    for a in range(aggregators):
        size = chunk + (1 if a < rem else 0)
        elements.append(Falls(pos, pos + size - 1, file_bytes, 1))
        pos += size
    return Partition(elements, displacement=displacement)


def two_phase_write(
    fs: Clusterfile,
    name: str,
    accesses: Sequence[tuple],
    aggregators: int | None = None,
    to_disk: bool = False,
) -> CollectiveResult:
    """Collective write: shuffle to file-domain aggregators, then write.

    ``accesses`` is the same ``(compute_node, view_offset, data)`` list
    :meth:`Clusterfile.write` takes; all participating views must belong
    to the same logical partition, every view must participate, and the
    written intervals must jointly tile a whole number of logical
    periods starting at offset 0 (the aligned collective-buffering
    case).  Aggregators default to one per compute node.
    """
    cfile = fs.open(name)
    views = [fs.view_of(name, node) for node, _, _ in accesses]
    logical = views[0].logical
    if any(v.logical != logical for v in views[1:]):
        raise ValueError("collective accesses must share one logical partition")
    if {v.element for v in views} != set(range(logical.num_elements)):
        raise ValueError("every element of the logical partition must take part")
    if any(off != 0 for _, off, _ in accesses):
        raise ValueError("aligned collective writes start at view offset 0")

    sizes = {
        node: np.asarray(data).size for node, _, data in accesses
    }
    periods = {
        node: sizes[node] / logical.element_size(
            fs.view_of(name, node).element
        )
        for node in sizes
    }
    k = periods[accesses[0][0]]
    if any(p != k for p in periods.values()) or k != int(k) or k < 1:
        raise ValueError(
            "accesses must cover the same whole number of logical periods"
        )
    length = logical.displacement + int(k) * logical.size

    if aggregators is None:
        aggregators = fs.config.compute_nodes

    # Phase 1: memory-memory redistribution onto the file domain.
    domain = file_domain_partition(
        length - logical.displacement, aggregators, logical.displacement
    )
    plan = get_plan(logical, domain)
    src_buffers: List[np.ndarray] = [None] * logical.num_elements  # type: ignore
    for node, _, data in accesses:
        element = fs.view_of(name, node).element
        src_buffers[element] = np.ascontiguousarray(
            data, dtype=np.uint8
        ).reshape(-1)
    # The engine's direct transport prices the exchange: each compute
    # node sends its intersections with every aggregator in parallel
    # across nodes, serially on its own NIC — the standard alpha-beta
    # model of an irregular all-to-all.
    sh = run_shuffle(
        plan,
        src_buffers,
        length,
        network=fs.cluster.network.model,
        injector=fs.fault_injector,
        retry_policy=fs.retry_policy,
        backend=fs.backend,
    )
    agg_buffers = sh.buffers

    # Phase 2: aggregators write their contiguous chunks.
    for a in range(domain.num_elements):
        fs.set_view(name, a % fs.config.compute_nodes, domain, element=a)
    write_accesses = [
        (a % fs.config.compute_nodes, 0, agg_buffers[a])
        for a in range(domain.num_elements)
        if agg_buffers[a].size
    ]
    result = fs.write(name, write_accesses, to_disk=to_disk)

    # Restore the callers' views (phase 2 clobbered them).
    for v in views:
        fs.views[(name, v.compute_node)] = v

    # Fragments the file system scattered in phase 2 (per period of the
    # domain-vs-physical schedule) - the number the direct write would
    # compare against.
    fragments = sum(
        t.dst_fragments_per_period
        for t in get_plan(domain, cfile.physical).transfers
    )
    return CollectiveResult(
        shuffle_messages=sh.messages,
        shuffle_bytes=sh.off_node_bytes,
        shuffle_time_s=sh.time_s,
        write=result,
        scatter_fragments=fragments,
        shuffle_trace=sh.trace,
    )


def two_phase_read(
    fs: Clusterfile,
    name: str,
    requests: Sequence[tuple],
    aggregators: int | None = None,
    from_disk: bool = False,
) -> Tuple[List[np.ndarray], CollectiveResult]:
    """Collective read: aggregators stream contiguous chunks, then the
    data shuffles out to the callers' views (the mirror of
    :func:`two_phase_write`).

    ``requests`` is a list of ``(compute_node, view_offset, length)``
    like :meth:`Clusterfile.read` takes, under the same alignment rules
    as the collective write.  Returns the per-caller buffers plus the
    traffic/timing record.
    """
    views = [fs.view_of(name, node) for node, _, _ in requests]
    logical = views[0].logical
    if any(v.logical != logical for v in views[1:]):
        raise ValueError("collective accesses must share one logical partition")
    if {v.element for v in views} != set(range(logical.num_elements)):
        raise ValueError("every element of the logical partition must take part")
    if any(off != 0 for _, off, _ in requests):
        raise ValueError("aligned collective reads start at view offset 0")
    lengths = {node: length for node, _, length in requests}
    periods = {
        node: lengths[node]
        / logical.element_size(fs.view_of(name, node).element)
        for node in lengths
    }
    k = periods[requests[0][0]]
    if any(p != k for p in periods.values()) or k != int(k) or k < 1:
        raise ValueError(
            "accesses must cover the same whole number of logical periods"
        )
    length = logical.displacement + int(k) * logical.size

    if aggregators is None:
        aggregators = fs.config.compute_nodes
    domain = file_domain_partition(
        length - logical.displacement, aggregators, logical.displacement
    )

    # Phase 1: aggregators read their contiguous file chunks.
    for a in range(domain.num_elements):
        fs.set_view(name, a % fs.config.compute_nodes, domain, element=a)
    read_requests = [
        (
            a % fs.config.compute_nodes,
            0,
            domain.element_length(a, length),
        )
        for a in range(domain.num_elements)
    ]
    agg_buffers, result = fs.read_with_result(
        name,
        [(n, o, ln) for n, o, ln in read_requests if ln],
        from_disk=from_disk,
    )

    # Phase 2: shuffle from the file domain to the callers' views.
    plan = get_plan(domain, logical)
    sh = run_shuffle(
        plan,
        agg_buffers,
        length,
        network=fs.cluster.network.model,
        injector=fs.fault_injector,
        retry_policy=fs.retry_policy,
        backend=fs.backend,
    )
    out_by_element = sh.buffers

    # Restore the callers' views.
    for v in views:
        fs.views[(name, v.compute_node)] = v

    cfile = fs.open(name)
    fragments = sum(
        t.src_fragments_per_period
        for t in get_plan(cfile.physical, domain).transfers
    )
    buffers = [
        out_by_element[fs.view_of(name, node).element] for node, _, _ in requests
    ]
    return buffers, CollectiveResult(
        shuffle_messages=sh.messages,
        shuffle_bytes=sh.off_node_bytes,
        shuffle_time_s=sh.time_s,
        write=result,
        scatter_fragments=fragments,
        shuffle_trace=sh.trace,
    )
