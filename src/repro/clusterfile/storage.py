"""Subfile storage backends: in-memory and real files on disk.

The simulator keeps subfiles in memory by default (fast, hermetic), but
a parallel file system ultimately puts bytes on storage.  This module
adds a second backend that keeps each subfile in a real file on the
local filesystem via ``numpy.memmap`` — same interface, real
persistence — and a factory so :class:`~repro.clusterfile.fs.Clusterfile`
deployments can choose per instance.

Note the division of labour: the *timing* of disk access always comes
from the era cost models (we are reproducing 2002 hardware), while the
*contents* can live wherever the backend puts them.  The file backend
exists for persistence and for realism of the data path, not for
timing.
"""

from __future__ import annotations

import os
from typing import Protocol

import numpy as np

from .file_model import SubfileStore

__all__ = [
    "Storage",
    "MemoryStorage",
    "FileStorage",
    "FileBackedStore",
    "SharedMemoryStore",
    "SharedMemoryStorage",
]


class Storage(Protocol):
    """Factory for per-subfile stores."""

    def make_store(self, file_name: str, subfile: int) -> SubfileStore: ...


class MemoryStorage:
    """The default: growable NumPy arrays (see SubfileStore)."""

    def make_store(self, file_name: str, subfile: int) -> SubfileStore:
        return SubfileStore(subfile)


class FileBackedStore(SubfileStore):
    """A subfile stored in a real file, grown and memory-mapped on
    demand.  Data written through :meth:`view` persists on close."""

    #: Growth quantum; real file systems allocate in extents too.
    CHUNK = 64 * 1024

    def __init__(self, subfile: int, path: str):
        self.subfile = subfile
        self.path = path
        self.length = 0
        self._map: np.memmap | None = None
        if os.path.exists(path):
            size = os.path.getsize(path)
            if size:
                self._map = np.memmap(path, dtype=np.uint8, mode="r+")
                self.length = size

    def _capacity(self) -> int:
        return 0 if self._map is None else int(self._map.size)

    def _reopen(self) -> None:
        """Re-map the backing file after :meth:`close`.

        Without this, a closed store reports capacity 0 and the next
        growth would truncate an existing larger file — silently losing
        whatever was persisted.  Re-mapping first makes close/reopen
        (and reopen-after-crash) round-trip losslessly.
        """
        if self._map is None and os.path.exists(self.path):
            size = os.path.getsize(self.path)
            if size:
                self._map = np.memmap(self.path, dtype=np.uint8, mode="r+")
                self.length = max(self.length, size)

    def _ensure(self, length: int) -> None:
        self._reopen()
        if length > self._capacity():
            new_cap = max(
                length,
                2 * self._capacity(),
                self.CHUNK,
            )
            # Round to the growth quantum.
            new_cap = -(-new_cap // self.CHUNK) * self.CHUNK
            if self._map is not None:
                self._map.flush()
                del self._map
            with open(self.path, "ab") as fh:
                fh.truncate(new_cap)
            self._map = np.memmap(self.path, dtype=np.uint8, mode="r+")
        self.length = max(self.length, length)

    def view(self, lo: int, hi: int) -> np.ndarray:
        if lo < 0 or hi < lo:
            raise ValueError(f"bad subfile window [{lo}, {hi}]")
        self._ensure(hi + 1)
        assert self._map is not None
        return self._map[lo : hi + 1]

    def read(self, lo: int, hi: int) -> np.ndarray:
        if lo < 0 or hi < lo:
            raise ValueError(f"bad subfile window [{lo}, {hi}]")
        self._reopen()
        out = np.zeros(hi - lo + 1, dtype=np.uint8)
        avail = min(self.length, hi + 1)
        if self._map is not None and avail > lo:
            out[: avail - lo] = self._map[lo:avail]
        return out

    @property
    def data(self) -> np.ndarray:
        self._reopen()
        if self._map is None:
            return np.zeros(0, dtype=np.uint8)
        return np.asarray(self._map[: self.length])

    def flush(self, sync: bool = False) -> None:
        """Write dirty pages back; with ``sync=True`` also ``fsync`` the
        backing file so the bytes survive a machine crash, not just a
        process crash."""
        if self._map is not None:
            self._map.flush()
        if sync and os.path.exists(self.path):
            fd = os.open(self.path, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)

    def close(self) -> None:
        """Flush and release the memmap.

        The store stays usable: the next access re-maps the backing
        file (see :meth:`_reopen`), which is exactly the
        reopen-after-crash path a recovering I/O node takes.
        """
        if self._map is not None:
            self._map.flush()
            self._map = None


class SharedMemoryStore(SubfileStore):
    """A subfile in a POSIX shared-memory segment, visible to the
    worker processes of :class:`~repro.mp.pool.ProcessPoolExecutorBackend`.

    Layout: an 8-byte little-endian length header followed by
    ``capacity`` data bytes.  The segment is sized up front — shared
    mappings cannot grow in place — but Linux commits pages lazily, so
    an almost-empty 64 MiB subfile costs almost nothing resident.
    Exceeding the capacity raises a clean error naming the knob
    (``SharedMemoryStorage(capacity=...)``) instead of corrupting
    anything.

    Concurrency contract: exactly one process writes a given subfile at
    a time (the owning pool worker on the fast path, or the parent on
    the robust/relayout paths — the engine never mixes the two in one
    operation), so the length header needs no lock.
    """

    HEADER = 8
    DEFAULT_CAPACITY = 64 << 20

    def __init__(self, subfile: int, capacity: int = DEFAULT_CAPACITY,
                 name: str | None = None):
        from ..mp import shm as _shm

        self.subfile = subfile
        self.capacity = int(capacity)
        if name is None:
            self._shm = _shm.create_segment(
                self.HEADER + self.capacity, f"sf{subfile}"
            )
            self.owner = True
        else:
            self._shm = _shm.attach_segment(name)
            self.owner = False
        self._len = np.ndarray((1,), dtype=np.uint64, buffer=self._shm.buf)
        self._buf = np.ndarray(
            (self.capacity,), dtype=np.uint8,
            buffer=self._shm.buf, offset=self.HEADER,
        )
        if self.owner:
            self._len[0] = 0

    @classmethod
    def attach(cls, name: str, subfile: int, capacity: int) -> "SharedMemoryStore":
        """Map an existing store segment (worker side, non-owning)."""
        return cls(subfile, capacity, name=name)

    @property
    def shm_name(self) -> str:
        return self._shm.name

    @property
    def length(self) -> int:
        return int(self._len[0])

    @length.setter
    def length(self, value: int) -> None:
        self._len[0] = value

    def _ensure(self, length: int) -> None:
        if length > self.capacity:
            raise ValueError(
                f"subfile {self.subfile} needs {length} bytes but its "
                f"shared-memory capacity is {self.capacity}; raise "
                f"SharedMemoryStorage(capacity=...)"
            )
        if length > self.length:
            self._len[0] = length

    def view(self, lo: int, hi: int) -> np.ndarray:
        if lo < 0 or hi < lo:
            raise ValueError(f"bad subfile window [{lo}, {hi}]")
        self._ensure(hi + 1)
        return self._buf[lo : hi + 1]

    def read(self, lo: int, hi: int) -> np.ndarray:
        if lo < 0 or hi < lo:
            raise ValueError(f"bad subfile window [{lo}, {hi}]")
        out = np.zeros(hi - lo + 1, dtype=np.uint8)
        avail = min(self.length, hi + 1)
        if avail > lo:
            out[: avail - lo] = self._buf[lo:avail]
        return out

    @property
    def data(self) -> np.ndarray:
        return self._buf[: self.length]

    def flush(self, sync: bool = False) -> None:
        """Shared memory is always coherent; nothing to do."""

    def close(self) -> None:
        """Release the mapping; the creator also unlinks the segment."""
        from ..mp import shm as _shm

        if self._shm is None:
            return
        self._len = None  # type: ignore[assignment]
        self._buf = None  # type: ignore[assignment]
        _shm.release_segment(self._shm)
        self._shm = None  # type: ignore[assignment]


class SharedMemoryStorage:
    """Keeps every subfile in shared memory — required by (and the
    default for) the multiprocess engine backend, usable standalone."""

    def __init__(self, capacity: int = SharedMemoryStore.DEFAULT_CAPACITY):
        self.capacity = int(capacity)

    def make_store(self, file_name: str, subfile: int) -> SubfileStore:
        return SharedMemoryStore(subfile, self.capacity)


class FileStorage:
    """Keeps every subfile as ``<root>/<file>.subfile<k>`` on disk."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def path_for(self, file_name: str, subfile: int) -> str:
        safe = file_name.replace(os.sep, "_")
        return os.path.join(self.root, f"{safe}.subfile{subfile}")

    def make_store(self, file_name: str, subfile: int) -> SubfileStore:
        return FileBackedStore(subfile, self.path_for(file_name, subfile))
