"""Ghost-cell (halo) exchange schedules from FALLS intersections.

Stencil codes keep, besides the block a rank owns, read-only copies of
the neighbouring cells — the *halo*.  Which bytes must travel from whom
to whom is exactly a FALLS intersection problem: rank ``p``'s ghost
region intersected with rank ``q``'s owned region is the message
``q -> p``.  This module builds that schedule once (amortised, like a
view set) and executes it on local buffers with gather/scatter.

Each rank's local buffer holds its *needed* bytes — owned plus halo —
in ascending array order, the layout a stencil kernel would use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.falls import Falls, FallsSet
from ..core.intersect_nested import intersect_nested_sets
from ..core.segments import (
    SegmentArrays,
    leaf_segment_arrays_set,
    merge_segment_arrays,
)
from ..redistribution.gather_scatter import gather_segments, scatter_segments

__all__ = ["HaloExchange"]


class _LocalIndex:
    """Maps absolute array offsets to positions in a rank's local buffer
    (the compressed layout of its needed bytes)."""

    def __init__(self, needed: FallsSet):
        starts, lengths = merge_segment_arrays(
            leaf_segment_arrays_set(needed.falls)
        )
        self.starts = starts
        self.lengths = lengths
        self.rank0 = np.concatenate(([0], np.cumsum(lengths)))

    @property
    def local_size(self) -> int:
        return int(self.rank0[-1])

    def localize(self, segs: SegmentArrays) -> SegmentArrays:
        """Translate absolute segments (subsets of the needed bytes) to
        local-buffer segments."""
        a_starts, a_lengths = segs
        if a_starts.size == 0:
            return a_starts, a_lengths
        j = np.searchsorted(self.starts, a_starts, side="right") - 1
        within = a_starts - self.starts[j]
        if np.any(within + a_lengths > self.lengths[j]):
            raise ValueError("segment escapes the rank's needed region")
        return self.rank0[j] + within, a_lengths


@dataclass(frozen=True)
class _Message:
    src: int
    dst: int
    src_local: SegmentArrays  # where to gather in src's buffer
    dst_local: SegmentArrays  # where to scatter in dst's buffer
    nbytes: int


class HaloExchange:
    """A reusable ghost-exchange schedule.

    Parameters
    ----------
    owned:
        Per-rank disjoint FALLS sets covering the array (byte space).
    needed:
        Per-rank FALLS sets, each a superset of the rank's owned set
        (owned plus ghosts).
    """

    def __init__(self, owned: Sequence[FallsSet], needed: Sequence[FallsSet]):
        if len(owned) != len(needed):
            raise ValueError("owned and needed must align")
        self.owned = list(owned)
        self.needed = list(needed)
        self.index = [_LocalIndex(n) for n in self.needed]
        self.messages: List[_Message] = []
        owner_index = [_LocalIndex(o) for o in self.owned]
        for p, need in enumerate(self.needed):
            from ..core.algebra import difference

            ghosts = difference(need, self.owned[p])
            if ghosts.is_empty:
                continue
            for q, owned_q in enumerate(self.owned):
                if q == p:
                    continue
                common = intersect_nested_sets(
                    list(ghosts.falls), list(owned_q.falls)
                )
                if not common:
                    continue
                segs = merge_segment_arrays(
                    leaf_segment_arrays_set(common)
                )
                nbytes = int(segs[1].sum())
                if nbytes == 0:
                    continue
                # q gathers from where it keeps those bytes locally; p
                # scatters into its ghost slots.
                src_local = self.index[q].localize(segs)
                dst_local = self.index[p].localize(segs)
                self.messages.append(
                    _Message(q, p, src_local, dst_local, nbytes)
                )
        del owner_index

    # -- convenience constructors -----------------------------------------

    @classmethod
    def block_1d(
        cls, n_elements: int, itemsize: int, nprocs: int, halo: int
    ) -> "HaloExchange":
        """The standard 1-D block decomposition with a ``halo``-element
        ghost ring on each side (non-periodic boundaries)."""
        if n_elements % nprocs:
            raise ValueError("nprocs must divide n_elements")
        per = n_elements // nprocs
        if halo >= per:
            raise ValueError("halo wider than a block")
        owned, needed = [], []
        for p in range(nprocs):
            lo_e = p * per
            hi_e = (p + 1) * per - 1
            owned.append(
                FallsSet([_span(lo_e * itemsize, (hi_e + 1) * itemsize - 1)])
            )
            g_lo = max(0, lo_e - halo)
            g_hi = min(n_elements - 1, hi_e + halo)
            needed.append(
                FallsSet([_span(g_lo * itemsize, (g_hi + 1) * itemsize - 1)])
            )
        return cls(owned, needed)

    @classmethod
    def block_2d(
        cls,
        rows: int,
        cols: int,
        grid: Tuple[int, int],
        halo: int,
        itemsize: int = 1,
    ) -> "HaloExchange":
        """A 2-D block decomposition over a ``grid = (pr, pc)`` processor
        grid with a ``halo``-element ring (non-periodic borders).

        Owned and needed regions are rectangular subarrays, expressed as
        nested FALLS through the MPI subarray constructor — corner
        ghosts included, so 9-point stencils work.
        """
        pr, pc = grid
        if rows % pr or cols % pc:
            raise ValueError("grid must divide the array")
        br, bc = rows // pr, cols // pc
        if halo >= br or halo >= bc:
            raise ValueError("halo wider than a block")
        from ..distributions.mpi_types import primitive, subarray

        base = primitive(itemsize)
        owned, needed = [], []
        for r in range(pr):
            for c in range(pc):
                owned.append(
                    FallsSet(
                        subarray(
                            (rows, cols), (br, bc), (r * br, c * bc), base
                        ).falls.falls
                    )
                )
                g_r0 = max(0, r * br - halo)
                g_r1 = min(rows, (r + 1) * br + halo)
                g_c0 = max(0, c * bc - halo)
                g_c1 = min(cols, (c + 1) * bc + halo)
                needed.append(
                    FallsSet(
                        subarray(
                            (rows, cols),
                            (g_r1 - g_r0, g_c1 - g_c0),
                            (g_r0, g_c0),
                            base,
                        ).falls.falls
                    )
                )
        return cls(owned, needed)

    # -- execution -----------------------------------------------------------

    def local_sizes(self) -> List[int]:
        return [ix.local_size for ix in self.index]

    def scatter_owned(self, p: int, data: np.ndarray) -> np.ndarray:
        """Build rank ``p``'s initial local buffer from the global array
        (owned bytes filled, ghosts zero)."""
        buf = np.zeros(self.index[p].local_size, dtype=np.uint8)
        segs = merge_segment_arrays(
            leaf_segment_arrays_set(self.owned[p].falls)
        )
        packed = gather_segments(np.ascontiguousarray(data, np.uint8), segs)
        scatter_segments(buf, self.index[p].localize(segs), packed)
        return buf

    def exchange(self, buffers: Sequence[np.ndarray]) -> Tuple[int, int]:
        """Fill every rank's ghost bytes from the owners' buffers.

        Returns ``(messages, bytes)`` moved.
        """
        if len(buffers) != len(self.owned):
            raise ValueError("one buffer per rank required")
        nbytes = 0
        for m in self.messages:
            payload = gather_segments(buffers[m.src], m.src_local)
            scatter_segments(buffers[m.dst], m.dst_local, payload)
            nbytes += m.nbytes
        return len(self.messages), nbytes


def _span(lo: int, hi: int) -> Falls:
    return Falls(lo, hi, hi - lo + 1, 1)
