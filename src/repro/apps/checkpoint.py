"""Checkpoint / restart with resharding.

The classic consumer of general mapping functions: a simulation
checkpoints its distributed array and later restarts on a *different*
process count or decomposition.  With the paper's machinery this is
nothing special — the checkpoint is a file partitioned by the writers'
layout, the restart sets views with the readers' layout, and the
mapping functions do the rest.

Two APIs:

* :func:`reshard` — pure memory-memory: convert per-rank pieces between
  decompositions (one call on top of the redistribution executor);
* :class:`CheckpointStore` — file-based: save through writer views into
  a Clusterfile, load through reader views, with dtype/shape metadata
  carried alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.partition import Partition
from ..clusterfile.engine import run_shuffle
from ..clusterfile.fs import Clusterfile
from ..redistribution.plan_cache import get_plan
from ..simulation.cluster import ClusterConfig

__all__ = ["CheckpointStore", "reshard"]


def reshard(
    pieces: Sequence[np.ndarray],
    old_partition: Partition,
    new_partition: Partition,
    total_bytes: int | None = None,
    injector=None,
    retry_policy=None,
    backend=None,
) -> List[np.ndarray]:
    """Convert per-rank byte pieces from one decomposition to another.

    ``pieces[i]`` holds element ``i``'s bytes under ``old_partition``;
    the result holds the same data under ``new_partition``.  The two
    partitions may have different element counts — that is the point.

    An ``injector`` (a :class:`repro.faults.FaultInjector`) subjects the
    per-transfer moves to the engine's checksum-verify-retry loop.  A
    ``backend`` (:class:`~repro.mp.pool.ProcessPoolExecutorBackend`)
    scatters the fault-free conversion across worker processes —
    byte-identical, destination elements partitioned over workers.
    """
    if total_bytes is None:
        total_bytes = old_partition.displacement + sum(p.size for p in pieces)
    plan = get_plan(old_partition, new_partition)
    buffers = [np.ascontiguousarray(p, dtype=np.uint8).reshape(-1) for p in pieces]
    # Through the unified engine (no network model: ranks convert their
    # own pieces in memory; traffic is still counted in the metrics).
    return run_shuffle(
        plan,
        buffers,
        total_bytes,
        injector=injector,
        retry_policy=retry_policy,
        backend=backend,
    ).buffers


@dataclass
class _Meta:
    """Checkpoint metadata, stored in its JSON wire form so a restart
    process (or a different tool) can parse it without this library's
    objects — see :mod:`repro.core.serialize`."""

    shape: tuple
    dtype: str
    writer_layout_json: str

    def writer_partition(self) -> Partition:
        from ..core.serialize import partition_from_json

        return partition_from_json(self.writer_layout_json)


class CheckpointStore:
    """A checkpoint directory backed by a (simulated) Clusterfile.

    The physical layout of each checkpoint file is chosen to match the
    writers' decomposition — the paper's "optimal physical distribution
    for a given logical distribution" (§6.2) — so saves are pure
    contiguous streaming.  Restores with any other decomposition go
    through views and pay exactly the redistribution the mismatch
    requires.
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        fault_injector=None,
        retry_policy=None,
        workers_mode: str = "thread",
        workers: int = 4,
    ):
        self.fs = Clusterfile(
            config or ClusterConfig(),
            fault_injector=fault_injector,
            retry_policy=retry_policy,
            workers_mode=workers_mode,
            workers=workers,
        )
        self._meta: Dict[str, _Meta] = {}

    def close(self) -> None:
        """Tear down the underlying deployment (worker pool and
        shared-memory segments included, in process mode)."""
        self.fs.close()

    def save(
        self,
        name: str,
        pieces: Sequence[np.ndarray],
        partition: Partition,
        shape: Sequence[int],
        dtype: np.dtype | str = np.uint8,
    ) -> None:
        """Write one checkpoint: ``pieces[i]`` is rank ``i``'s bytes
        under ``partition`` (byte-level, matching the partition sizes)."""
        dtype = np.dtype(dtype)
        total = int(np.prod(shape)) * dtype.itemsize
        if partition.displacement != 0:
            raise ValueError("checkpoints use displacement 0")
        if total % partition.size:
            raise ValueError(
                f"array of {total} bytes does not tile the partition "
                f"pattern of {partition.size}"
            )
        if name in self.fs.files:
            self.fs.unlink(name)
        self.fs.create(name, partition)
        nodes = self.fs.config.compute_nodes
        for e, piece in enumerate(pieces):
            node = e % nodes
            self.fs.set_view(name, node, partition, element=e)
            self.fs.write(name, [(node, 0, piece)])
        from ..core.serialize import partition_to_json

        self._meta[name] = _Meta(
            tuple(shape), dtype.str, partition_to_json(partition)
        )

    def load(
        self, name: str, partition: Partition | None = None
    ) -> List[np.ndarray]:
        """Read a checkpoint back under ``partition`` (defaults to the
        writers' partition).  Returns per-element byte buffers."""
        meta = self._meta[name]
        dtype = np.dtype(meta.dtype)
        total = int(np.prod(meta.shape)) * dtype.itemsize
        partition = partition or meta.writer_partition()
        nodes = self.fs.config.compute_nodes
        out: List[np.ndarray] = []
        for e in range(partition.num_elements):
            node = e % nodes
            self.fs.set_view(name, node, partition, element=e)
            length = partition.element_length(e, total)
            out.append(self.fs.read(name, [(node, 0, length)])[0])
        return out

    def load_array(self, name: str) -> np.ndarray:
        """The whole checkpointed array, assembled and typed."""
        meta = self._meta[name]
        dtype = np.dtype(meta.dtype)
        total = int(np.prod(meta.shape)) * dtype.itemsize
        raw = self.fs.linear_contents(name, total)
        return raw.view(dtype).reshape(meta.shape)

    def checkpoints(self) -> List[str]:
        return sorted(self._meta)

    # -- portable snapshots ---------------------------------------------------

    def export_snapshot(self, name: str, path: str) -> int:
        """Write a checkpoint as a portable snapshot file.

        The format (:mod:`repro.durability.snapshot`) is
        *serial-equivalent*: the bytes depend only on the array's
        logical contents, shape and dtype — never on the writers'
        decomposition, node count, or executor mode that produced the
        checkpoint.  Saving the same array under any partition and
        exporting yields byte-identical files.  Returns the snapshot
        size in bytes.
        """
        from ..durability.snapshot import write_snapshot_file

        meta = self._meta[name]
        dtype = np.dtype(meta.dtype)
        total = int(np.prod(meta.shape)) * dtype.itemsize
        payload = self.fs.linear_contents(name, total)
        return write_snapshot_file(
            path,
            payload,
            {"shape": list(meta.shape), "dtype": meta.dtype},
        )

    def import_snapshot(
        self,
        path: str,
        name: str,
        partition: Partition | None = None,
    ) -> np.ndarray:
        """Load a portable snapshot file as a new checkpoint.

        ``partition`` chooses the imported checkpoint's physical layout
        (defaults to one element spanning the array — restores under
        any other decomposition go through views as usual).  Raises
        :class:`~repro.durability.RecoveryError` on a damaged file.
        Returns the imported array.
        """
        from ..durability.snapshot import read_snapshot_file
        from ..core.algebra import partition_from_elements
        from ..core.falls import Falls
        from ..redistribution.executor import distribute

        payload, meta = read_snapshot_file(path)
        shape = tuple(int(x) for x in meta.get("shape", [payload.size]))
        dtype = np.dtype(str(meta.get("dtype", "|u1")))
        total = int(np.prod(shape)) * dtype.itemsize
        if total != payload.size:
            from ..durability.journal import RecoveryError

            raise RecoveryError(
                f"snapshot payload is {payload.size} bytes but metadata "
                f"implies {total}"
            )
        if partition is None:
            n = max(1, total)
            partition = partition_from_elements(
                [[Falls(0, n - 1, n, 1)]], displacement=0
            )
        pieces = distribute(payload, partition)
        self.save(name, pieces, partition, shape, dtype)
        return payload.view(dtype).reshape(shape)
