"""Out-of-core matrix transpose through views.

Transpose is the access pattern that breaks naive parallel I/O: reading
a row-major file by columns touches every stripe of every disk.  With
views it becomes three clean steps per process:

1. read the process's column block *contiguously* through a
   column-block view (the file system gathers the fragments),
2. transpose the block locally (a NumPy reshape/transpose),
3. write it as a row block of the output file through a row-block view.

The result file holds the transposed matrix row-major.  Works for any
element size and any process count dividing the matrix side.
"""

from __future__ import annotations

import numpy as np

from ..clusterfile.fs import Clusterfile
from ..distributions.multidim import column_blocks, row_blocks

__all__ = ["transpose_out_of_core"]


def transpose_out_of_core(
    fs: Clusterfile,
    src: str,
    dst: str,
    rows: int,
    cols: int,
    itemsize: int = 1,
    nprocs: int | None = None,
) -> None:
    """Transpose the ``rows x cols`` matrix in file ``src`` into ``dst``.

    ``src`` must hold the matrix row-major (element size ``itemsize``);
    ``dst`` is created with a row-block physical layout matching the
    writers, so the write phase streams contiguously.
    """
    nprocs = nprocs or fs.config.compute_nodes
    if cols % nprocs or rows % nprocs:
        raise ValueError(
            f"{nprocs} processes must divide both dimensions "
            f"({rows}x{cols})"
        )
    out_phys = row_blocks(cols, rows, nprocs, itemsize)  # transposed shape
    if dst in fs.files:
        fs.unlink(dst)
    fs.create(dst, out_phys)

    col_view = column_blocks(rows, cols, nprocs, itemsize)
    row_view_out = row_blocks(cols, rows, nprocs, itemsize)

    cols_per = cols // nprocs
    for p in range(nprocs):
        # 1. Read column block p contiguously through a column view.
        fs.set_view(src, p, col_view, element=p)
        nbytes = rows * cols_per * itemsize
        block = fs.read(src, [(p, 0, nbytes)])[0]

        # 2. Local transpose: (rows, cols_per) -> (cols_per, rows).
        elems = block.reshape(rows, cols_per, itemsize)
        transposed = np.ascontiguousarray(elems.transpose(1, 0, 2)).reshape(-1)

        # 3. Write as row block p of the transposed file.
        fs.set_view(dst, p, row_view_out, element=p)
        fs.write(dst, [(p, 0, transposed)])
