"""Out-of-core blocked matrix multiplication through views.

The archetypal workload behind the paper's motivation: dense linear
algebra on matrices that live in parallel files.  ``C = A @ B`` is
computed block by block; each block of A, B and C is addressed through a
*subarray view* on its file, so all index arithmetic — which bytes of
which subfile make up block (i, k) — is the mapping machinery's job, and
only ``3 * tile²`` elements are ever in memory at once.

Files may use any physical layout; matched layouts stream, mismatched
ones pay gather/scatter — measurable with the usual breakdowns.
"""

from __future__ import annotations

import numpy as np

from ..core.algebra import complement
from ..core.falls import FallsSet
from ..core.partition import Partition
from ..clusterfile.fs import Clusterfile
from ..distributions.mpi_types import primitive, subarray

__all__ = ["store_matrix", "load_matrix", "matmul_out_of_core"]

_DTYPE = np.float64
_ITEM = 8


def _block_view(n: int, tile: int, bi: int, bj: int) -> Partition:
    """A single-element partition viewing one tile of an n x n float64
    matrix file (plus the filler element for the rest)."""
    ft = subarray(
        (n, n), (tile, tile), (bi * tile, bj * tile), primitive(_ITEM)
    )
    elements = [FallsSet(ft.falls.falls)]
    filler = complement(ft.falls, ft.extent)
    if not filler.is_empty:
        elements.append(filler)
    return Partition(elements)


def store_matrix(
    fs: Clusterfile, name: str, matrix: np.ndarray, physical: Partition
) -> None:
    """Create ``name`` with the given physical layout and stream the
    matrix in through a whole-file view."""
    raw = np.ascontiguousarray(matrix, dtype=_DTYPE).reshape(-1).view(np.uint8)
    if name in fs.files:
        fs.unlink(name)
    fs.create(name, physical)
    whole = Partition([FallsSet(
        (primitive(raw.size).falls.falls)
    )])
    fs.set_view(name, 0, whole, element=0)
    fs.write(name, [(0, 0, raw)])


def load_matrix(fs: Clusterfile, name: str, n: int) -> np.ndarray:
    """The whole matrix, assembled (verification aid)."""
    raw = fs.linear_contents(name, n * n * _ITEM)
    return raw.view(_DTYPE).reshape(n, n)


def matmul_out_of_core(
    fs: Clusterfile,
    a_name: str,
    b_name: str,
    c_name: str,
    n: int,
    tile: int,
    c_physical: Partition | None = None,
    node: int = 0,
) -> int:
    """Compute ``C = A @ B`` for n x n float64 matrices in files.

    Classic three-loop blocking: for every C tile, accumulate over the k
    tiles of A's block row and B's block column, reading each operand
    tile through a subarray view and writing each finished C tile once.
    Returns the number of tile reads performed (the I/O volume driver).
    """
    if n % tile:
        raise ValueError(f"tile {tile} must divide n={n}")
    nb = n // tile
    tile_bytes = tile * tile * _ITEM

    if c_name in fs.files:
        fs.unlink(c_name)
    from ..distributions.multidim import row_blocks

    fs.create(
        c_name,
        c_physical or row_blocks(n, n * _ITEM, fs.config.io_nodes),
    )

    reads = 0
    for bi in range(nb):
        for bj in range(nb):
            acc = np.zeros((tile, tile), dtype=_DTYPE)
            for bk in range(nb):
                fs.set_view(a_name, node, _block_view(n, tile, bi, bk),
                            element=0)
                a_raw = fs.read(a_name, [(node, 0, tile_bytes)])[0]
                fs.set_view(b_name, node, _block_view(n, tile, bk, bj),
                            element=0)
                b_raw = fs.read(b_name, [(node, 0, tile_bytes)])[0]
                reads += 2
                acc += a_raw.view(_DTYPE).reshape(tile, tile) @ b_raw.view(
                    _DTYPE
                ).reshape(tile, tile)
            fs.set_view(c_name, node, _block_view(n, tile, bi, bj), element=0)
            fs.write(
                c_name, [(node, 0, np.ascontiguousarray(acc).reshape(-1).view(np.uint8))]
            )
    return reads
