"""Applications built on the parallel file model.

Small but complete programs of the kind the paper's introduction
motivates — parallel scientific codes whose dominant data structures are
multidimensional arrays stored on parallel disks:

* :mod:`repro.apps.checkpoint` — save/restore distributed arrays with
  *resharding*: restart on a different process count or decomposition,
  powered by the redistribution algorithm;
* :mod:`repro.apps.transpose` — out-of-core matrix transpose through
  views;
* :mod:`repro.apps.halo` — ghost-cell exchange schedules derived from
  FALLS intersections;
* :mod:`repro.apps.matmul` — out-of-core blocked matrix multiply, every
  tile addressed through a subarray view.
"""

from .checkpoint import CheckpointStore, reshard
from .matmul import load_matrix, matmul_out_of_core, store_matrix
from .halo import HaloExchange
from .transpose import transpose_out_of_core

__all__ = [
    "CheckpointStore",
    "HaloExchange",
    "load_matrix",
    "matmul_out_of_core",
    "reshard",
    "store_matrix",
    "transpose_out_of_core",
]
