"""Per-byte redistribution baselines (what the paper argues against).

Paper §3: "by converting between two different distributions, it would
be inefficient to map each byte from one distribution to another.
Instead of that, we use a redistribution algorithm that maps between
partitions non-contiguous segments of bytes, instead of singular bytes."

Two baselines quantify that claim in the ablation benchmarks:

* :func:`redistribute_bytewise` — the straight reading of the sentence:
  for every byte of every source element, compute
  ``MAP_dst(MAP_src^{-1}(byte))`` with the scalar mapping functions and
  copy one byte.  Pure-Python per byte; this is the cost model of a
  naive implementation in any language, scaled by interpreter overhead.

* :func:`redistribute_bytewise_vectorized` — the strongest possible
  per-byte variant: offsets are mapped in bulk NumPy calls, but data
  still moves through per-byte fancy indexing with no segment
  coalescing.  This isolates the *algorithmic* benefit of segments from
  the language overhead.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.mapping import ElementMapper, map_offset, unmap_offset
from ..core.partition import Partition

__all__ = ["redistribute_bytewise", "redistribute_bytewise_vectorized"]


def _dst_buffers(dst: Partition, file_length: int) -> List[np.ndarray]:
    return [
        np.zeros(dst.element_length(j, file_length), dtype=np.uint8)
        for j in range(dst.num_elements)
    ]


def redistribute_bytewise(
    src: Partition,
    dst: Partition,
    src_buffers: Sequence[np.ndarray],
    file_length: int,
) -> List[np.ndarray]:
    """Move every byte individually via scalar MAP composition."""
    out = _dst_buffers(dst, file_length)
    start = max(src.displacement, dst.displacement)
    for i, buf in enumerate(src_buffers):
        for rank in range(buf.size):
            x = unmap_offset(src, i, rank)
            if x < start:
                continue  # the other partition does not own this byte
            for j in range(dst.num_elements):
                try:
                    y = map_offset(dst, j, x)
                except KeyError:
                    continue
                out[j][y] = buf[rank]
                break
    return out


def redistribute_bytewise_vectorized(
    src: Partition,
    dst: Partition,
    src_buffers: Sequence[np.ndarray],
    file_length: int,
) -> List[np.ndarray]:
    """Per-byte movement with bulk offset arithmetic.

    Offsets are translated with vectorised MAP/MAP^{-1}; membership in a
    destination element is tested per byte; data moves with fancy
    indexing.  No segments anywhere.
    """
    out = _dst_buffers(dst, file_length)
    start = max(src.displacement, dst.displacement)
    src_mappers = [ElementMapper(src, i) for i in range(src.num_elements)]
    dst_mappers = [ElementMapper(dst, j) for j in range(dst.num_elements)]
    for i, buf in enumerate(src_buffers):
        if buf.size == 0:
            continue
        ranks = np.arange(buf.size, dtype=np.int64)
        offsets = src_mappers[i].unmap_many(ranks)
        live = offsets >= start
        offsets = offsets[live]
        ranks = ranks[live]
        for j, mapper in enumerate(dst_mappers):
            if offsets.size == 0:
                break
            # Membership: an offset belongs to element j iff the 'next'
            # map lands exactly on it.
            ys = mapper.map_many(offsets, mode="next")
            back = mapper.unmap_many(ys)
            mine = back == offsets
            if not mine.any():
                continue
            out[j][ys[mine]] = buf[ranks[mine]]
            offsets = offsets[~mine]
            ranks = ranks[~mine]
    return out
