"""Redistribution schedules (paper §7).

Given two partitions of the same file — source and destination — the
redistribution algorithm intersects every source element with every
destination element and projects each non-empty intersection on both
sides.  The result is a :class:`RedistributionPlan`: one
:class:`Transfer` per communicating element pair, carrying

* the intersection (file space) — what the pair has in common,
* the source projection — *where to gather* those bytes from the source
  element's linear space, and
* the destination projection — *where to scatter* them in the
  destination element's linear space.

The plan is data-independent: it depends only on the two partitioning
patterns, is periodic (everything repeats with the lcm of the two
pattern sizes), and can be computed once and reused for any file length
and any number of accesses — this is exactly the cost the paper's
``t_i`` column measures and amortises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Tuple

from ..core.intersect_nested import intersect_elements
from ..core.mapping import ElementMapper
from ..core.partition import Partition
from ..core.periodic import PeriodicFallsSet
from ..core.projection import project
from ..core.segments import SegmentArrays, intersect_segment_arrays
from ..obs import metrics as _metrics

__all__ = ["Transfer", "RedistributionPlan", "build_plan"]


@dataclass(frozen=True)
class Transfer:
    """One source-element -> destination-element data movement."""

    src_element: int
    dst_element: int
    intersection: PeriodicFallsSet
    src_projection: PeriodicFallsSet
    dst_projection: PeriodicFallsSet

    @property
    def bytes_per_period(self) -> int:
        return self.intersection.size_per_period

    @property
    def src_fragments_per_period(self) -> int:
        """Fragments to gather at the source per intersection period."""
        return self.src_projection.fragment_count_per_period

    @property
    def dst_fragments_per_period(self) -> int:
        return self.dst_projection.fragment_count_per_period

    def bytes_in_file(self, file_length: int) -> int:
        """Bytes this transfer moves for a file of ``file_length``."""
        return self.intersection.count_in(0, file_length - 1)


@dataclass
class RedistributionPlan:
    """The full pairwise schedule between two partitions."""

    src: Partition
    dst: Partition
    transfers: List[Transfer]
    #: Element pairs the schedule construction considered (``p * q``).
    candidate_pairs: int = 0
    #: Pairs skipped by the cheap segment-overlap test before the nested
    #: intersection ran (see :func:`build_plan`).
    pruned_pairs: int = 0

    @cached_property
    def by_pair(self) -> Dict[Tuple[int, int], Transfer]:
        return {(t.src_element, t.dst_element): t for t in self.transfers}

    @cached_property
    def _by_src(self) -> Dict[int, List[Transfer]]:
        out: Dict[int, List[Transfer]] = {}
        for t in self.transfers:
            out.setdefault(t.src_element, []).append(t)
        return out

    @cached_property
    def _by_dst(self) -> Dict[int, List[Transfer]]:
        out: Dict[int, List[Transfer]] = {}
        for t in self.transfers:
            out.setdefault(t.dst_element, []).append(t)
        return out

    @property
    def message_count(self) -> int:
        """Element pairs that exchange data (network messages per write
        of one pattern period, in the paper's setting)."""
        return len(self.transfers)

    def transfers_from(self, src_element: int) -> List[Transfer]:
        """Transfers leaving one source element (cached index — plans are
        queried per element on every operation, so this must not rescan
        the whole transfer list)."""
        return self._by_src.get(src_element, [])

    def transfers_to(self, dst_element: int) -> List[Transfer]:
        """Transfers arriving at one destination element (cached index)."""
        return self._by_dst.get(dst_element, [])

    def total_bytes(self, file_length: int) -> int:
        return sum(t.bytes_in_file(file_length) for t in self.transfers)

    @property
    def is_identity(self) -> bool:
        """True when the two partitions match element for element — the
        optimal layout case where every view maps exactly on a subfile
        (paper §6.2)."""
        if self.src.num_elements != self.dst.num_elements:
            return False
        if len(self.transfers) != self.src.num_elements:
            return False
        for t in self.transfers:
            if t.src_element != t.dst_element:
                return False
            if t.src_projection.fragment_count_per_period != 1:
                return False
            if t.bytes_per_period * self.src.num_elements != (
                t.intersection.period
            ):
                return False
        return True

    def fragment_statistics(self) -> Dict[str, float]:
        """Aggregate fragmentation measures — the quantities that drive
        gather/scatter cost in the evaluation."""
        if not self.transfers:
            return {
                "transfers": 0,
                "bytes_per_period": 0,
                "src_fragments": 0,
                "dst_fragments": 0,
                "mean_fragment_bytes": 0.0,
            }
        src_frags = sum(t.src_fragments_per_period for t in self.transfers)
        dst_frags = sum(t.dst_fragments_per_period for t in self.transfers)
        total = sum(t.bytes_per_period for t in self.transfers)
        return {
            "transfers": len(self.transfers),
            "bytes_per_period": total,
            "src_fragments": src_frags,
            "dst_fragments": dst_frags,
            "mean_fragment_bytes": total / max(src_frags, 1),
        }


def _element_window_segments(
    p: Partition, window_lo: int, window_hi: int
) -> Optional[List[SegmentArrays]]:
    """Absolute byte segments each element of ``p`` selects within the
    common window ``[window_lo, window_hi]``, or ``None`` when the
    pattern cannot be expressed periodically (pruning is then skipped).
    """
    try:
        return [
            PeriodicFallsSet(e, p.displacement, p.size).segments_in(
                window_lo, window_hi
            )
            for e in p.elements
        ]
    except ValueError:  # pragma: no cover - non-tiling pattern, be safe
        return None


def build_plan(
    src: Partition, dst: Partition, prune: bool = True
) -> RedistributionPlan:
    """Compute the redistribution schedule between two partitions.

    Every (source element, destination element) pair is intersected; the
    non-empty intersections are projected onto both sides.  Mappers are
    built once per element and shared across the pairs, as a view-set
    implementation would cache them.

    With ``prune=True`` (the default) each pair is first tested with a
    cheap byte-exact overlap check: both elements' merged segment lists
    over one common lcm period are intersected as flat arrays
    (:func:`repro.core.segments.intersect_segment_arrays`), and provably
    empty pairs skip the nested intersection entirely.  Everything is
    periodic with the lcm period starting at the larger displacement, so
    emptiness over that single window is emptiness everywhere — the test
    never drops a communicating pair.  Sparse communication matrices
    (matching and near-matching layouts) therefore cost O(non-zero
    pairs) nested intersections instead of O(p*q).
    """
    transfers: List[Transfer] = []
    candidates = src.num_elements * dst.num_elements
    pruned = 0

    src_window = dst_window = None
    if prune:
        window_lo = max(src.displacement, dst.displacement)
        window_hi = window_lo + math.lcm(src.size, dst.size) - 1
        src_window = _element_window_segments(src, window_lo, window_hi)
        dst_window = _element_window_segments(dst, window_lo, window_hi)
    can_prune = src_window is not None and dst_window is not None

    src_mappers: Dict[int, ElementMapper] = {}
    dst_mappers: Dict[int, ElementMapper] = {}
    for i in range(src.num_elements):
        for j in range(dst.num_elements):
            if can_prune and (
                intersect_segment_arrays(src_window[i], dst_window[j])[
                    0
                ].size
                == 0
            ):
                pruned += 1
                continue
            inter = intersect_elements(src, i, dst, j)
            if inter.is_empty:
                continue
            if i not in src_mappers:
                src_mappers[i] = ElementMapper(src, i)
            if j not in dst_mappers:
                dst_mappers[j] = ElementMapper(dst, j)
            transfers.append(
                Transfer(
                    src_element=i,
                    dst_element=j,
                    intersection=inter,
                    src_projection=project(inter, src, i, src_mappers[i]),
                    dst_projection=project(inter, dst, j, dst_mappers[j]),
                )
            )
    _metrics.inc("build_plan.calls")
    _metrics.inc("build_plan.candidate_pairs", candidates)
    _metrics.inc("build_plan.pruned_pairs", pruned)
    return RedistributionPlan(
        src=src,
        dst=dst,
        transfers=transfers,
        candidate_pairs=candidates,
        pruned_pairs=pruned,
    )
