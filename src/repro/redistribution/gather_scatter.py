"""GATHER and SCATTER (paper §8.1).

``GATHER`` copies the non-contiguous bytes selected by a FALLS family
between two limits out of a linear buffer into a contiguous buffer;
``SCATTER`` is the exact reverse.  The Clusterfile compute node gathers
view data into a send buffer; the I/O node scatters received data into
its subfile.  The same pair implements MPI-style pack/unpack.

Three execution strategies, selected per call:

``strided``
    When every segment has the same length and the starts form an
    arithmetic progression (one flat FALLS — the overwhelmingly common
    case for array partitions), the copy is a single reshape of a
    ``numpy.lib.stride_tricks.as_strided`` view: no per-segment Python
    overhead at all.

``fancy``
    For many irregular segments, build a flat index array once
    (``repeat + cumsum`` trick) and do one vectorised fancy-index copy.

``slices``
    For few segments, plain per-segment slice copies (each one a
    memcpy) beat the index-array construction cost.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np
from numpy.lib.stride_tricks import as_strided

from ..core.periodic import PeriodicFallsSet
from ..core.segments import SegmentArrays

__all__ = ["gather", "scatter", "gather_segments", "scatter_segments"]

Strategy = Literal["auto", "strided", "fancy", "slices"]

#: Below this many segments, slice copies win over index construction.
_FANCY_THRESHOLD = 32


def _flat_indices(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Expand segments into a flat element-index array.

    Classic vectorised expansion: repeat each start ``length`` times and
    add a per-position ramp that restarts at every segment boundary.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    reps = np.repeat(starts, lengths)
    ramp = np.arange(total, dtype=np.int64)
    resets = np.repeat(np.cumsum(lengths) - lengths, lengths)
    return reps + (ramp - resets)


def _is_uniform(starts: np.ndarray, lengths: np.ndarray) -> bool:
    if starts.size <= 1:
        return True
    if np.any(lengths != lengths[0]):
        return False
    d = np.diff(starts)
    return bool(np.all(d == d[0]))


def _strided_view(
    buf: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> Optional[np.ndarray]:
    """A (n_segments, seg_len) strided view over ``buf``, or None when the
    view would read past the end of the buffer."""
    n = int(starts.size)
    seg_len = int(lengths[0])
    stride = int(starts[1] - starts[0]) if n > 1 else seg_len
    first = int(starts[0])
    last_needed = first + (n - 1) * stride + seg_len
    if stride <= 0 or last_needed > buf.size:
        return None
    base = buf[first:]
    return as_strided(base, shape=(n, seg_len), strides=(stride, 1))


def gather_segments(
    src: np.ndarray,
    segs: SegmentArrays,
    dst: Optional[np.ndarray] = None,
    strategy: Strategy = "auto",
) -> np.ndarray:
    """Pack the bytes of ``src`` at the given segments into a contiguous
    buffer.  ``src`` must be a 1-D uint8 array; segment coordinates index
    directly into it."""
    starts, lengths = segs
    total = int(lengths.sum()) if lengths.size else 0
    if dst is None:
        dst = np.empty(total, dtype=src.dtype)
    elif dst.size < total:
        raise ValueError(f"destination holds {dst.size} bytes, need {total}")
    out = dst[:total]
    if total == 0:
        return out
    uniform: Optional[bool] = None
    if strategy == "auto":
        uniform = _is_uniform(starts, lengths)
        if uniform:
            strategy = "strided"
        elif starts.size >= _FANCY_THRESHOLD:
            strategy = "fancy"
        else:
            strategy = "slices"
    if strategy == "strided":
        if uniform is None:
            uniform = _is_uniform(starts, lengths)
        view = _strided_view(src, starts, lengths) if uniform else None
        if view is not None:
            out[:] = view.reshape(-1)
            return out
        strategy = "slices"  # irregular or boundary over-read; fall back
    if strategy == "fancy":
        out[:] = src[_flat_indices(starts, lengths)]
        return out
    pos = 0
    for a, ln in zip(starts.tolist(), lengths.tolist()):
        out[pos : pos + ln] = src[a : a + ln]
        pos += ln
    return out


def scatter_segments(
    dst: np.ndarray,
    segs: SegmentArrays,
    src: np.ndarray,
    strategy: Strategy = "auto",
) -> None:
    """Unpack a contiguous buffer into ``dst`` at the given segments —
    the exact reverse of :func:`gather_segments`."""
    starts, lengths = segs
    total = int(lengths.sum()) if lengths.size else 0
    if total == 0:
        return
    if src.size < total:
        raise ValueError(f"source holds {src.size} bytes, need {total}")
    payload = src[:total]
    uniform: Optional[bool] = None
    if strategy == "auto":
        uniform = _is_uniform(starts, lengths)
        if uniform:
            strategy = "strided"
        elif starts.size >= _FANCY_THRESHOLD:
            strategy = "fancy"
        else:
            strategy = "slices"
    if strategy == "strided":
        if uniform is None:
            uniform = _is_uniform(starts, lengths)
        view = _strided_view(dst, starts, lengths) if uniform else None
        if view is not None:
            # NB: reshape(-1) on a non-contiguous strided view would
            # silently copy; assign through the 2-D view instead.
            view[:, :] = payload.reshape(view.shape)
            return
        strategy = "slices"
    if strategy == "fancy":
        dst[_flat_indices(starts, lengths)] = payload
        return
    pos = 0
    for a, ln in zip(starts.tolist(), lengths.tolist()):
        dst[a : a + ln] = payload[pos : pos + ln]
        pos += ln


def _window_segments(
    pfs: PeriodicFallsSet, lo: int, hi: int, base: int
) -> SegmentArrays:
    starts, lengths = pfs.segments_in(lo, hi)
    return starts - base, lengths


def gather(
    dst: np.ndarray,
    src: np.ndarray,
    lo: int,
    hi: int,
    pfs: PeriodicFallsSet,
    strategy: Strategy = "auto",
) -> np.ndarray:
    """The paper's GATHER(dest, src, lo, hi, S).

    ``src`` holds the linear-space interval ``[lo, hi]`` of the space
    ``pfs`` selects from (``src[0]`` is linear offset ``lo``); the bytes
    ``pfs`` selects inside the interval are packed into ``dst``.
    """
    return gather_segments(src, _window_segments(pfs, lo, hi, lo), dst, strategy)


def scatter(
    dst: np.ndarray,
    src: np.ndarray,
    lo: int,
    hi: int,
    pfs: PeriodicFallsSet,
    strategy: Strategy = "auto",
) -> None:
    """The paper's SCATTER(dest, src, lo, hi, S): reverse of
    :func:`gather` — unpack contiguous ``src`` into the selected bytes of
    the interval ``[lo, hi]`` held in ``dst``."""
    scatter_segments(dst, _window_segments(pfs, lo, hi, lo), src, strategy)
