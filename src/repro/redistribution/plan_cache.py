"""Process-wide redistribution plan cache.

The paper's central performance claim is that the intersection cost
``t_i`` is paid once per view set and amortised over every subsequent
access (§8.2).  A :class:`~repro.redistribution.schedule.RedistributionPlan`
depends only on the two partitioning patterns — it is data-independent
and valid for any file length — so the amortisation should not stop at
one ``View`` object: the collective-I/O aggregator, the relayout engine,
checkpoint resharding and every view set against the same pattern pair
can share a single plan.  ViPIOS and Eijkhout's formalisation both treat
the access-pattern -> communication-schedule computation as exactly this
kind of cacheable artifact.

This module provides that cache:

* plans are keyed by the *structural* identity of the two partitions
  (:meth:`repro.core.partition.Partition.structure_key` — a stable
  content hash over displacement and FALLS trees, so structurally equal
  partitions built independently, or loaded from JSON, hit the same
  entry);
* a bounded LRU with hit/miss/eviction counters and an explicit
  :func:`clear_plan_cache`;
* capacity is configurable via :func:`configure_plan_cache` or the
  ``REPRO_PLAN_CACHE_CAPACITY`` environment variable (``0`` disables
  caching entirely);
* a small companion cache for :class:`~repro.core.mapping.ElementMapper`
  instances, which view sets build per element and are likewise
  immutable and shareable.

Everything is thread-safe; cached plans and mappers are treated as
immutable by every consumer.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, Tuple

from ..core.mapping import ElementMapper
from ..core.partition import Partition
from ..obs import metrics as _metrics
from .schedule import RedistributionPlan, build_plan

__all__ = [
    "PlanCache",
    "get_plan",
    "get_mapper",
    "plan_cache_stats",
    "clear_plan_cache",
    "configure_plan_cache",
]

DEFAULT_CAPACITY = int(os.environ.get("REPRO_PLAN_CACHE_CAPACITY", "256"))


class PlanCache:
    """A bounded LRU of redistribution plans keyed by partition pair.

    Not usually instantiated directly — the module-level
    :func:`get_plan` serves the process-wide instance — but separate
    caches are handy in tests and in long-running servers that want
    per-tenant bounds.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, name: str | None = None):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._plans: "OrderedDict[Tuple[str, str], RedistributionPlan]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        #: When named, every hit/miss/eviction is mirrored into the
        #: process-wide metrics registry under ``plan_cache.<name>.*``
        #: (the global cache is named ``global``).
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _mirror(self, event: str, n: int = 1) -> None:
        if self.name is not None:
            _metrics.inc(f"plan_cache.{self.name}.{event}", n)

    # -- core API ------------------------------------------------------------

    def get(
        self, src: Partition, dst: Partition, prune: bool = True
    ) -> RedistributionPlan:
        """The plan between ``src`` and ``dst``, built at most once per
        structural pattern pair.

        On a hit the *same* plan object is returned, so per-transfer
        derived state (periodic segment memos, projection prefix sums)
        is shared by every consumer as well.
        """
        if self._capacity == 0:
            return build_plan(src, dst, prune=prune)
        key = (src.structure_key(), dst.structure_key())
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                self._mirror("hits")
                return plan
            self.misses += 1
            self._mirror("misses")
        # Build outside the lock: plan construction is the expensive part
        # and must not serialise unrelated lookups.
        plan = build_plan(src, dst, prune=prune)
        with self._lock:
            if key not in self._plans:
                self._plans[key] = plan
                while len(self._plans) > self._capacity:
                    self._plans.popitem(last=False)
                    self.evictions += 1
                    self._mirror("evictions")
            return self._plans[key]

    def configure(self, capacity: int) -> None:
        """Change the capacity, evicting LRU entries as needed."""
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        with self._lock:
            self._capacity = capacity
            while len(self._plans) > capacity:
                self._plans.popitem(last=False)
                self.evictions += 1
                self._mirror("evictions")

    def clear(self) -> None:
        """Drop every cached plan and reset the counters."""
        with self._lock:
            self._plans.clear()
            self.hits = self.misses = self.evictions = 0
            if self.name is not None:
                _metrics.reset_metrics(f"plan_cache.{self.name}")

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus current size and capacity."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._plans),
                "capacity": self._capacity,
            }

    def __len__(self) -> int:
        return len(self._plans)


class _MapperCache:
    """LRU of :class:`ElementMapper` keyed by (partition key, element)."""

    def __init__(self, capacity: int = 1024):
        self._capacity = capacity
        self._mappers: "OrderedDict[Tuple[str, int], ElementMapper]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()

    def get(self, partition: Partition, element: int) -> ElementMapper:
        key = (partition.structure_key(), element)
        with self._lock:
            mapper = self._mappers.get(key)
            if mapper is not None:
                self._mappers.move_to_end(key)
                return mapper
        mapper = ElementMapper(partition, element)
        with self._lock:
            self._mappers.setdefault(key, mapper)
            while len(self._mappers) > self._capacity:
                self._mappers.popitem(last=False)
            return self._mappers[key]

    def clear(self) -> None:
        with self._lock:
            self._mappers.clear()


_GLOBAL_PLANS = PlanCache(name="global")
_GLOBAL_MAPPERS = _MapperCache()


def get_plan(
    src: Partition, dst: Partition, prune: bool = True
) -> RedistributionPlan:
    """The process-wide cached redistribution plan for a pattern pair.

    Drop-in replacement for
    :func:`repro.redistribution.schedule.build_plan` wherever the caller
    does not mutate the plan (no caller does — plans are
    data-independent schedules).
    """
    return _GLOBAL_PLANS.get(src, dst, prune=prune)


def get_mapper(partition: Partition, element: int) -> ElementMapper:
    """A shared :class:`ElementMapper` for one partition element."""
    return _GLOBAL_MAPPERS.get(partition, element)


def plan_cache_stats() -> Dict[str, int]:
    """Counters of the process-wide plan cache."""
    return _GLOBAL_PLANS.stats()


def clear_plan_cache() -> None:
    """Empty the process-wide plan (and mapper) cache and reset stats."""
    _GLOBAL_PLANS.clear()
    _GLOBAL_MAPPERS.clear()


def configure_plan_cache(capacity: int) -> None:
    """Set the process-wide plan cache capacity (``0`` disables it)."""
    _GLOBAL_PLANS.configure(capacity)
