"""Executing redistribution plans on in-memory data.

The paper's algorithms apply to "any combination of redistributions:
disk-disk, disk-memory, memory-disk, memory-memory" (§3).  This module
is the memory-memory executor; the Clusterfile layer reuses the same
plan for the disk-backed combinations.

Data model: a file of ``file_length`` bytes distributed under a
partition is a list of per-element NumPy ``uint8`` buffers, each holding
that element's linear space (exactly what MAP produces).  The executor
moves bytes from the source buffers to the destination buffers by
gathering each transfer's source projection and scattering it through
the destination projection — whole segments at a time, never single
bytes.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.partition import Partition
from ..core.mapping import ElementMapper
from ..obs.span import tracked_span
from .gather_scatter import gather_segments, scatter_segments
from .schedule import RedistributionPlan, Transfer, build_plan

__all__ = [
    "PlanExecutor",
    "distribute",
    "collect",
    "execute_plan",
    "redistribute",
]


def _check_buffers(
    partition: Partition, buffers: Sequence[np.ndarray], file_length: int
) -> None:
    if len(buffers) != partition.num_elements:
        raise ValueError(
            f"expected {partition.num_elements} buffers, got {len(buffers)}"
        )
    for idx, buf in enumerate(buffers):
        want = partition.element_length(idx, file_length)
        if buf.size != want:
            raise ValueError(
                f"element {idx} buffer holds {buf.size} bytes, "
                f"expected {want} for a {file_length}-byte file"
            )


def distribute(data: np.ndarray, partition: Partition) -> List[np.ndarray]:
    """Split a linear file into per-element buffers (file -> elements).

    Bytes before the displacement belong to no element and are dropped,
    mirroring the paper's file model where the pattern starts at the
    displacement.
    """
    if isinstance(data, (bytes, bytearray, memoryview)):
        data = np.frombuffer(data, dtype=np.uint8)
    data = np.ascontiguousarray(data, dtype=np.uint8).reshape(-1)
    out: List[np.ndarray] = []
    for e in range(partition.num_elements):
        mapper = ElementMapper(partition, e)
        length = partition.element_length(e, data.size)
        ranks = np.arange(length, dtype=np.int64)
        out.append(data[mapper.unmap_many(ranks)])
    return out


def collect(
    buffers: Sequence[np.ndarray],
    partition: Partition,
    file_length: int,
    fill: int = 0,
) -> np.ndarray:
    """Reassemble a linear file from per-element buffers (elements -> file).

    Bytes before the displacement are filled with ``fill``.
    """
    _check_buffers(partition, buffers, file_length)
    data = np.full(file_length, fill, dtype=np.uint8)
    for e, buf in enumerate(buffers):
        if buf.size == 0:
            continue
        mapper = ElementMapper(partition, e)
        ranks = np.arange(buf.size, dtype=np.int64)
        data[mapper.unmap_many(ranks)] = buf
    return data


class PlanExecutor:
    """Reusable execution state for one plan.

    The schedule of a plan never changes, so repeated executions (the
    amortisation workload: same views, many accesses) should not pay the
    per-call setup again.  The executor keeps, across calls:

    * the per-transfer projection segment lists for the last few access
      extremities (via each projection's window memo), and
    * one preallocated gather scratch buffer per transfer, so the packed
      intermediate is not re-allocated on every access.

    Scratch buffers are **per transfer per thread**.  Cached plans are
    process-wide shared objects, and the executor rides on the plan, so
    two threads executing the same cached plan concurrently would
    otherwise gather into *one* scratch buffer and scatter each other's
    bytes.  A ``threading.local`` keeps the reuse win (the amortisation
    workload is a loop on one thread) while making concurrent execution
    race-free; the parallel path's pool workers likewise each see their
    own scratch.  Obtain a process-shared instance via
    :meth:`RedistributionPlan` + :func:`execute_plan`, or hold one
    explicitly for a long-lived pipeline.
    """

    def __init__(self, plan: RedistributionPlan):
        self.plan = plan
        self._tls = threading.local()

    def _gather_scratch(self, key: Tuple[int, int], nbytes: int) -> np.ndarray:
        scratch: Dict[Tuple[int, int], np.ndarray] | None = getattr(
            self._tls, "scratch", None
        )
        if scratch is None:
            scratch = self._tls.scratch = {}
        buf = scratch.get(key)
        if buf is None or buf.size < nbytes:
            buf = np.empty(nbytes, dtype=np.uint8)
            scratch[key] = buf
        return buf

    def _run_transfer(
        self,
        t: Transfer,
        src_buffers: Sequence[np.ndarray],
        dst_buffers: List[np.ndarray],
    ) -> None:
        src_len = src_buffers[t.src_element].size
        dst_len = dst_buffers[t.dst_element].size
        if src_len == 0 or dst_len == 0:
            return
        with tracked_span(
            "executor.transfer", src=t.src_element, dst=t.dst_element
        ) as sp:
            src_segs = t.src_projection.segments_in(0, src_len - 1)
            dst_segs = t.dst_projection.segments_in(0, dst_len - 1)
            nbytes = int(src_segs[1].sum()) if src_segs[1].size else 0
            if nbytes != (int(dst_segs[1].sum()) if dst_segs[1].size else 0):
                raise AssertionError(  # pragma: no cover
                    "projection byte counts diverge - plan is corrupt"
                )
            scratch = self._gather_scratch(
                (t.src_element, t.dst_element), nbytes
            )
            packed = gather_segments(
                src_buffers[t.src_element], src_segs, scratch
            )
            scatter_segments(dst_buffers[t.dst_element], dst_segs, packed)
            if sp is not None:
                sp.annotate(bytes=nbytes)

    def execute(
        self,
        src_buffers: Sequence[np.ndarray],
        file_length: int,
        parallel: bool = False,
        max_workers: int | None = None,
    ) -> List[np.ndarray]:
        """One redistribution pass; see :func:`execute_plan`.

        Inside a traced operation the pass shows up as an
        ``executor.execute`` span with one ``executor.transfer`` child
        per executed transfer (serial path; worker threads of the
        parallel path have no trace context and skip the bookkeeping).
        """
        plan = self.plan
        _check_buffers(plan.src, src_buffers, file_length)
        dst_buffers = [
            np.zeros(plan.dst.element_length(j, file_length), dtype=np.uint8)
            for j in range(plan.dst.num_elements)
        ]
        if not parallel:
            with tracked_span(
                "executor.execute",
                transfers=len(plan.transfers),
                file_length=file_length,
            ):
                for t in plan.transfers:
                    self._run_transfer(t, src_buffers, dst_buffers)
            return dst_buffers

        from concurrent.futures import ThreadPoolExecutor

        def run_group(group) -> None:
            for t in group:
                self._run_transfer(t, src_buffers, dst_buffers)

        groups = [
            plan.transfers_to(j)
            for j in range(plan.dst.num_elements)
            if plan.transfers_to(j)
        ]
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            list(pool.map(run_group, groups))
        return dst_buffers


def _executor_for(plan: RedistributionPlan) -> PlanExecutor:
    """The plan's lazily attached executor (plans cached process-wide by
    :mod:`repro.redistribution.plan_cache` thus share scratch buffers
    and segment memos across every consumer)."""
    ex = plan.__dict__.get("_executor")
    if ex is None:
        ex = PlanExecutor(plan)
        plan.__dict__["_executor"] = ex
    return ex


def execute_plan(
    plan: RedistributionPlan,
    src_buffers: Sequence[np.ndarray],
    file_length: int,
    parallel: bool = False,
    max_workers: int | None = None,
) -> List[np.ndarray]:
    """Move data from source-partition buffers to destination-partition
    buffers according to a precomputed plan.

    With ``parallel=True`` the transfers run on a thread pool, grouped
    by destination element so no two threads write the same buffer
    (transfers to one destination are disjoint in bytes but NumPy
    scatter into a shared buffer from multiple threads is still best
    avoided); NumPy's block copies release the GIL, so large
    redistributions scale with cores.

    Repeated executions of the same plan reuse cached projection
    segments and preallocated gather scratch via the plan's attached
    :class:`PlanExecutor`.
    """
    return _executor_for(plan).execute(
        src_buffers, file_length, parallel=parallel, max_workers=max_workers
    )


def execute_plan_windowed(
    plan: RedistributionPlan,
    src_buffers: Sequence[np.ndarray],
    file_length: int,
    window_bytes: int,
) -> List[np.ndarray]:
    """Out-of-core variant: process the file in fixed windows.

    A real redistribution of a file larger than memory cannot gather a
    transfer's entire payload at once.  Because both projections
    enumerate the common bytes in file order, the byte ranks of a file
    window form *aligned rank windows* on both sides: clipping each
    projection to its element's rank range for the window yields
    matching segment lists.  Peak temporary memory is bounded by the
    window size instead of the largest transfer.

    Results are bit-identical to :func:`execute_plan`.
    """
    if window_bytes < 1:
        raise ValueError(f"window_bytes must be >= 1, got {window_bytes}")
    _check_buffers(plan.src, src_buffers, file_length)
    dst_buffers = [
        np.zeros(plan.dst.element_length(j, file_length), dtype=np.uint8)
        for j in range(plan.dst.num_elements)
    ]
    for t in plan.transfers:
        src_len = src_buffers[t.src_element].size
        dst_len = dst_buffers[t.dst_element].size
        if src_len == 0 or dst_len == 0:
            continue
        # Rank windows: how many of this transfer's bytes precede each
        # file-window boundary on each side.
        total = t.intersection.count_in(0, file_length - 1)
        src_done = dst_done = 0
        for w0 in range(0, file_length, window_bytes):
            w1 = min(file_length, w0 + window_bytes)
            chunk = t.intersection.count_in(w0, w1 - 1)
            if chunk == 0:
                continue
            src_segs = _rank_window_segments(
                t.src_projection, src_len, src_done, src_done + chunk
            )
            dst_segs = _rank_window_segments(
                t.dst_projection, dst_len, dst_done, dst_done + chunk
            )
            packed = gather_segments(src_buffers[t.src_element], src_segs)
            scatter_segments(dst_buffers[t.dst_element], dst_segs, packed)
            src_done += chunk
            dst_done += chunk
        if src_done != total:  # pragma: no cover - accounting guard
            raise AssertionError("window sweep lost bytes")
    return dst_buffers


def _rank_window_segments(projection, element_len: int, lo_rank: int, hi_rank: int):
    """Segments of a projection restricted to its k-th..m-th selected
    bytes (selection order == file order == element order)."""
    starts, lengths = projection.segments_in(0, element_len - 1)
    if starts.size == 0 or hi_rank <= lo_rank:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    ends = np.cumsum(lengths)
    begins = ends - lengths
    out_starts = []
    out_lengths = []
    for s, b, e in zip(starts.tolist(), begins.tolist(), ends.tolist()):
        take_lo = max(b, lo_rank)
        take_hi = min(e, hi_rank)
        if take_lo < take_hi:
            out_starts.append(s + (take_lo - b))
            out_lengths.append(take_hi - take_lo)
    return (
        np.array(out_starts, dtype=np.int64),
        np.array(out_lengths, dtype=np.int64),
    )


def redistribute(
    src: Partition,
    dst: Partition,
    src_buffers: Sequence[np.ndarray],
    file_length: int,
    plan: RedistributionPlan | None = None,
) -> List[np.ndarray]:
    """Convenience wrapper: fetch (or reuse) a plan and execute it.

    Without an explicit plan the process-wide plan cache serves the
    pattern pair, so repeated redistributions between the same layouts
    build the schedule once.  A supplied plan must match the partitions
    *structurally* (cached plans are shared objects, so identity would
    be too strict).
    """
    if plan is None:
        from .plan_cache import get_plan  # local import avoids a cycle

        plan = get_plan(src, dst)
    elif plan.src != src or plan.dst != dst:
        raise ValueError("plan was built for different partitions")
    return execute_plan(plan, src_buffers, file_length)
