"""Data redistribution: schedules, gather/scatter, executors, baselines."""

from .gather_scatter import gather, gather_segments, scatter, scatter_segments
from .schedule import RedistributionPlan, Transfer, build_plan
from .plan_cache import (
    PlanCache,
    clear_plan_cache,
    configure_plan_cache,
    get_mapper,
    get_plan,
    plan_cache_stats,
)
from .executor import (
    PlanExecutor,
    collect,
    distribute,
    execute_plan,
    execute_plan_windowed,
    redistribute,
)
from .naive import redistribute_bytewise, redistribute_bytewise_vectorized

__all__ = [
    "PlanCache",
    "PlanExecutor",
    "RedistributionPlan",
    "Transfer",
    "build_plan",
    "clear_plan_cache",
    "collect",
    "configure_plan_cache",
    "distribute",
    "execute_plan",
    "execute_plan_windowed",
    "gather",
    "gather_segments",
    "get_mapper",
    "get_plan",
    "plan_cache_stats",
    "redistribute",
    "redistribute_bytewise",
    "redistribute_bytewise_vectorized",
    "scatter",
    "scatter_segments",
]
