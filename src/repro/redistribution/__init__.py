"""Data redistribution: schedules, gather/scatter, executors, baselines."""

from .gather_scatter import gather, gather_segments, scatter, scatter_segments
from .schedule import RedistributionPlan, Transfer, build_plan
from .executor import (
    collect,
    distribute,
    execute_plan,
    execute_plan_windowed,
    redistribute,
)
from .naive import redistribute_bytewise, redistribute_bytewise_vectorized

__all__ = [
    "RedistributionPlan",
    "Transfer",
    "build_plan",
    "collect",
    "distribute",
    "execute_plan",
    "execute_plan_windowed",
    "gather",
    "gather_segments",
    "redistribute",
    "redistribute_bytewise",
    "redistribute_bytewise_vectorized",
    "scatter",
    "scatter_segments",
]
