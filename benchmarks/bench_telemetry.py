"""Telemetry-overhead benchmark: what the histograms cost when nobody
is looking.

The engine records per-stage latency histograms and an op-level
histogram (with slow-op exemplars) on every operation; the service adds
queue/lock span records and three histograms of its own.  This
benchmark prices the *toggleable* part — the engine's per-stage
histograms (:func:`repro.obs.metrics.set_stage_histograms`) — on the
unfaulted single-worker write path, the path with the least work to
hide instrumentation behind.

Estimator: the same drift-robust **median of adjacent-window ratios**
as ``bench_faults`` — each repetition times one instrumented and one
bare window back-to-back (``inner`` runs each, order alternating), so
both sides of a ratio see the same machine state; the median discards
preempted windows.  The acceptance bar is < 5% overhead.

Run as a module to (re)generate the committed results file::

    PYTHONPATH=src python benchmarks/bench_telemetry.py

which writes ``BENCH_telemetry.json`` at the repository root.
"""

import gc
import json
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_service import _make_fs, _op_stream  # noqa: E402

from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.service import FileService  # noqa: E402

N_OPS = 96
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_telemetry.json",
)


def _run_once(ops) -> float:
    """One single-worker, unbatched pass of the write stream through
    the service; returns wall seconds."""
    fs = _make_fs()
    t0 = time.perf_counter()
    with FileService(
        fs, workers=1, max_queue=len(ops), admission="park", max_batch=1
    ) as svc:
        for node, off, data in ops:
            svc.submit_write("bench", node, off, data)
        assert svc.drain(timeout=300)
    return time.perf_counter() - t0


def measure(
    n_ops: int = N_OPS,
    repeats: int = 9,
    inner: int = 4,
    budget: float = 0.05,
) -> dict:
    ops = _op_stream(0, n_ops)
    _run_once(ops)  # warm-up (plan cache, allocator, thread pools)

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        ratios, bare_walls = [], []
        for rep in range(repeats):
            gc.collect()
            window = {}
            order = [True, False] if rep % 2 == 0 else [False, True]
            for enabled in order:
                obs_metrics.set_stage_histograms(enabled)
                wall = 0.0
                for _ in range(inner):
                    wall += _run_once(ops)
                window[enabled] = wall / inner
            ratios.append(window[True] / window[False])
            bare_walls.append(window[False])
    finally:
        obs_metrics.set_stage_histograms(True)
        if gc_was_enabled:
            gc.enable()

    ratio = statistics.median(ratios)
    bare_s = min(bare_walls)
    result = {
        "benchmark": "telemetry",
        "n_ops": n_ops,
        "repeats": repeats,
        "inner": inner,
        "bare_wall_us": bare_s * 1e6,
        "instrumented_wall_us": bare_s * ratio * 1e6,
        "overhead": ratio - 1.0,
    }
    # The acceptance bar: stage histograms cost under 5% on the
    # single-worker unfaulted write path (the regression gate re-runs
    # this on noisy CI and raises the budget).
    assert result["overhead"] < budget, result
    return result


class TestTelemetryBench:
    def test_overhead_is_small(self):
        # Lenient CI bound (noisy shared runners); the <5% headline is
        # asserted by measure() on a quiet machine and recorded in
        # BENCH_telemetry.json.
        result = measure(n_ops=32, repeats=3, inner=2, budget=0.5)
        assert result["bare_wall_us"] > 0

    def test_toggle_restored_after_measure(self):
        measure(n_ops=16, repeats=1, inner=1, budget=10.0)
        assert obs_metrics.stage_histograms_enabled()

    def test_disabled_records_no_stage_histograms(self):
        obs_metrics.reset_metrics("engine")
        obs_metrics.set_stage_histograms(False)
        try:
            _run_once(_op_stream(5, 8))
            assert not obs_metrics.get_registry().histograms("engine")
        finally:
            obs_metrics.set_stage_histograms(True)
        _run_once(_op_stream(6, 8))
        assert obs_metrics.get_registry().histograms("engine")


if __name__ == "__main__":
    result = measure()
    with open(RESULT_PATH, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(
        f"bare {result['bare_wall_us']:10.0f} us, instrumented "
        f"{result['instrumented_wall_us']:10.0f} us "
        f"({result['overhead'] * 100:+.2f}%)"
    )
    print(f"results -> {RESULT_PATH}")
