"""Benchmark: on-the-fly physical re-layout (extension of paper §3).

Measures the cost of re-laying a file out between the evaluation's
physical layouts — the Panda-style operation the paper says the
redistribution algorithm enables — and verifies the break-even claim:
a re-layout costs a bounded number of access-equivalents.
"""

import numpy as np
import pytest

from repro import matrix_partition, row_blocks
from repro.clusterfile import Clusterfile
from repro.clusterfile.relayout import relayout
from repro.simulation import ClusterConfig

N = 256
PAIRS = [("c", "r"), ("b", "r"), ("r", "c"), ("r", "r")]


def _file_with_data(layout):
    data = np.random.default_rng(9).integers(0, 256, N * N, dtype=np.uint8)
    fs = Clusterfile(ClusterConfig())
    fs.create("m", matrix_partition(layout, N, N, 4))
    logical = row_blocks(N, N, 4)
    for c in range(4):
        fs.set_view("m", c, logical)
    per = N * N // 4
    fs.write("m", [(c, 0, data[c * per : (c + 1) * per]) for c in range(4)])
    return fs, data


@pytest.mark.parametrize("src,dst", PAIRS, ids=[f"{a}->{b}" for a, b in PAIRS])
def test_relayout_wall_time(benchmark, src, dst):
    """Wall time of the real data movement plus schedule execution."""
    benchmark.group = "relayout"

    def run():
        fs, data = _file_with_data(src)
        res = relayout(fs, "m", matrix_partition(dst, N, N, 4))
        return fs, data, res

    fs, data, res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.bytes_moved == data.size
    np.testing.assert_array_equal(fs.linear_contents("m", data.size), data)


def test_relayout_simulated_cost_scales_with_mismatch(output_dir):
    """Simulated makespans: identity is free-ish, all-to-all is not."""
    import os

    lines = [f"{'pair':>7} {'makespan_ms':>12} {'cross_msgs':>10}"]
    makespans = {}
    for src, dst in PAIRS:
        fs, _ = _file_with_data(src)
        res = relayout(fs, "m", matrix_partition(dst, N, N, 4))
        makespans[(src, dst)] = res.makespan_s
        lines.append(
            f"{src + '->' + dst:>7} {res.makespan_s * 1e3:12.2f} "
            f"{res.cross_node_messages:10d}"
        )
    text = "\n".join(lines)
    with open(os.path.join(output_dir, "relayout.txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
    assert makespans[("r", "r")] < makespans[("c", "r")]
    assert makespans[("r", "r")] < makespans[("b", "r")]
