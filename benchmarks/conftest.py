"""Shared fixtures for the benchmark suite.

Run with ``pytest benchmarks/ --benchmark-only``.  Each ``bench_table*``
module regenerates one table/figure of the paper; the ``bench_ablation_*``
modules quantify design choices DESIGN.md calls out.  Formatted
paper-vs-measured tables are written to ``benchmarks/output/``.
"""

import os

import pytest


@pytest.fixture(scope="session")
def output_dir():
    path = os.path.join(os.path.dirname(__file__), "output")
    os.makedirs(path, exist_ok=True)
    return path


def pytest_collection_modifyitems(items):
    # Benchmarks are ordered: micro-benchmarks first, tables last, so a
    # partial run still exercises the core operations.
    items.sort(key=lambda it: ("table" in it.nodeid, it.nodeid))
