"""Namespace sharding benchmark: N independent files vs one shared file.

The multi-file service keeps *no* shared ordering between independent
files — separate queues, separate locks, separate sequence counters —
so a workload sharded over N files should approach N separate
single-file services running side by side.  This benchmark drives the
same write stream through an 8-worker service twice: all operations on
**one** file (the per-file lock serialises execution) and spread over
**eight** files addressed by namespace paths (nothing serialises).

Core-aware headline, like ``bench_mp_engine``: worker threads can only
overlap on real cores.  On a multi-core host the sharded run must beat
the single-file run by ``min_scaling`` (default 2x at 8 files / 8
workers).  On a starved host (the 1-CPU containers this repo is grown
in) raw scaling is physically impossible, so the bar becomes the
*no-serialization invariant* instead: the cross-file lock-conflict
counter must be exactly 0 and the sharded run must stay within
``max_overhead`` of the single-file wall (sharding costs scheduling,
never serialisation).  The result file records ``cpus`` and which bar
was applied.

Every run is byte-checked: each file's final contents must equal its
per-file serial replay.

Run as a module to (re)generate the committed results file::

    PYTHONPATH=src python benchmarks/bench_namespace.py

which writes ``BENCH_namespace.json`` at the repository root.
"""

import gc
import json
import os
import statistics
import time

import numpy as np

from repro.clusterfile.fs import Clusterfile
from repro.distributions import round_robin
from repro.namespace import ClusterNamespace
from repro.obs import metrics as obs_metrics
from repro.service import FileService
from repro.simulation.cluster import ClusterConfig

NPROCS = 4
CHUNK = 256
PAYLOAD = 4096
OPS = 192
FILES = 8
WORKERS = 8
MAX_BATCH = 1  # no coalescing: measure scheduling + locking, not batching
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_namespace.json",
)

#: Passed by the regression gate when re-running on noisy CI.
GATE_KWARGS = {"n_ops": 96, "repeats": 2, "min_scaling": 0.0,
               "max_overhead": 3.0}


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _make_namespace(n_files: int):
    fs = Clusterfile(ClusterConfig(compute_nodes=NPROCS, io_nodes=4))
    cns = ClusterNamespace(fs)
    paths = [f"/bench/f{j}" for j in range(n_files)]
    for path in paths:
        cns.create(path, round_robin(NPROCS, CHUNK), parents=True)
        for node in range(NPROCS):
            cns.set_view(path, node, round_robin(NPROCS, CHUNK))
    return cns, paths


def _op_stream(seed: int, n_ops: int, n_files: int):
    """Writes dealt round-robin over files and compute nodes: each
    file receives an identical-shape stream, so the single-file and
    sharded runs do the same byte work."""
    rng = np.random.default_rng(seed)
    ops = []
    for i in range(n_ops):
        off = int(rng.integers(0, 8)) * PAYLOAD
        data = rng.integers(0, 256, PAYLOAD, dtype=np.uint8)
        ops.append((i % n_files, i % NPROCS, off, data))
    return ops


def run_sharded(ops, n_files: int, workers: int = WORKERS):
    """The stream through the service, addressed by namespace path."""
    cns, paths = _make_namespace(n_files)
    obs_metrics.reset_metrics("service.lock")
    t0 = time.perf_counter()
    with FileService(
        cns.fs,
        workers=workers,
        max_queue=len(ops),
        admission="park",
        max_batch=MAX_BATCH,
        namespace=cns,
    ) as svc:
        for fidx, node, off, data in ops:
            svc.submit_write(paths[fidx], node, off, data)
        assert svc.drain(timeout=600)
    wall = time.perf_counter() - t0
    conflicts = obs_metrics.snapshot("service.lock").get(
        "service.lock.cross_file_conflicts", 0
    )
    return cns, paths, wall, conflicts


def _check_bytes(cns, paths, ops):
    """Each file must equal its own serial replay of the stream."""
    ref_cns, ref_paths = _make_namespace(len(paths))
    for fidx, node, off, data in ops:
        backing, _ = ref_cns.locate(ref_paths[fidx])
        ref_cns.fs.write(backing, [(node, off, data)])
    for path, ref_path in zip(paths, ref_paths):
        np.testing.assert_array_equal(
            cns.linear_contents(path),
            ref_cns.linear_contents(ref_path),
            err_msg=f"{path} diverges from its serial replay",
        )


def measure(
    n_ops: int = OPS,
    repeats: int = 3,
    min_scaling: float = None,
    max_overhead: float = 1.75,
) -> dict:
    """Single-file vs sharded walls; asserts the core-aware bar."""
    cpus = _cpus()
    if min_scaling is None:
        # 8 files / 8 workers on real cores should at least double;
        # without cores, demand bounded overhead + zero conflicts.
        min_scaling = 2.0 if cpus >= 4 else 0.0

    single_ops = _op_stream(0, n_ops, 1)
    multi_ops = _op_stream(0, n_ops, FILES)

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:

        def _bench(ops, n_files):
            walls, conflict_counts = [], []
            for r in range(repeats):
                gc.collect()
                cns, paths, wall, conflicts = run_sharded(ops, n_files)
                walls.append(wall)
                conflict_counts.append(conflicts)
                if r == 0:
                    _check_bytes(cns, paths, ops)
            return statistics.median(walls), max(conflict_counts)

        single_wall, single_conflicts = _bench(single_ops, 1)
        multi_wall, multi_conflicts = _bench(multi_ops, FILES)
    finally:
        if gc_was_enabled:
            gc.enable()

    scaling = single_wall / multi_wall
    result = {
        "benchmark": "namespace",
        "cpus": cpus,
        "scaling_bar": min_scaling,
        "max_overhead_bar": max_overhead,
        "files": FILES,
        "workers": WORKERS,
        "nprocs": NPROCS,
        "ops": n_ops,
        "payload_bytes": PAYLOAD,
        "repeats": repeats,
        "single_file": {
            "wall_s": single_wall,
            "ops_per_s": n_ops / single_wall,
            "cross_file_lock_conflicts": single_conflicts,
        },
        "sharded": {
            "wall_s": multi_wall,
            "ops_per_s": n_ops / multi_wall,
            "cross_file_lock_conflicts": multi_conflicts,
        },
        "sharded_scaling_x": scaling,
    }
    # The invariant holds on any host: independent files never block on
    # one another's locks.
    assert multi_conflicts == 0, result
    assert single_conflicts == 0, result
    if min_scaling > 0:
        assert scaling >= min_scaling, result
    else:
        # No cores to overlap on: sharding must still not serialise —
        # bounded scheduling overhead is all it may cost.
        assert multi_wall <= single_wall * max_overhead, result
    return result


class TestNamespaceBench:
    """CI-lenient checks; the headline numbers live in
    BENCH_namespace.json generated on a quiet machine."""

    def test_bytes_identical_per_file(self):
        ops = _op_stream(1, 48, FILES)
        cns, paths, _, _ = run_sharded(ops, FILES)
        _check_bytes(cns, paths, ops)

    def test_no_cross_file_conflicts(self):
        ops = _op_stream(2, 64, FILES)
        _, _, _, conflicts = run_sharded(ops, FILES)
        assert conflicts == 0

    def test_sharding_overhead_bounded(self):
        # Noisy shared runners: assert only that sharding does not
        # serialise (generous 3x bound vs the single-file wall).
        single = _op_stream(3, 64, 1)
        multi = _op_stream(3, 64, FILES)
        _, _, single_wall, _ = run_sharded(single, 1)
        _, _, multi_wall, _ = run_sharded(multi, FILES)
        assert multi_wall <= single_wall * 3.0

    def test_throughput(self, benchmark):
        benchmark.group = "namespace"
        ops = _op_stream(4, 48, FILES)
        benchmark(lambda: run_sharded(ops, FILES))


if __name__ == "__main__":
    result = measure()
    with open(RESULT_PATH, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    single = result["single_file"]
    sharded = result["sharded"]
    print(f"cpus: {result['cpus']}  (scaling bar {result['scaling_bar']}x)")
    print(f"single file : {single['ops_per_s']:8.1f} ops/s")
    print(
        f"{result['files']} files     : {sharded['ops_per_s']:8.1f} ops/s "
        f"({result['sharded_scaling_x']:.2f}x, "
        f"{sharded['cross_file_lock_conflicts']} cross-file conflicts)"
    )
    print(f"results -> {RESULT_PATH}")
