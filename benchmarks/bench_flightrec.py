"""Flight-recorder overhead benchmark: what always-on costs.

The flight recorder is designed to live on the hot path permanently —
every op start/finish, batch dispatch, lock grant and group commit
stores one 64-byte CRC-stamped slot into a shared mmap.  This
benchmark prices that store on the same least-forgiving path as
``bench_telemetry``: the single-worker, unbatched service write
stream, armed vs. disarmed.

Estimator: the drift-robust **median of adjacent-window ratios** —
each repetition times one armed and one disarmed window back-to-back
(``inner`` runs each, order alternating) so both sides of a ratio see
the same machine state; the median discards preempted windows.  The
acceptance bar is < 5% overhead (the ISSUE's headline number).

A second figure prices the primitive itself: ``record()`` calls per
second into an armed ring, straight-line.

Run as a module to (re)generate the committed results file::

    PYTHONPATH=src python benchmarks/bench_flightrec.py

which writes ``BENCH_flightrec.json`` at the repository root.
"""

import gc
import json
import os
import statistics
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_service import _make_fs, _op_stream  # noqa: E402

from repro.obs import flightrec  # noqa: E402
from repro.service import FileService  # noqa: E402

N_OPS = 96
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_flightrec.json",
)

#: The regression gate re-runs on noisy shared CI runners: fewer
#: repetitions, looser budget (the <5% headline is asserted by a
#: quiet-machine ``measure()`` and committed in the JSON).
GATE_KWARGS = {"n_ops": 48, "repeats": 5, "inner": 2, "budget": 0.25}


def _run_once(ops) -> float:
    """One single-worker, unbatched pass of the write stream through
    the service; returns wall seconds."""
    fs = _make_fs()
    t0 = time.perf_counter()
    with FileService(
        fs, workers=1, max_queue=len(ops), admission="park", max_batch=1
    ) as svc:
        for node, off, data in ops:
            svc.submit_write("bench", node, off, data)
        assert svc.drain(timeout=300)
    return time.perf_counter() - t0


def _record_rate(events: int = 200_000) -> float:
    """Straight-line ``record()`` calls per second into an armed ring."""
    with tempfile.TemporaryDirectory() as d:
        rec = flightrec.FlightRecorder(
            os.path.join(d, "rate.ring"), capacity=4096
        )
        try:
            t0 = time.perf_counter()
            for i in range(events):
                rec.record(flightrec.EV_OP_FINISH, trace=i, tseq=i, a=i)
            dt = time.perf_counter() - t0
        finally:
            rec.close()
    return events / dt


def measure(
    n_ops: int = N_OPS,
    repeats: int = 9,
    inner: int = 4,
    budget: float = 0.05,
) -> dict:
    ops = _op_stream(0, n_ops)
    _run_once(ops)  # warm-up (plan cache, allocator, thread pools)

    ring_dir = tempfile.mkdtemp(prefix="bench_flightrec_")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        ratios, bare_walls = [], []
        for rep in range(repeats):
            gc.collect()
            window = {}
            order = [True, False] if rep % 2 == 0 else [False, True]
            for armed in order:
                if armed:
                    flightrec.arm(
                        os.path.join(ring_dir, f"rep{rep}.ring"),
                        capacity=4096,
                    )
                else:
                    flightrec.disarm()
                wall = 0.0
                for _ in range(inner):
                    wall += _run_once(ops)
                window[armed] = wall / inner
            ratios.append(window[True] / window[False])
            bare_walls.append(window[False])
    finally:
        flightrec.disarm()
        if gc_was_enabled:
            gc.enable()
        for fn in os.listdir(ring_dir):
            try:
                os.remove(os.path.join(ring_dir, fn))
            except OSError:
                pass
        try:
            os.rmdir(ring_dir)
        except OSError:
            pass

    ratio = statistics.median(ratios)
    bare_s = min(bare_walls)
    result = {
        "benchmark": "flightrec",
        "n_ops": n_ops,
        "repeats": repeats,
        "inner": inner,
        "bare_wall_us": bare_s * 1e6,
        "armed_wall_us": bare_s * ratio * 1e6,
        "overhead": ratio - 1.0,
        # "_hz" deliberately: the regression gate's generic extractor
        # treats *_s suffixes as lower-is-better timings, and this is
        # a rate.
        "record_rate_hz": _record_rate(),
    }
    # The acceptance bar: an armed ring costs under 5% on the
    # single-worker unfaulted write path.
    assert result["overhead"] < budget, result
    return result


class TestFlightrecBench:
    def test_overhead_is_small(self):
        # Lenient CI bound (noisy shared runners); the <5% headline is
        # asserted by measure() on a quiet machine and recorded in
        # BENCH_flightrec.json.
        result = measure(n_ops=32, repeats=3, inner=2, budget=0.5)
        assert result["bare_wall_us"] > 0
        assert flightrec.active() is None  # disarmed after measure

    def test_record_rate_is_sub_microsecond_scale(self):
        # The ISSUE's "sub-microsecond" is a quiet-machine figure; here
        # just require record() to be far from the millisecond regime.
        rate = _record_rate(events=50_000)
        assert rate > 100_000, f"{rate:.0f} record()/s"


if __name__ == "__main__":
    result = measure()
    with open(RESULT_PATH, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(
        f"bare {result['bare_wall_us']:10.0f} us, armed "
        f"{result['armed_wall_us']:10.0f} us "
        f"({result['overhead'] * 100:+.2f}%), "
        f"{result['record_rate_hz']:.0f} record()/s"
    )
    print(f"results -> {RESULT_PATH}")
