"""Fault-machinery benchmark: what robustness costs when nothing fails,
and what recovery costs when something does.

Two measurements:

* **fault-free overhead** — the PR-1 plan-cache workload (Table-1
  row-block views against every physical layout at every paper size)
  written and read back through the engine's fast path (no injector,
  replication 1: the exact pre-fault code) and through the robust path
  armed with an *empty* fault plan (fates drawn, replica sets checked,
  zero faults fired; CRCs are stamped lazily so intact payloads skip
  the hash).  The wall-clock gap is the full price of the hooks — the
  aggregate must stay under 5% — and the bytes must match.
* **recovery latency vs drop rate** — a replicated (k=2) write under
  drop rates 0/5/10/20%: modelled write-to-disk completion and retry
  counts, normalised to the 0% run.  This is the curve an operator
  reads to size retry budgets.

Run as a module to (re)generate the committed results file::

    PYTHONPATH=src python benchmarks/bench_faults.py

which writes ``BENCH_faults.json`` at the repository root, or under
pytest (``pytest benchmarks/bench_faults.py --benchmark-only``).
"""

import gc
import json
import os
import statistics
import time

import numpy as np

from repro.bench.workloads import PAPER_PHYSICAL_LAYOUTS, PAPER_SIZES
from repro.clusterfile.fs import Clusterfile
from repro.distributions.multidim import matrix_partition, row_blocks
from repro.faults import FaultInjector, FaultPlan, FaultRule, RetryPolicy
from repro.faults.chaos import _workload
from repro.simulation.cluster import ClusterConfig

NPROCS = 4
N_BYTES = 64 * 1024
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_faults.json",
)


def _run_write_read(plan, replication=1, seed=0, n_bytes=N_BYTES, policy=None):
    """One write+read of the standard chaos workload; returns the
    linear contents, the two OperationResults, and the wall time."""
    logical, physical, data, n = _workload(seed, n_bytes, NPROCS)
    fs = Clusterfile(
        ClusterConfig(),
        fault_injector=FaultInjector(plan) if plan is not None else None,
        retry_policy=policy or RetryPolicy(),
    )
    fs.create("bench", physical, replication=replication)
    for node in range(NPROCS):
        fs.set_view("bench", node, logical, element=node)
    t0 = time.perf_counter()
    wres = fs.write(
        "bench",
        [(node, 0, data[node]) for node in range(NPROCS)],
        to_disk=True,
    )
    bufs, rres = fs.read_with_result(
        "bench",
        [(node, 0, data[node].size) for node in range(NPROCS)],
        from_disk=True,
    )
    wall_s = time.perf_counter() - t0
    for node in range(NPROCS):
        assert np.array_equal(bufs[node], data[node])
    return fs.linear_contents("bench", n), wres, rres, wall_s


def _t_w_disk(result) -> float:
    return max(bd.t_w_disk for bd in result.per_compute.values())


def _run_table1_pair(plan, n, ph):
    """One Table-1 write+read (row-block views over layout ``ph``);
    returns wall seconds and the written contents for identity checks."""
    logical = row_blocks(n, n, NPROCS)
    physical = matrix_partition(ph, n, n, NPROCS)
    total = n * n
    fs = Clusterfile(
        ClusterConfig(),
        fault_injector=FaultInjector(plan) if plan is not None else None,
        retry_policy=RetryPolicy(),
    )
    fs.create("bench", physical)
    data = {
        e: np.full(logical.element_length(e, total), e, np.uint8)
        for e in range(NPROCS)
    }
    for e in range(NPROCS):
        fs.set_view("bench", e, logical, element=e)
    t0 = time.perf_counter()
    wres = fs.write(
        "bench", [(e, 0, data[e]) for e in range(NPROCS)], to_disk=True
    )
    bufs, _ = fs.read_with_result(
        "bench", [(e, 0, data[e].size) for e in range(NPROCS)], from_disk=True
    )
    wall_s = time.perf_counter() - t0
    for e in range(NPROCS):
        assert np.array_equal(bufs[e], data[e])
    return wall_s, fs.linear_contents("bench", total), _t_w_disk(wres)


def measure_fault_free(repeats: int = 9, inner: int = 6) -> dict:
    """Armed-but-idle overhead across every Table-1 pair (PR-1's
    plan-cache workload): fast path vs robust path with an empty plan.

    Shared machines drift on a seconds timescale, which swamps a
    per-pair A-then-B comparison; the drift-robust estimator is the
    **median of adjacent-window ratios**: each repetition times one
    fast and one robust window back-to-back (``inner`` runs each,
    order alternating), so both sides of a ratio see the same machine
    state, and the median discards preempted windows.  The per-pair
    baseline is the best fast window (noise only ever adds time).
    """
    rows = []
    fast_total = extra_total = 0.0
    # A GC cycle landing inside one path's timed window but not the
    # other's dwarfs the effect being measured; collect between
    # windows, never during them.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for n in PAPER_SIZES:
            for ph in PAPER_PHYSICAL_LAYOUTS:
                # Byte identity and modelled-time identity: an empty
                # plan must be invisible to the data and the simulated
                # clock.  Checked once, outside any timed window (this
                # also warms the plan cache).
                _, fc, ft = _run_table1_pair(None, n, ph)
                _, rc, rt = _run_table1_pair(FaultPlan(), n, ph)
                assert np.array_equal(fc, rc)
                assert abs(ft - rt) < 1e-6
                ratios, fast_walls = [], []
                for rep in range(repeats):
                    gc.collect()
                    window = {}
                    order = [None, FaultPlan()] if rep % 2 == 0 else [
                        FaultPlan(), None
                    ]
                    for plan in order:
                        wall = 0.0
                        for _ in range(inner):
                            w, _, _ = _run_table1_pair(plan, n, ph)
                            wall += w
                        window[plan is None] = wall / inner
                    ratios.append(window[False] / window[True])
                    fast_walls.append(window[True])
                ratio = statistics.median(ratios)
                fast_s = min(fast_walls)
                fast_total += fast_s
                extra_total += fast_s * (ratio - 1.0)
                rows.append(
                    {
                        "size": n,
                        "physical": ph,
                        "fast_wall_us": fast_s * 1e6,
                        "robust_wall_us": fast_s * ratio * 1e6,
                        "overhead": ratio - 1.0,
                    }
                )
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "rows": rows,
        "fast_total_us": fast_total * 1e6,
        "robust_total_us": (fast_total + extra_total) * 1e6,
        "overhead": extra_total / fast_total if fast_total else 0.0,
    }


def measure_recovery(drop_rates=(0.0, 0.05, 0.10, 0.20), seed=0) -> list:
    """Modelled recovery latency and retry volume vs drop rate (k=2).

    The timeout is sized *above* the fault-free makespan of the 4 KiB
    workload (as an operator would: retransmitting before the slowest
    healthy disk can answer only wastes bandwidth), so every retry
    round genuinely delays completion.
    """
    policy = RetryPolicy(
        timeout_s=0.150, base_backoff_s=0.010, max_backoff_s=0.050
    )
    rows = []
    base = None
    for rate in drop_rates:
        rules = (FaultRule(kind="drop", rate=rate),) if rate else ()
        _, wres, rres, _ = _run_write_read(
            FaultPlan(seed=seed, rules=rules),
            replication=2,
            seed=seed,
            n_bytes=4096,
            policy=policy,
        )
        t = _t_w_disk(wres) + _t_w_disk(rres)
        if base is None:
            base = t
        rows.append(
            {
                "drop_rate": rate,
                "t_disk_us": t,
                "retries": wres.retries + rres.retries,
                "latency_overhead": t / base - 1.0 if base else 0.0,
            }
        )
    return rows


def measure(repeats: int = 9, budget: float = 0.05) -> dict:
    fault_free = measure_fault_free(repeats)
    # The headline number: armed-but-idle hooks must cost under 5%
    # across the whole PR-1 workload (the regression gate re-runs this
    # on noisy CI and raises the budget).
    assert fault_free["overhead"] < budget, fault_free
    recovery = measure_recovery()
    # Recovery latency must be monotone non-decreasing in intent: more
    # drops never make the modelled run *faster* than fault-free.
    assert all(r["latency_overhead"] >= -1e-9 for r in recovery)
    return {
        "benchmark": "faults",
        "nprocs": NPROCS,
        "n_bytes": N_BYTES,
        "repeats": repeats,
        "fault_free": fault_free,
        "recovery_vs_drop_rate": recovery,
    }


class TestFaultBench:
    def test_fault_free_overhead(self, benchmark):
        benchmark.group = "faults"
        benchmark(lambda: _run_write_read(FaultPlan()))

    def test_fault_free_is_byte_and_time_identical(self):
        stats = measure_fault_free(repeats=1)
        # Lenient wall-clock bound (CI machines are noisy; the <5%
        # number is recorded in BENCH_faults.json on a quiet machine);
        # the hard guarantees — byte and modelled-time identity — are
        # asserted inside measure_fault_free.
        assert stats["overhead"] < 0.5

    def test_recovery_latency_grows_with_drop_rate(self):
        rows = measure_recovery(drop_rates=(0.0, 0.20))
        assert rows[-1]["retries"] > 0
        assert rows[-1]["latency_overhead"] > 0.0


if __name__ == "__main__":
    result = measure()
    with open(RESULT_PATH, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    ff = result["fault_free"]
    for row in ff["rows"]:
        print(
            f"{row['size']:5d} {row['physical']}: "
            f"fast {row['fast_wall_us']:8.0f} us, "
            f"robust {row['robust_wall_us']:8.0f} us "
            f"({row['overhead'] * 100:+.1f}%)"
        )
    print(
        f"fault-free overhead, whole workload: {ff['overhead'] * 100:+.2f}%"
    )
    for row in result["recovery_vs_drop_rate"]:
        print(
            f"drop {row['drop_rate'] * 100:4.0f}%: "
            f"t_disk {row['t_disk_us']:9.1f} us, "
            f"retries {row['retries']:3d}, "
            f"latency {row['latency_overhead'] * 100:+.1f}%"
        )
    print(f"-> {RESULT_PATH}")
