"""Plan-cache benchmark: cold schedule construction vs warm cache hits.

Measures, for every Table-1 partition pair (row-block logical views vs
the three physical layouts at each paper size):

* **cold** — a full ``build_plan`` (INTERSECT + PROJ over all element
  pairs), the paper's ``t_i``;
* **warm** — ``PlanCache.get`` on a populated cache, what every view
  set, collective, relayout and reshard after the first one pays;
* the pair-pruning effect: candidate vs pruned vs surviving pairs.

Run as a module to (re)generate the committed results file::

    PYTHONPATH=src python benchmarks/bench_plan_cache.py

which writes ``BENCH_plan_cache.json`` at the repository root, or under
pytest (``pytest benchmarks/bench_plan_cache.py --benchmark-only``) for
the usual timing tables.
"""

import json
import os
import statistics
import time

from repro.bench.workloads import PAPER_PHYSICAL_LAYOUTS, PAPER_SIZES
from repro.distributions.multidim import matrix_partition, row_blocks
from repro.obs import metrics
from repro.redistribution.plan_cache import PlanCache
from repro.redistribution.schedule import build_plan

NPROCS = 4
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_plan_cache.json",
)


def _pairs():
    for n in PAPER_SIZES:
        for ph in PAPER_PHYSICAL_LAYOUTS:
            yield n, ph, row_blocks(n, n, NPROCS), matrix_partition(
                ph, n, n, NPROCS
            )


def _median_time(fn, repeats):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def measure(repeats: int = 9) -> dict:
    """Cold/warm medians and pruning counts for every Table-1 pair.

    Cache traffic is read back from the process-wide metrics registry
    (the benchmark cache is named ``bench``, so its hits/misses land
    under ``plan_cache.bench.*``), not from private counters.
    """
    rows = []
    metrics.reset_metrics("plan_cache.bench")
    for n, ph, logical, physical in _pairs():
        cold_s = _median_time(lambda: build_plan(logical, physical), repeats)
        cache = PlanCache(capacity=8, name="bench")
        cache.get(logical, physical)  # populate
        warm_s = _median_time(lambda: cache.get(logical, physical), repeats)
        plan = build_plan(logical, physical, prune=True)
        unpruned = build_plan(logical, physical, prune=False)
        assert len(plan.transfers) == len(unpruned.transfers)
        rows.append(
            {
                "size": n,
                "physical": ph,
                "logical": "r",
                "cold_us": cold_s * 1e6,
                "warm_us": warm_s * 1e6,
                "speedup": cold_s / warm_s if warm_s else float("inf"),
                "candidate_pairs": plan.candidate_pairs,
                "pruned_pairs": plan.pruned_pairs,
                "transfers": len(plan.transfers),
            }
        )
    speedups = [r["speedup"] for r in rows]
    snap = metrics.snapshot("plan_cache.bench")
    n_pairs = len(rows)
    cache_stats = {
        "hits": snap.get("plan_cache.bench.hits", 0),
        "misses": snap.get("plan_cache.bench.misses", 0),
        "evictions": snap.get("plan_cache.bench.evictions", 0),
    }
    # One miss (populate) + `repeats` hits per pair, no evictions: a
    # mismatch means the registry mirroring regressed.
    assert cache_stats["misses"] == n_pairs, cache_stats
    assert cache_stats["hits"] == n_pairs * repeats, cache_stats
    return {
        "benchmark": "plan_cache",
        "nprocs": NPROCS,
        "repeats": repeats,
        "rows": rows,
        "cache_stats": cache_stats,
        "min_speedup": min(speedups),
        "median_speedup": statistics.median(speedups),
    }


class TestPlanCacheBench:
    def test_cold_build(self, benchmark):
        logical = row_blocks(1024, 1024, NPROCS)
        physical = matrix_partition("b", 1024, 1024, NPROCS)
        benchmark.group = "plan-cache"
        plan = benchmark(lambda: build_plan(logical, physical))
        assert plan.transfers

    def test_warm_hit(self, benchmark):
        logical = row_blocks(1024, 1024, NPROCS)
        physical = matrix_partition("b", 1024, 1024, NPROCS)
        cache = PlanCache(capacity=8)
        cache.get(logical, physical)
        benchmark.group = "plan-cache"
        plan = benchmark(lambda: cache.get(logical, physical))
        assert plan.transfers

    def test_warm_is_10x_faster(self):
        """The ISSUE acceptance bar: warm acquisition at least 10x the
        cold build, for every Table-1 pair."""
        result = measure(repeats=5)
        assert result["min_speedup"] >= 10, result


def main() -> None:
    result = measure()
    with open(RESULT_PATH, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(f"wrote {RESULT_PATH}")
    print(
        f"min speedup {result['min_speedup']:.1f}x, "
        f"median {result['median_speedup']:.1f}x over "
        f"{len(result['rows'])} pairs"
    )


if __name__ == "__main__":
    main()
