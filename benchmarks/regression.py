"""Perf-regression gate: fresh benchmark runs vs committed baselines.

The repository commits headline benchmark results (``BENCH_*.json`` at
the root) produced on a quiet machine.  This tool re-runs a benchmark
and compares the fresh numbers against the committed baseline so a PR
that quietly slows a hot path fails CI instead of shipping:

* every timing metric in the pair of result files is reduced to a
  ratio ``fresh / baseline`` (lower is better for all of them);
* the verdict is the **median of ratios** — robust to one preempted
  metric on a shared runner — with two thresholds: above ``1 + warn``
  (default +10%) the gate *warns* (exit 0, loud message), above
  ``1 + tolerance`` it *fails* (exit 1);
* absolute numbers are never compared across machines — only the
  within-run structure (cold vs warm, fast vs robust, serial vs
  service) and the run-over-run ratios, which is what a gate can
  honestly assert on heterogeneous hardware.

Usage::

    python benchmarks/regression.py run service --out fresh.json
    python benchmarks/regression.py compare BENCH_service.json fresh.json
    python benchmarks/regression.py gate service --tolerance 1.5

``gate`` = run + compare against the committed baseline in one step.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
from typing import Callable, Dict, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Committed baseline file per benchmark name.
BASELINES = {
    "plan_cache": os.path.join(REPO_ROOT, "BENCH_plan_cache.json"),
    "faults": os.path.join(REPO_ROOT, "BENCH_faults.json"),
    "service": os.path.join(REPO_ROOT, "BENCH_service.json"),
    "telemetry": os.path.join(REPO_ROOT, "BENCH_telemetry.json"),
    "mp_engine": os.path.join(REPO_ROOT, "BENCH_mp_engine.json"),
}


# -- metric extraction -------------------------------------------------------


def _metrics_plan_cache(result: dict) -> List[Tuple[str, float]]:
    out = []
    for row in result["rows"]:
        key = f"{row['size']}:{row['physical']}"
        out.append((f"cold_us:{key}", float(row["cold_us"])))
        out.append((f"warm_us:{key}", float(row["warm_us"])))
    return out


def _metrics_faults(result: dict) -> List[Tuple[str, float]]:
    out = []
    for row in result["fault_free"]["rows"]:
        key = f"{row['size']}:{row['physical']}"
        out.append((f"fast_wall_us:{key}", float(row["fast_wall_us"])))
        out.append((f"robust_wall_us:{key}", float(row["robust_wall_us"])))
    for row in result["recovery_vs_drop_rate"]:
        out.append(
            (f"t_disk_us:drop={row['drop_rate']}", float(row["t_disk_us"]))
        )
    return out


def _metrics_service(result: dict) -> List[Tuple[str, float]]:
    out = [("serial_wall_s", float(result["serial"]["wall_s"]))]
    for row in result["service"]:
        out.append((f"service_wall_s:x{row['workers']}", float(row["wall_s"])))
    return out


def _metrics_telemetry(result: dict) -> List[Tuple[str, float]]:
    return [
        ("instrumented_wall_us", float(result["instrumented_wall_us"])),
        ("bare_wall_us", float(result["bare_wall_us"])),
    ]


def _metrics_mp_engine(result: dict) -> List[Tuple[str, float]]:
    out = [("serial_wall_s", float(result["serial"]["wall_s"]))]
    for row in result["threads"]:
        out.append((f"thread_wall_s:x{row['workers']}", float(row["wall_s"])))
    for row in result["processes"]:
        out.append(
            (f"process_wall_s:x{row['workers']}", float(row["wall_s"]))
        )
    return out


EXTRACTORS: Dict[str, Callable[[dict], List[Tuple[str, float]]]] = {
    "plan_cache": _metrics_plan_cache,
    "faults": _metrics_faults,
    "service": _metrics_service,
    "telemetry": _metrics_telemetry,
    "mp_engine": _metrics_mp_engine,
}


def extract_metrics(result: dict) -> List[Tuple[str, float]]:
    """The ``(label, seconds-like value)`` timing metrics of a result
    file (dispatched on its ``benchmark`` field)."""
    name = result.get("benchmark")
    if name not in EXTRACTORS:
        raise ValueError(f"no metric extractor for benchmark {name!r}")
    return EXTRACTORS[name](result)


# -- fresh runs --------------------------------------------------------------


def run_benchmark(name: str) -> dict:
    """Re-run one benchmark with gate-friendly parameters: fewer
    repeats than the committed run, and the bench's *internal*
    acceptance assertions relaxed — this tool's ratio thresholds are
    the gate, not the quiet-machine headline bars."""
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    if name == "plan_cache":
        import bench_plan_cache

        return bench_plan_cache.measure(repeats=3)
    if name == "faults":
        import bench_faults

        return bench_faults.measure(repeats=3, budget=1.0)
    if name == "service":
        import bench_service

        return bench_service.measure(n_ops=160, repeats=3, min_speedup=0.0)
    if name == "telemetry":
        import bench_telemetry

        return bench_telemetry.measure(budget=1.0)
    if name == "mp_engine":
        import bench_mp_engine

        return bench_mp_engine.measure(n_ops=24, repeats=3, min_speedup=0.0)
    raise ValueError(f"unknown benchmark {name!r}")


# -- comparison --------------------------------------------------------------


def compare(
    baseline: dict,
    fresh: dict,
    tolerance: float = 0.25,
    warn: float = 0.10,
) -> dict:
    """Compare two result dicts of the same benchmark.

    Returns ``{"verdict": "ok" | "warn" | "fail", "median_ratio": ...,
    "metrics": [{"label", "baseline", "fresh", "ratio"}, ...],
    "regressions": [...labels over the warn threshold...]}``.
    """
    if baseline.get("benchmark") != fresh.get("benchmark"):
        raise ValueError(
            f"benchmark mismatch: baseline {baseline.get('benchmark')!r} "
            f"vs fresh {fresh.get('benchmark')!r}"
        )
    if warn > tolerance:
        raise ValueError(f"warn ({warn}) must be <= tolerance ({tolerance})")
    base = dict(extract_metrics(baseline))
    new = dict(extract_metrics(fresh))
    shared = sorted(set(base) & set(new))
    if not shared:
        raise ValueError("no shared metrics between baseline and fresh run")
    rows = []
    ratios = []
    for label in shared:
        b, f = base[label], new[label]
        ratio = f / b if b > 0 else (1.0 if f == 0 else float("inf"))
        ratios.append(ratio)
        rows.append(
            {"label": label, "baseline": b, "fresh": f, "ratio": ratio}
        )
    median_ratio = statistics.median(ratios)
    verdict = "ok"
    if median_ratio > 1.0 + tolerance:
        verdict = "fail"
    elif median_ratio > 1.0 + warn:
        verdict = "warn"
    return {
        "benchmark": baseline["benchmark"],
        "verdict": verdict,
        "median_ratio": median_ratio,
        "tolerance": tolerance,
        "warn": warn,
        "metrics": rows,
        "regressions": [
            r["label"] for r in rows if r["ratio"] > 1.0 + warn
        ],
    }


def _print_report(report: dict) -> None:
    print(
        f"[{report['verdict'].upper():4}] {report['benchmark']}: "
        f"median ratio {report['median_ratio']:.3f} "
        f"(warn > {1 + report['warn']:.2f}, "
        f"fail > {1 + report['tolerance']:.2f})"
    )
    for row in report["metrics"]:
        mark = " *" if row["label"] in report["regressions"] else ""
        print(
            f"  {row['label']:<28} {row['baseline']:12.2f} -> "
            f"{row['fresh']:12.2f}  x{row['ratio']:.3f}{mark}"
        )
    if report["verdict"] == "warn":
        print(
            f"WARNING: {report['benchmark']} slowed by "
            f"{(report['median_ratio'] - 1) * 100:+.1f}% (median) — "
            f"under the failure tolerance, but look at it."
        )


# -- CLI ---------------------------------------------------------------------


def _load(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python benchmarks/regression.py")
    sub = parser.add_subparsers(dest="cmd", required=True)

    pr = sub.add_parser("run", help="run one benchmark, print/write JSON")
    pr.add_argument("name", choices=sorted(BASELINES))
    pr.add_argument("--out", help="write the fresh result here")
    pr.add_argument(
        "--update-baseline",
        action="store_true",
        help="also overwrite the committed baseline file "
        "(BENCH_<name>.json) with this fresh result — run on a quiet "
        "machine, then commit the file",
    )

    pc = sub.add_parser("compare", help="compare two result files")
    pc.add_argument("baseline")
    pc.add_argument("fresh")
    pc.add_argument("--tolerance", type=float, default=0.25)
    pc.add_argument("--warn", type=float, default=0.10)

    pg = sub.add_parser(
        "gate", help="run fresh + compare against the committed baseline"
    )
    pg.add_argument("name", choices=sorted(BASELINES))
    pg.add_argument("--baseline", help="override the baseline file")
    pg.add_argument("--tolerance", type=float, default=0.25)
    pg.add_argument("--warn", type=float, default=0.10)
    pg.add_argument("--out", help="write the fresh result here")

    args = parser.parse_args(argv)

    if args.cmd == "run":
        fresh = run_benchmark(args.name)
        text = json.dumps(fresh, indent=2)
        if args.out:
            with open(args.out, "w") as f:
                f.write(text + "\n")
            print(f"fresh {args.name} result -> {args.out}")
        else:
            print(text)
        if args.update_baseline:
            with open(BASELINES[args.name], "w") as f:
                f.write(text + "\n")
            print(f"baseline updated -> {BASELINES[args.name]}")
        return 0

    if args.cmd == "compare":
        report = compare(
            _load(args.baseline),
            _load(args.fresh),
            tolerance=args.tolerance,
            warn=args.warn,
        )
        _print_report(report)
        return 1 if report["verdict"] == "fail" else 0

    # gate
    baseline_path = args.baseline or BASELINES[args.name]
    baseline = _load(baseline_path)
    fresh = run_benchmark(args.name)
    if args.out:
        with open(args.out, "w") as f:
            json.dump(fresh, f, indent=2)
            f.write("\n")
    report = compare(
        baseline, fresh, tolerance=args.tolerance, warn=args.warn
    )
    _print_report(report)
    return 1 if report["verdict"] == "fail" else 0


if __name__ == "__main__":
    sys.exit(main())
