"""Perf-regression gate: fresh benchmark runs vs committed baselines.

The repository commits headline benchmark results (``BENCH_*.json`` at
the root) produced on a quiet machine.  This tool re-runs a benchmark
and compares the fresh numbers against the committed baseline so a PR
that quietly slows a hot path fails CI instead of shipping:

* every timing metric in the pair of result files is reduced to a
  ratio ``fresh / baseline`` (lower is better for all of them);
* the verdict is the **median of ratios** — robust to one preempted
  metric on a shared runner — with two thresholds: above ``1 + warn``
  (default +10%) the gate *warns* (exit 0, loud message), above
  ``1 + tolerance`` it *fails* (exit 1);
* absolute numbers are never compared across machines — only the
  within-run structure (cold vs warm, fast vs robust, serial vs
  service) and the run-over-run ratios, which is what a gate can
  honestly assert on heterogeneous hardware.

Usage::

    python benchmarks/regression.py run service --out fresh.json
    python benchmarks/regression.py compare BENCH_service.json fresh.json
    python benchmarks/regression.py gate service --tolerance 1.5

``gate`` = run + compare against the committed baseline in one step.
"""

from __future__ import annotations

import argparse
import glob
import importlib
import json
import os
import statistics
import sys
from typing import Callable, Dict, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def discover_baselines() -> Dict[str, str]:
    """Committed baselines, by glob: every ``BENCH_<name>.json`` at the
    repo root is a gate target — adding a benchmark means committing
    its result file, not editing this tool."""
    out: Dict[str, str] = {}
    for path in sorted(glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json"))):
        name = os.path.basename(path)[len("BENCH_"):-len(".json")]
        if name:
            out[name] = path
    return out


def baseline_path(name: str) -> str:
    """Where ``name``'s baseline lives (whether or not it exists yet —
    ``run --update-baseline`` creates it)."""
    return os.path.join(REPO_ROOT, f"BENCH_{name}.json")


# -- metric extraction -------------------------------------------------------


def _metrics_plan_cache(result: dict) -> List[Tuple[str, float]]:
    out = []
    for row in result["rows"]:
        key = f"{row['size']}:{row['physical']}"
        out.append((f"cold_us:{key}", float(row["cold_us"])))
        out.append((f"warm_us:{key}", float(row["warm_us"])))
    return out


def _metrics_faults(result: dict) -> List[Tuple[str, float]]:
    out = []
    for row in result["fault_free"]["rows"]:
        key = f"{row['size']}:{row['physical']}"
        out.append((f"fast_wall_us:{key}", float(row["fast_wall_us"])))
        out.append((f"robust_wall_us:{key}", float(row["robust_wall_us"])))
    for row in result["recovery_vs_drop_rate"]:
        out.append(
            (f"t_disk_us:drop={row['drop_rate']}", float(row["t_disk_us"]))
        )
    return out


def _metrics_service(result: dict) -> List[Tuple[str, float]]:
    out = [("serial_wall_s", float(result["serial"]["wall_s"]))]
    for row in result["service"]:
        out.append((f"service_wall_s:x{row['workers']}", float(row["wall_s"])))
    return out


def _metrics_telemetry(result: dict) -> List[Tuple[str, float]]:
    return [
        ("instrumented_wall_us", float(result["instrumented_wall_us"])),
        ("bare_wall_us", float(result["bare_wall_us"])),
    ]


def _metrics_mp_engine(result: dict) -> List[Tuple[str, float]]:
    out = [("serial_wall_s", float(result["serial"]["wall_s"]))]
    for row in result["threads"]:
        out.append((f"thread_wall_s:x{row['workers']}", float(row["wall_s"])))
    for row in result["processes"]:
        out.append(
            (f"process_wall_s:x{row['workers']}", float(row["wall_s"]))
        )
    return out


def _metrics_namespace(result: dict) -> List[Tuple[str, float]]:
    return [
        ("single_file_wall_s", float(result["single_file"]["wall_s"])),
        ("sharded_wall_s", float(result["sharded"]["wall_s"])),
    ]


#: Timing suffixes the generic extractor treats as lower-is-better.
_TIMING_SUFFIXES = ("_s", "_us", "_ms", "_ns")


def _metrics_generic(result: dict) -> List[Tuple[str, float]]:
    """Fallback extractor for benchmarks without a bespoke one: every
    numeric leaf whose key looks like a timing (``*_s``/``*_us``/...),
    labelled by its dotted path.  Counts, bars and ratios are skipped —
    only seconds-like values satisfy "lower is better"."""
    out: List[Tuple[str, float]] = []

    def visit(node, path: str) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                visit(value, f"{path}.{key}" if path else str(key))
        elif isinstance(node, list):
            for i, value in enumerate(node):
                visit(value, f"{path}[{i}]")
        elif isinstance(node, (int, float)) and not isinstance(node, bool):
            leaf = path.rsplit(".", 1)[-1]
            if leaf.endswith(_TIMING_SUFFIXES) and node > 0:
                out.append((path, float(node)))

    visit(result, "")
    return out


EXTRACTORS: Dict[str, Callable[[dict], List[Tuple[str, float]]]] = {
    "plan_cache": _metrics_plan_cache,
    "faults": _metrics_faults,
    "service": _metrics_service,
    "telemetry": _metrics_telemetry,
    "mp_engine": _metrics_mp_engine,
    "namespace": _metrics_namespace,
}


def extract_metrics(result: dict) -> List[Tuple[str, float]]:
    """The ``(label, seconds-like value)`` timing metrics of a result
    file — a bespoke extractor when one is registered for the file's
    ``benchmark`` field, the generic timing-leaf walk otherwise."""
    name = result.get("benchmark")
    extractor = EXTRACTORS.get(name, _metrics_generic)
    metrics = extractor(result)
    if not metrics:
        raise ValueError(f"no timing metrics found for benchmark {name!r}")
    return metrics


# -- fresh runs --------------------------------------------------------------


#: Gate-time ``measure()`` overrides for the long-standing benchmarks:
#: fewer repeats than the committed run, internal acceptance bars
#: relaxed — this tool's ratio thresholds are the gate, not the
#: quiet-machine headline assertions.
_GATE_PARAMS: Dict[str, dict] = {
    "plan_cache": {"repeats": 3},
    "faults": {"repeats": 3, "budget": 1.0},
    "service": {"n_ops": 160, "repeats": 3, "min_speedup": 0.0},
    "telemetry": {"budget": 1.0},
    "mp_engine": {"n_ops": 24, "repeats": 3, "min_speedup": 0.0},
}


def run_benchmark(name: str) -> dict:
    """Re-run one benchmark with gate-friendly parameters.

    Dispatch is by convention, not by an in-tool registry: the
    benchmark ``<name>`` is ``bench_<name>.py`` beside this file, its
    entry point is ``measure(**kwargs)``, and the kwargs come from
    ``_GATE_PARAMS`` or — for benchmarks this tool has never heard
    of — the module's own ``GATE_KWARGS`` (empty if absent)."""
    bench_dir = os.path.dirname(os.path.abspath(__file__))
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    try:
        module = importlib.import_module(f"bench_{name}")
    except ImportError as exc:
        raise ValueError(
            f"unknown benchmark {name!r}: no benchmarks/bench_{name}.py"
        ) from exc
    kwargs = _GATE_PARAMS.get(name, getattr(module, "GATE_KWARGS", {}))
    return module.measure(**kwargs)


# -- comparison --------------------------------------------------------------


def compare(
    baseline: dict,
    fresh: dict,
    tolerance: float = 0.25,
    warn: float = 0.10,
) -> dict:
    """Compare two result dicts of the same benchmark.

    Returns ``{"verdict": "ok" | "warn" | "fail", "median_ratio": ...,
    "metrics": [{"label", "baseline", "fresh", "ratio"}, ...],
    "regressions": [...labels over the warn threshold...]}``.
    """
    if baseline.get("benchmark") != fresh.get("benchmark"):
        raise ValueError(
            f"benchmark mismatch: baseline {baseline.get('benchmark')!r} "
            f"vs fresh {fresh.get('benchmark')!r}"
        )
    if warn > tolerance:
        raise ValueError(f"warn ({warn}) must be <= tolerance ({tolerance})")
    base = dict(extract_metrics(baseline))
    new = dict(extract_metrics(fresh))
    shared = sorted(set(base) & set(new))
    if not shared:
        raise ValueError("no shared metrics between baseline and fresh run")
    rows = []
    ratios = []
    for label in shared:
        b, f = base[label], new[label]
        ratio = f / b if b > 0 else (1.0 if f == 0 else float("inf"))
        ratios.append(ratio)
        rows.append(
            {"label": label, "baseline": b, "fresh": f, "ratio": ratio}
        )
    median_ratio = statistics.median(ratios)
    verdict = "ok"
    if median_ratio > 1.0 + tolerance:
        verdict = "fail"
    elif median_ratio > 1.0 + warn:
        verdict = "warn"
    return {
        "benchmark": baseline["benchmark"],
        "verdict": verdict,
        "median_ratio": median_ratio,
        "tolerance": tolerance,
        "warn": warn,
        "metrics": rows,
        "regressions": [
            r["label"] for r in rows if r["ratio"] > 1.0 + warn
        ],
    }


def _print_report(report: dict) -> None:
    print(
        f"[{report['verdict'].upper():4}] {report['benchmark']}: "
        f"median ratio {report['median_ratio']:.3f} "
        f"(warn > {1 + report['warn']:.2f}, "
        f"fail > {1 + report['tolerance']:.2f})"
    )
    for row in report["metrics"]:
        mark = " *" if row["label"] in report["regressions"] else ""
        print(
            f"  {row['label']:<28} {row['baseline']:12.2f} -> "
            f"{row['fresh']:12.2f}  x{row['ratio']:.3f}{mark}"
        )
    if report["verdict"] == "warn":
        print(
            f"WARNING: {report['benchmark']} slowed by "
            f"{(report['median_ratio'] - 1) * 100:+.1f}% (median) — "
            f"under the failure tolerance, but look at it."
        )


# -- CLI ---------------------------------------------------------------------


def _load(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python benchmarks/regression.py")
    sub = parser.add_subparsers(dest="cmd", required=True)

    baselines = discover_baselines()

    pr = sub.add_parser("run", help="run one benchmark, print/write JSON")
    pr.add_argument(
        "name",
        help=f"benchmark name (committed baselines: {sorted(baselines)})",
    )
    pr.add_argument("--out", help="write the fresh result here")
    pr.add_argument(
        "--update-baseline",
        action="store_true",
        help="also overwrite the committed baseline file "
        "(BENCH_<name>.json) with this fresh result — run on a quiet "
        "machine, then commit the file",
    )

    pc = sub.add_parser("compare", help="compare two result files")
    pc.add_argument("baseline")
    pc.add_argument("fresh")
    pc.add_argument("--tolerance", type=float, default=0.25)
    pc.add_argument("--warn", type=float, default=0.10)

    pg = sub.add_parser(
        "gate", help="run fresh + compare against the committed baseline"
    )
    pg.add_argument(
        "name",
        nargs="?",
        help=f"benchmark to gate (committed baselines: {sorted(baselines)})",
    )
    pg.add_argument(
        "--all",
        action="store_true",
        help="gate every benchmark with a committed BENCH_*.json baseline",
    )
    pg.add_argument("--baseline", help="override the baseline file")
    pg.add_argument("--tolerance", type=float, default=0.25)
    pg.add_argument("--warn", type=float, default=0.10)
    pg.add_argument(
        "--out",
        help="write the fresh result here (with --all: one file per "
        "benchmark, '<name>' substituted for '{name}' when present, "
        "else suffixed)",
    )

    args = parser.parse_args(argv)

    if args.cmd == "run":
        fresh = run_benchmark(args.name)
        text = json.dumps(fresh, indent=2)
        if args.out:
            with open(args.out, "w") as f:
                f.write(text + "\n")
            print(f"fresh {args.name} result -> {args.out}")
        else:
            print(text)
        if args.update_baseline:
            path = baseline_path(args.name)
            with open(path, "w") as f:
                f.write(text + "\n")
            print(f"baseline updated -> {path}")
        return 0

    if args.cmd == "compare":
        report = compare(
            _load(args.baseline),
            _load(args.fresh),
            tolerance=args.tolerance,
            warn=args.warn,
        )
        _print_report(report)
        return 1 if report["verdict"] == "fail" else 0

    # gate
    if args.all == bool(args.name):
        parser.error("gate needs a benchmark name or --all (not both)")
    names = sorted(baselines) if args.all else [args.name]
    if args.all and args.baseline:
        parser.error("--baseline cannot be combined with --all")
    failed = []
    for name in names:
        base_path = args.baseline or baselines.get(name) or baseline_path(name)
        baseline = _load(base_path)
        fresh = run_benchmark(name)
        if args.out:
            out = args.out
            if args.all:
                if "{name}" in out:
                    out = out.replace("{name}", name)
                else:
                    stem, ext = os.path.splitext(out)
                    out = f"{stem}-{name}{ext}"
            with open(out, "w") as f:
                json.dump(fresh, f, indent=2)
                f.write("\n")
        report = compare(
            baseline, fresh, tolerance=args.tolerance, warn=args.warn
        )
        _print_report(report)
        if report["verdict"] == "fail":
            failed.append(name)
    if failed:
        print(f"FAILED: {failed}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
