"""Regenerates the paper's Table 1: write-time breakdown at the compute
node, for every (matrix size, physical layout) cell.

Each benchmark measures one full concurrent write operation (view set
excluded — it is amortised, which is the paper's point); the shape-check
test asserts the qualitative claims of §8.2 and writes the formatted
paper-vs-measured table to ``benchmarks/output/table1.txt``.
"""

import os

import pytest

from repro.bench import (
    MatrixWorkload,
    PAPER_PHYSICAL_LAYOUTS,
    PAPER_SIZES,
    format_table1,
    shape_checks_table1,
    table1,
)
from repro.clusterfile import Clusterfile
from repro.simulation import ClusterConfig

CELLS = [(n, ph) for n in PAPER_SIZES for ph in PAPER_PHYSICAL_LAYOUTS]


def _prepared_write(n, layout):
    """Build the cluster and views once; return the write closure."""
    w = MatrixWorkload(n, layout)
    data = w.data()
    fs = Clusterfile(ClusterConfig())
    fs.create("m", w.physical())
    logical = w.logical()
    for c in range(w.nprocs):
        fs.set_view("m", c, logical)
    accesses = w.view_accesses(data)

    def do_write():
        return fs.write("m", accesses, to_disk=True)

    return do_write


@pytest.mark.parametrize("n,layout", CELLS, ids=[f"{n}-{ph}" for n, ph in CELLS])
def test_write_operation(benchmark, n, layout):
    """Wall time of one concurrent 4-process view write (real data
    movement + DES timing), per Table 1 cell."""
    do_write = _prepared_write(n, layout)
    benchmark.group = f"table1-write-{n}"
    result = benchmark.pedantic(do_write, rounds=3, iterations=1, warmup_rounds=1)
    assert result.payload_bytes == n * n


@pytest.mark.parametrize("layout", PAPER_PHYSICAL_LAYOUTS)
def test_view_set_cost(benchmark, layout):
    """The t_i column in isolation: intersection + projections for one
    view against all four subfiles (paid once, amortised)."""
    from repro.clusterfile.view import set_view

    w = MatrixWorkload(1024, layout)
    phys = w.physical()
    logical = w.logical()
    benchmark.group = "table1-view-set"
    view = benchmark.pedantic(
        lambda: set_view(0, logical, 0, phys), rounds=5, iterations=1
    )
    assert view.links


def test_table1_shapes(output_dir):
    """Regenerate the whole table and assert the paper's qualitative
    claims hold (§8.2)."""
    rows = table1(repeats=2)
    text = format_table1(rows)
    with open(os.path.join(output_dir, "table1.txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
    checks = shape_checks_table1(rows)
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"shape checks failed: {failed}"
