"""Regenerates the paper's Table 2: scatter time at the I/O node.

Benchmarks the server-side scatter path (the real NumPy data movement
into the subfile store) per cell, and asserts the paper's qualitative
claims: c > b > r ordering at small sizes, convergence of all three
layouts at large sizes, growth with size.
"""

import os

import numpy as np
import pytest

from repro.bench import (
    MatrixWorkload,
    PAPER_PHYSICAL_LAYOUTS,
    PAPER_SIZES,
    format_table2,
    shape_checks_table2,
    table2,
)
from repro.clusterfile import Clusterfile
from repro.clusterfile.file_model import SubfileStore
from repro.clusterfile.server import IOServer
from repro.clusterfile.view import set_view
from repro.simulation import Cluster, ClusterConfig

CELLS = [(n, ph) for n in (256, 1024) for ph in PAPER_PHYSICAL_LAYOUTS]


def _prepared_scatter(n, layout):
    """One I/O server request exactly as the write path issues it."""
    w = MatrixWorkload(n, layout)
    phys = w.physical()
    logical = w.logical()
    view = set_view(0, logical, 0, phys)
    subfile = sorted(view.links)[0]
    link = view.links[subfile]
    cluster = Cluster(ClusterConfig())
    server = IOServer(cluster.io_node_for(subfile), SubfileStore(subfile), cluster.config)
    per = w.bytes_per_process
    nbytes = link.proj_view.count_in(0, per - 1)
    payload = np.arange(nbytes, dtype=np.uint8)
    from repro.core.mapping import map_offset, unmap_offset

    x0 = unmap_offset(logical, 0, 0)
    x1 = unmap_offset(logical, 0, per - 1)
    l_s = map_offset(phys, subfile, x0, mode="next")
    r_s = map_offset(phys, subfile, x1, mode="prev")

    def do_scatter():
        return server.write(l_s, r_s, payload, link.proj_subfile, to_disk=True)

    return do_scatter


@pytest.mark.parametrize("n,layout", CELLS, ids=[f"{n}-{ph}" for n, ph in CELLS])
def test_server_scatter(benchmark, n, layout):
    do_scatter = _prepared_scatter(n, layout)
    benchmark.group = f"table2-scatter-{n}"
    cost = benchmark.pedantic(do_scatter, rounds=5, iterations=1, warmup_rounds=1)
    assert cost.nbytes > 0


def test_table2_shapes(output_dir):
    rows = table2(repeats=2)
    text = format_table2(rows)
    with open(os.path.join(output_dir, "table2.txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
    checks = shape_checks_table2(rows)
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"shape checks failed: {failed}"
