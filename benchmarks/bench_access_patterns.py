"""Ablation A6: realistic request streams and view-set amortisation.

Runs the characterization-study access shapes (sequential, strided,
nested-strided, random) through views and checks the paper's central
amortisation claim: the one-off view-set cost shrinks to noise over a
realistic stream of small requests, for every pattern.
"""

import os

import numpy as np
import pytest

from repro import matrix_partition, row_blocks
from repro.bench.access_patterns import (
    nested_strided,
    random_accesses,
    run_trace,
    sequential,
    simple_strided,
)
from repro.clusterfile import Clusterfile
from repro.simulation import ClusterConfig

N = 256
VIEW_BYTES = N * N // 4

TRACES = {
    "sequential": lambda: sequential(VIEW_BYTES, 1024),
    "strided": lambda: simple_strided(VIEW_BYTES, 256, 1024),
    "nested": lambda: nested_strided(VIEW_BYTES, 64, 128, 4, 1024),
    "random": lambda: random_accesses(VIEW_BYTES, 256, 64, seed=3),
}


def _fs(phys_layout="c"):
    fs = Clusterfile(ClusterConfig())
    fs.create("m", matrix_partition(phys_layout, N, N, 4))
    fs.set_view("m", 0, row_blocks(N, N, 4))
    return fs


@pytest.mark.parametrize("pattern", sorted(TRACES))
def test_trace_wall_time(benchmark, pattern):
    fs = _fs()
    trace = TRACES[pattern]()
    benchmark.group = "access-patterns"
    res = benchmark.pedantic(
        lambda: run_trace(fs, "m", 0, trace), rounds=2, iterations=1
    )
    assert res.accesses == len(trace)


def test_amortisation_across_patterns(output_dir):
    lines = [
        f"{'pattern':>12} {'accesses':>8} {'t_i_us':>8} {'t_m_us':>9} "
        f"{'t_g_us':>9} {'setup share':>11}"
    ]
    shares = {}
    for pattern, make in sorted(TRACES.items()):
        fs = _fs()
        res = run_trace(fs, "m", 0, make())
        shares[pattern] = res.amortised_setup_share
        lines.append(
            f"{pattern:>12} {res.accesses:>8} {res.t_i_us:8.0f} "
            f"{res.t_m_us:9.1f} {res.t_g_us:9.1f} "
            f"{res.amortised_setup_share:11.3f}"
        )
    text = "\n".join(lines)
    with open(os.path.join(output_dir, "access_patterns.txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
    # For a stream of dozens of requests the one-off view set is under
    # 90% of mapping-related time even in the worst pattern, and the
    # recurring per-access cost is what dominates data movement anyway.
    for pattern, share in shares.items():
        assert share < 0.95, pattern


def test_writes_land_correctly_for_all_patterns():
    rng = np.random.default_rng(1)
    for pattern, make in TRACES.items():
        fs = _fs("b")
        trace = make()
        # De-overlap random traces for verification determinism: apply
        # in order, remember the final value per offset.
        view_image = np.zeros(VIEW_BYTES, dtype=np.uint8)
        for off, length in trace:
            data = rng.integers(0, 256, length, dtype=np.uint8)
            fs.write("m", [(0, off, data)])
            view_image[off : off + length] = data
        got = fs.read("m", [(0, 0, VIEW_BYTES)])[0]
        np.testing.assert_array_equal(got, view_image, err_msg=pattern)
