"""Benchmarks for the executor variants: serial, threaded, windowed.

Measures the real data-movement throughput of the redistribution
executor on a full-size workload (2048x2048 = 4 MiB, the paper's
largest), and verifies the variants agree bit-for-bit.
"""

import numpy as np
import pytest

from repro import matrix_partition
from repro.redistribution import build_plan, distribute
from repro.redistribution.executor import execute_plan, execute_plan_windowed

N = 2048


@pytest.fixture(scope="module")
def workload():
    data = np.random.default_rng(6).integers(0, 256, N * N, dtype=np.uint8)
    src_p = matrix_partition("c", N, N, 4)
    dst_p = matrix_partition("r", N, N, 4)
    plan = build_plan(src_p, dst_p)
    src = distribute(data, src_p)
    return data, plan, src


def test_serial_executor(benchmark, workload):
    data, plan, src = workload
    benchmark.group = "executor-4MiB"
    out = benchmark(lambda: execute_plan(plan, src, data.size))
    assert sum(b.size for b in out) == data.size


def test_threaded_executor(benchmark, workload):
    data, plan, src = workload
    benchmark.group = "executor-4MiB"
    out = benchmark(
        lambda: execute_plan(plan, src, data.size, parallel=True)
    )
    assert sum(b.size for b in out) == data.size


@pytest.mark.parametrize("window", [64 * 1024, 1024 * 1024])
def test_windowed_executor(benchmark, workload, window):
    data, plan, src = workload
    benchmark.group = "executor-4MiB"
    out = benchmark(
        lambda: execute_plan_windowed(plan, src, data.size, window)
    )
    assert sum(b.size for b in out) == data.size


def test_variants_agree(workload):
    data, plan, src = workload
    a = execute_plan(plan, src, data.size)
    b = execute_plan(plan, src, data.size, parallel=True)
    c = execute_plan_windowed(plan, src, data.size, 128 * 1024)
    for x, y, z in zip(a, b, c):
        np.testing.assert_array_equal(x, y)
        np.testing.assert_array_equal(x, z)
