"""Durability benchmark: journal overhead and recovery cost.

Two questions, both with acceptance bars:

* **What does the write-ahead journal cost on the batch-coalesced
  write path?**  The same stream of coalesced batches runs through the
  engine twice — journal off vs journal on — timing exactly what a
  service worker does under the file lock: one engine call per batch,
  plus (journal on) one group commit per batch.  This is the
  *harshest* denominator: the bare in-memory engine call, with
  dispatch, locking, tracing and ticket resolution all stripped away
  (the service's end-to-end wall is not used — a single driver thread
  is submission-bound and its wall prices the client, not the
  journal).  Group commit costs ~0.1 ms per 16-op batch (~7 µs/op,
  dominated by one ``write(2)`` per touched journal), which measures
  12–15% of the bare engine call and amortises with batch depth
  (per-op floor ~4 µs, ≈9% of the engine's per-op cost); against the
  full worker path it is under 10%.  The bar asserted here is 15% on
  the bare-engine denominator.
* **What does recovery cost as the journal grows?**  A deployment is
  journaled for N batches, then recovered from scratch; recovery
  replays every record since the last checkpoint, so its wall time
  should scale roughly linearly in journal length — the rows let the
  regression gate catch an accidental O(n^2) rescan.

The pytest classes additionally assert the service-level contract:
byte-identical files with the journal on, through the real
``FileService`` batching path.

Run as a module to (re)generate the committed results file::

    PYTHONPATH=src python benchmarks/bench_durability.py

which writes ``BENCH_durability.json`` at the repository root (picked
up by ``regression.py gate --all``), or under pytest
(``pytest benchmarks/bench_durability.py``).
"""

import gc
import json
import os
import shutil
import statistics
import tempfile
import time

import numpy as np

from repro.clusterfile.fs import Clusterfile
from repro.distributions import round_robin
from repro.durability import DurabilityManager
from repro.service import FileService
from repro.simulation.cluster import ClusterConfig

NPROCS = 8
CHUNK = 256
PAYLOAD = 512
BATCHES = 32
BATCH = 16
RECOVERY_BATCHES = (16, 64, 256)
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_durability.json",
)

#: CI-gate overrides (regression.py): fewer repeats, acceptance bars
#: off — the gate's own ratio thresholds are the bar on shared runners.
#: Same n_batches as the committed baseline so wall_s compares 1:1.
GATE_KWARGS = {"repeats": 3, "max_overhead": None}


def _make_fs() -> Clusterfile:
    fs = Clusterfile(ClusterConfig(compute_nodes=NPROCS, io_nodes=4))
    fs.create("bench", round_robin(NPROCS, CHUNK))
    for node in range(NPROCS):
        fs.set_view("bench", node, round_robin(NPROCS, CHUNK))
    return fs


def _batch_stream(seed: int, n_batches: int, batch: int = BATCH):
    """Coalesced batches of ``(seq, node, offset, payload)`` — the
    shape the service's dispatcher hands a worker after batching."""
    rng = np.random.default_rng(seed)
    out = []
    seq = 0
    for _ in range(n_batches):
        ops = []
        for i in range(batch):
            node = i % NPROCS
            off = int(rng.integers(0, 8)) * PAYLOAD
            data = rng.integers(0, 256, PAYLOAD, dtype=np.uint8)
            ops.append((seq, node, off, data))
            seq += 1
        out.append(ops)
    return out


def run_write_path(batches, journal_root=None):
    """The worker's write path: one engine call per batch, plus (with
    ``journal_root``) one group commit per batch.  Returns
    ``(fs, manager, wall_s)``.

    Registration (base snapshot + journal creation) happens before the
    clock starts: it is one-time deployment setup, not part of the
    per-write journal cost this benchmark prices."""
    fs = _make_fs()
    manager = None
    if journal_root is not None:
        manager = DurabilityManager(journal_root)
        manager.register_file(fs, "bench")
    t0 = time.perf_counter()
    for ops in batches:
        fs.write("bench", [(n, o, d) for _s, n, o, d in ops])
        if manager is not None:
            manager.commit_write(
                fs, "bench", [(s, n, o, d.size) for s, n, o, d in ops]
            )
    wall = time.perf_counter() - t0
    return fs, manager, wall


def run_service(ops, journal_root=None):
    """The same contract through the real service (used by the pytest
    byte-identity checks): ``ops`` is ``[(node, offset, payload)]``."""
    fs = _make_fs()
    manager = None
    if journal_root is not None:
        manager = DurabilityManager(journal_root)
        manager.register_file(fs, "bench")
    with FileService(
        fs,
        workers=4,
        max_queue=len(ops),
        admission="park",
        max_batch=BATCH,
        durability=manager,
    ) as svc:
        for node, off, data in ops:
            svc.submit_write("bench", node, off, data)
        assert svc.drain(timeout=300)
    return fs, manager


def run_recovery(n_batches: int, batch: int = 4):
    """Journal ``n_batches`` batches, then time a cold recovery of the
    whole journal into a fresh deployment."""
    root = tempfile.mkdtemp(prefix="bench-durability-")
    try:
        batches = _batch_stream(7, n_batches, batch)
        fs, manager, _ = run_write_path(
            batches, journal_root=os.path.join(root, "j")
        )
        records = sum(len(b) for b in batches)
        want = fs.linear_contents("bench").copy()
        full_stamp = manager.last_stamp("bench")
        manager.close()

        fs2 = _make_fs()
        fs2.unlink("bench")
        m2 = DurabilityManager(os.path.join(root, "j"))
        t0 = time.perf_counter()
        report = m2.recover_into(fs2)
        wall = time.perf_counter() - t0
        m2.close()
        assert report["bench"]["stamp"] == full_stamp, report
        got = fs2.linear_contents("bench")
        n = min(got.size, want.size)
        np.testing.assert_array_equal(got[:n], want[:n])
        assert not got[n:].any() and not want[n:].any()
        return {"batches": n_batches, "records": records, "wall_s": wall}
    finally:
        shutil.rmtree(root, ignore_errors=True)


def measure(
    n_batches: int = BATCHES, repeats: int = 7, max_overhead=0.15
) -> dict:
    batches = _batch_stream(0, n_batches)
    n_ops = sum(len(b) for b in batches)
    ref_fs, _m, _ = run_write_path(batches)  # warm-up + byte reference
    want = ref_fs.linear_contents("bench")
    root = tempfile.mkdtemp(prefix="bench-durability-")
    try:
        _fs, m, _ = run_write_path(  # warm the journaled path too
            batches, journal_root=os.path.join(root, "warm")
        )
        m.close()

        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            off_walls, on_walls = [], []
            for i in range(repeats):
                gc.collect()
                _fs, _m, wall = run_write_path(batches)
                off_walls.append(wall)
                gc.collect()
                fs, manager, wall = run_write_path(
                    batches, journal_root=os.path.join(root, f"j{i}")
                )
                manager.close()
                on_walls.append(wall)
                np.testing.assert_array_equal(
                    fs.linear_contents("bench"),
                    want,
                    err_msg="journaled write path bytes diverge",
                )
            off_s = statistics.median(off_walls)
            on_s = statistics.median(on_walls)

            recovery_rows = [run_recovery(n) for n in RECOVERY_BATCHES]
        finally:
            if gc_was_enabled:
                gc.enable()
    finally:
        shutil.rmtree(root, ignore_errors=True)

    overhead = on_s / off_s - 1.0
    result = {
        "benchmark": "durability",
        "nprocs": NPROCS,
        "batches": n_batches,
        "batch_size": BATCH,
        "ops": n_ops,
        "payload_bytes": PAYLOAD,
        "repeats": repeats,
        "journal_off": {"wall_s": off_s, "ops_per_s": n_ops / off_s},
        "journal_on": {"wall_s": on_s, "ops_per_s": n_ops / on_s},
        "journal_overhead_pct": 100.0 * overhead,
        "recovery": recovery_rows,
    }
    # The acceptance bar: group commit amortised over coalesced batches
    # stays under 15% of the *bare engine call* — the harshest
    # denominator; see the module docstring for the full-path framing.
    # (The regression gate re-runs this on noisy CI with the bar off
    # and relies on its own ratio thresholds instead.)
    if max_overhead is not None:
        assert overhead <= max_overhead, result
    return result


class TestDurabilityBench:
    def test_bytes_identical_with_journal_on(self, tmp_path):
        """The real FileService path: journal on vs off, same stream,
        byte-identical files."""
        rng = np.random.default_rng(1)
        ops = [
            (
                i % NPROCS,
                int(rng.integers(0, 8)) * PAYLOAD,
                rng.integers(0, 256, PAYLOAD, dtype=np.uint8),
            )
            for i in range(48)
        ]
        plain_fs, _m = run_service(ops)
        want = plain_fs.linear_contents("bench")
        fs, manager = run_service(ops, journal_root=str(tmp_path / "j"))
        manager.close()
        np.testing.assert_array_equal(fs.linear_contents("bench"), want)

    def test_journal_overhead_is_bounded(self, tmp_path):
        # Lenient CI bound (noisy shared runners); the 15% headline is
        # asserted by measure() on a quiet machine and recorded in
        # BENCH_durability.json.
        batches = _batch_stream(2, 12)
        run_write_path(batches)
        _fs, m, _ = run_write_path(
            batches, journal_root=str(tmp_path / "w")
        )
        m.close()
        _fs, _m, off_wall = run_write_path(batches)
        _fs, m, on_wall = run_write_path(
            batches, journal_root=str(tmp_path / "j")
        )
        m.close()
        assert on_wall < off_wall * 2.0

    def test_recovery_replays_full_journal(self):
        row = run_recovery(8)
        assert row["records"] == 32

    def test_throughput(self, benchmark, tmp_path):
        benchmark.group = "durability"
        batches = _batch_stream(3, 8)
        counter = iter(range(10**6))

        def journaled_run():
            _fs, m, _ = run_write_path(
                batches, journal_root=str(tmp_path / f"j{next(counter)}")
            )
            m.close()

        benchmark(journaled_run)


if __name__ == "__main__":
    result = measure()
    with open(RESULT_PATH, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(
        f"journal off: {result['journal_off']['ops_per_s']:8.1f} ops/s\n"
        f"journal on:  {result['journal_on']['ops_per_s']:8.1f} ops/s "
        f"({result['journal_overhead_pct']:+.1f}%)"
    )
    for row in result["recovery"]:
        print(
            f"recovery of {row['records']:5d} records: "
            f"{row['wall_s'] * 1e3:8.2f} ms"
        )
    print(f"results -> {RESULT_PATH}")
