"""Micro-benchmarks of the core operations behind the paper's phases.

These isolate the costs that the table columns aggregate: flat and
nested intersection (t_i), scalar and vectorised mapping (t_m),
gather/scatter strategies (t_g, t_sc).
"""

import numpy as np
import pytest

from repro.core import (
    ElementMapper,
    Falls,
    intersect_elements,
    intersect_falls,
    map_offset,
    project,
    unmap_offset,
)
from repro.core.periodic import PeriodicFallsSet
from repro.core.segments import segments_from_pairs
from repro.distributions import matrix_partition
from repro.redistribution.gather_scatter import gather_segments, scatter_segments

N = 1024


class TestIntersection:
    def test_flat_intersect(self, benchmark):
        f1 = Falls(0, 255, 1024, 256)
        f2 = Falls(0, 63, 256, 1024)
        benchmark.group = "intersect"
        out = benchmark(lambda: intersect_falls(f1, f2))
        assert out

    def test_nested_element_intersection(self, benchmark):
        rows = matrix_partition("r", N, N, 4)
        cols = matrix_partition("c", N, N, 4)
        benchmark.group = "intersect"
        inter = benchmark(lambda: intersect_elements(rows, 0, cols, 0))
        assert not inter.is_empty

    def test_projection(self, benchmark):
        rows = matrix_partition("r", N, N, 4)
        cols = matrix_partition("c", N, N, 4)
        inter = intersect_elements(rows, 0, cols, 0)
        mapper = ElementMapper(cols, 0)
        benchmark.group = "intersect"
        proj = benchmark(lambda: project(inter, cols, 0, mapper))
        assert proj.size_per_period == inter.size_per_period


class TestMapping:
    def test_scalar_map(self, benchmark):
        cols = matrix_partition("c", N, N, 4)
        benchmark.group = "mapping"
        benchmark(lambda: map_offset(cols, 1, 123_456, mode="next"))

    def test_scalar_unmap(self, benchmark):
        cols = matrix_partition("c", N, N, 4)
        benchmark.group = "mapping"
        benchmark(lambda: unmap_offset(cols, 1, 54_321))

    def test_vectorised_map_100k(self, benchmark):
        cols = matrix_partition("c", N, N, 4)
        mapper = ElementMapper(cols, 1)
        ranks = np.arange(100_000, dtype=np.int64)
        offsets = mapper.unmap_many(ranks)
        benchmark.group = "mapping"
        out = benchmark(lambda: mapper.map_many(offsets))
        np.testing.assert_array_equal(out, ranks)

    def test_mapper_construction(self, benchmark):
        cols = matrix_partition("c", N, N, 4)
        benchmark.group = "mapping"
        benchmark(lambda: ElementMapper(cols, 2))


class TestGatherScatter:
    def _segments(self, runs, run_len, stride):
        return segments_from_pairs(
            [(i * stride, i * stride + run_len - 1) for i in range(runs)]
        )

    @pytest.mark.parametrize("strategy", ["strided", "fancy", "slices"])
    def test_gather_uniform_1k_runs(self, benchmark, strategy):
        segs = self._segments(1024, 256, 1024)
        src = np.zeros(1024 * 1024 + 256, dtype=np.uint8)
        benchmark.group = "gather-uniform"
        out = benchmark(lambda: gather_segments(src, segs, strategy=strategy))
        assert out.size == 1024 * 256

    @pytest.mark.parametrize("strategy", ["strided", "fancy", "slices"])
    def test_scatter_uniform_1k_runs(self, benchmark, strategy):
        segs = self._segments(1024, 256, 1024)
        dst = np.zeros(1024 * 1024 + 256, dtype=np.uint8)
        src = np.arange(1024 * 256, dtype=np.uint8)
        benchmark.group = "scatter-uniform"
        benchmark(lambda: scatter_segments(dst, segs, src, strategy=strategy))

    def test_gather_contiguous_baseline(self, benchmark):
        """The copy cost floor: one memcpy of the same volume."""
        src = np.zeros(1024 * 256, dtype=np.uint8)
        benchmark.group = "gather-uniform"
        benchmark(lambda: src.copy())


class TestPeriodicCounting:
    """Closed-form ``count_in`` must not depend on the file length.

    The rows below grow the window from 16 KiB to a full 2048x2048
    matrix (4 MiB) over a fixed small-period striped intersection; with
    the closed form (full periods x size-per-period + prefix-summed edge
    periods) every row should take the same time, where the old tiling
    implementation scaled linearly with the window.
    """

    #: Stripe units 64 vs 48 over 4 elements each -> the intersection
    #: repeats every lcm(4*64, 4*48) = 768 bytes.
    def _intersection(self):
        from repro.core import Partition

        def striped(unit, p=4):
            return Partition(
                [
                    Falls(k * unit, (k + 1) * unit - 1, p * unit, 1)
                    for k in range(p)
                ]
            )

        return intersect_elements(striped(64), 0, striped(48), 1)

    @pytest.mark.parametrize("length", [2**14, 2**18, 2**22])
    def test_count_in_growing_file(self, benchmark, length):
        pfs = self._intersection()
        pfs.count_in(0, length - 1)  # warm the period prefix cache
        benchmark.group = "periodic-count"
        out = benchmark(lambda: pfs.count_in(0, length - 1))
        assert out > 0

    def test_count_in_uncached_instance(self, benchmark):
        """Including the one-off prefix construction (first query)."""
        length = 2**22
        benchmark.group = "periodic-count"

        def fresh():
            pfs = self._intersection()
            return pfs.count_in(0, length - 1)

        assert benchmark(fresh) > 0

    def test_segments_in_window_memo(self, benchmark):
        """Repeated same-extremity queries hit the per-instance memo."""
        pfs = self._intersection()
        length = 2**18
        pfs.segments_in(0, length - 1)
        benchmark.group = "periodic-count"
        starts, _ = benchmark(lambda: pfs.segments_in(0, length - 1))
        assert starts.size > 0
