"""Ablation A4: nCube bit-permutation mappings vs general FALLS mappings.

Related-work claim (§2): the nCube approach maps via address-bit
permutations but "all array sizes must be powers of two.  Our mapping
functions are general and therefore a superset of those from nCube."

This ablation shows (a) on power-of-two layouts both schemes agree
byte for byte, (b) their per-offset mapping costs are comparable, and
(c) the FALLS machinery handles the non-power-of-two layouts the nCube
scheme cannot express at all.
"""

import numpy as np
import pytest

from repro.core import ElementMapper
from repro.distributions.ncube import (
    NCubeError,
    disk_of_address,
    striped_bit_partition,
)
from repro.distributions.irregular import round_robin

FILE_BYTES = 1 << 16
NDISKS = 4
STRIPE = 1 << 10


def test_schemes_agree_on_powers_of_two():
    p_bits = striped_bit_partition(FILE_BYTES, NDISKS, STRIPE)
    p_falls = round_robin(NDISKS, STRIPE)
    addrs = np.arange(FILE_BYTES, dtype=np.int64)
    disk_bits = (addrs >> 10) & (NDISKS - 1)
    for d in range(NDISKS):
        mapper = ElementMapper(p_falls, d)
        mine = np.flatnonzero(disk_bits == d)
        np.testing.assert_array_equal(
            mapper.unmap_many(np.arange(mine.size, dtype=np.int64)), mine
        )
        assert p_bits.elements[d] == p_falls.elements[d]


def test_ncube_rejects_non_powers_of_two():
    with pytest.raises(NCubeError):
        striped_bit_partition(FILE_BYTES, 3, STRIPE)
    with pytest.raises(NCubeError):
        striped_bit_partition(FILE_BYTES, NDISKS, 1000)
    with pytest.raises(NCubeError):
        disk_of_address(0, 5, STRIPE)
    # The general scheme handles it without blinking.
    p = round_robin(3, 1000)
    assert p.num_elements == 3


def test_bit_extraction_per_offset(benchmark):
    addrs = np.arange(FILE_BYTES, dtype=np.int64)
    benchmark.group = "ncube-map"
    benchmark(lambda: (addrs >> 10) & (NDISKS - 1))


def test_falls_mapping_per_offset(benchmark):
    p = round_robin(NDISKS, STRIPE)
    mapper = ElementMapper(p, 1)
    ranks = np.arange(FILE_BYTES // NDISKS, dtype=np.int64)
    benchmark.group = "ncube-map"
    benchmark(lambda: mapper.unmap_many(ranks))


def test_bit_permutation_roundtrip(benchmark):
    from repro.distributions.ncube import BitPermutation

    perm = BitPermutation(tuple((i + 5) % 16 for i in range(16)))
    addrs = np.arange(FILE_BYTES, dtype=np.int64)
    benchmark.group = "ncube-permute"
    out = benchmark(lambda: perm.apply_many(addrs))
    inv = perm.inverse()
    np.testing.assert_array_equal(inv.apply_many(out), addrs)
