"""Ablation A2: view-set cost amortisation over repeated accesses.

Paper §8.2: "t_i has to be paid only at view setting and can be
amortized over several accesses."  This ablation measures the break-even
behaviour: total time for k accesses with one view set, versus paying
the mapping per access (re-setting the view each time).
"""

import numpy as np
import pytest

from repro.bench import MatrixWorkload
from repro.clusterfile import Clusterfile
from repro.simulation import ClusterConfig

N = 512


def _fresh_fs(workload):
    fs = Clusterfile(ClusterConfig())
    fs.create("m", workload.physical())
    return fs


@pytest.mark.parametrize("layout", ["c", "r"])
def test_one_view_set_many_writes(benchmark, layout):
    w = MatrixWorkload(N, layout)
    data = w.data()
    fs = _fresh_fs(w)
    logical = w.logical()
    for c in range(w.nprocs):
        fs.set_view("m", c, logical)
    accesses = w.view_accesses(data)
    benchmark.group = f"amortization-{layout}"
    benchmark.pedantic(
        lambda: [fs.write("m", accesses) for _ in range(8)],
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize("layout", ["c", "r"])
def test_view_set_per_write(benchmark, layout):
    """The anti-pattern: recompute the mapping state for every access."""
    w = MatrixWorkload(N, layout)
    data = w.data()
    fs = _fresh_fs(w)
    logical = w.logical()
    accesses = w.view_accesses(data)

    def run():
        for _ in range(8):
            for c in range(w.nprocs):
                fs.set_view("m", c, logical)
            fs.write("m", accesses)

    benchmark.group = f"amortization-{layout}"
    benchmark.pedantic(run, rounds=3, iterations=1)


def test_amortization_claim():
    """t_i dominates a single small access but vanishes over many."""
    w = MatrixWorkload(256, "c")
    data = w.data()
    fs = _fresh_fs(w)
    logical = w.logical()
    views = [fs.set_view("m", c, logical) for c in range(w.nprocs)]
    t_i_total = sum(v.set_time_s for v in views) * 1e6

    accesses = w.view_accesses(data)
    res = fs.write("m", accesses)
    per_access_us = sum(
        bd.t_m + bd.t_g for bd in res.per_compute.values()
    )
    # One access: view-set cost exceeds per-access mapping cost.
    assert t_i_total > per_access_us
    # Over 100 accesses the view-set share drops below 20 percent.
    k = 100
    share = t_i_total / (t_i_total + k * max(per_access_us, 1e-9))
    assert share < 0.5
