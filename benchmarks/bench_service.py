"""Service-layer benchmark: concurrent batched writes vs the serial engine.

The service's throughput win on this workload comes from *coalescing*:
a run of single-request writes each pays the whole per-operation engine
cost (span tree, request prep, transport run, result assembly), while
the service folds up to ``max_batch`` adjacent same-file writes into
one engine call.  Worker threads add overlap across batches on top
(NumPy's block copies release the GIL), but on small operations the
batching amortisation dominates — which is exactly the paper's
amortisation story retold at the operation level.

Measured: write-path throughput (operations/second) of the serial
engine loop vs the service at 1/2/4/8 workers, identical operation
stream, byte-identical final files (asserted).  The acceptance bar is
>= 1.5x serial throughput at 4 workers.

Run as a module to (re)generate the committed results file::

    PYTHONPATH=src python benchmarks/bench_service.py

which writes ``BENCH_service.json`` at the repository root, or under
pytest (``pytest benchmarks/bench_service.py``).
"""

import gc
import json
import os
import statistics
import time

import numpy as np

from repro.clusterfile.fs import Clusterfile
from repro.distributions import round_robin
from repro.service import FileService
from repro.simulation.cluster import ClusterConfig

NPROCS = 16
CHUNK = 256
PAYLOAD = 512
OPS = 320
WORKER_COUNTS = (1, 2, 4, 8)
MAX_BATCH = 16
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_service.json",
)


def _make_fs() -> Clusterfile:
    fs = Clusterfile(ClusterConfig(compute_nodes=NPROCS, io_nodes=4))
    fs.create("bench", round_robin(NPROCS, CHUNK))
    for node in range(NPROCS):
        fs.set_view("bench", node, round_robin(NPROCS, CHUNK))
    return fs


def _op_stream(seed: int, n_ops: int):
    """A write stream rotating over compute nodes (adjacent operations
    hit distinct nodes, so the service can coalesce full batches)."""
    rng = np.random.default_rng(seed)
    ops = []
    for i in range(n_ops):
        node = i % NPROCS
        off = int(rng.integers(0, 8)) * PAYLOAD
        data = rng.integers(0, 256, PAYLOAD, dtype=np.uint8)
        ops.append((node, off, data))
    return ops


def run_serial(ops):
    """The baseline: one engine call per operation, one thread."""
    fs = _make_fs()
    t0 = time.perf_counter()
    for node, off, data in ops:
        fs.write("bench", [(node, off, data)])
    wall = time.perf_counter() - t0
    return fs, wall


def run_service(ops, workers: int):
    """The same stream through the service (submission not timed apart:
    the driver thread is part of the system under test)."""
    fs = _make_fs()
    t0 = time.perf_counter()
    with FileService(
        fs,
        workers=workers,
        max_queue=len(ops),
        admission="park",
        max_batch=MAX_BATCH,
    ) as svc:
        for node, off, data in ops:
            svc.submit_write("bench", node, off, data)
        assert svc.drain(timeout=300)
    wall = time.perf_counter() - t0
    return fs, wall


def measure(
    n_ops: int = OPS, repeats: int = 5, min_speedup: float = 1.5
) -> dict:
    ops = _op_stream(0, n_ops)
    serial_fs, _ = run_serial(ops)  # warm-up + byte reference
    want = serial_fs.linear_contents("bench")

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        serial_walls = []
        for _ in range(repeats):
            gc.collect()
            _, wall = run_serial(ops)
            serial_walls.append(wall)
        serial_s = statistics.median(serial_walls)

        rows = []
        for workers in WORKER_COUNTS:
            walls = []
            for _ in range(repeats):
                gc.collect()
                fs, wall = run_service(ops, workers)
                walls.append(wall)
                np.testing.assert_array_equal(
                    fs.linear_contents("bench"),
                    want,
                    err_msg=f"service({workers}) bytes diverge from serial",
                )
            wall_s = statistics.median(walls)
            rows.append(
                {
                    "workers": workers,
                    "wall_s": wall_s,
                    "ops_per_s": n_ops / wall_s,
                    "speedup_vs_serial": serial_s / wall_s,
                }
            )
    finally:
        if gc_was_enabled:
            gc.enable()

    at4 = next(r for r in rows if r["workers"] == 4)
    result = {
        "benchmark": "service",
        "nprocs": NPROCS,
        "ops": n_ops,
        "payload_bytes": PAYLOAD,
        "max_batch": MAX_BATCH,
        "repeats": repeats,
        "serial": {"wall_s": serial_s, "ops_per_s": n_ops / serial_s},
        "service": rows,
        "speedup_at_4_workers": at4["speedup_vs_serial"],
    }
    # The acceptance bar: batched concurrent writes at 4 workers beat
    # the serial engine by >= 1.5x on the same stream (the regression
    # gate re-runs this on noisy CI and lowers min_speedup).
    assert at4["speedup_vs_serial"] >= min_speedup, result
    return result


class TestServiceBench:
    def test_bytes_identical_across_worker_counts(self):
        ops = _op_stream(1, 48)
        serial_fs, _ = run_serial(ops)
        want = serial_fs.linear_contents("bench")
        for workers in (1, 4):
            fs, _ = run_service(ops, workers)
            np.testing.assert_array_equal(fs.linear_contents("bench"), want)

    def test_batching_beats_serial_at_4_workers(self):
        # Lenient CI bound (noisy shared runners); the >= 1.5x headline
        # is asserted by measure() on a quiet machine and recorded in
        # BENCH_service.json.
        ops = _op_stream(2, 120)
        _, serial_wall = run_serial(ops)
        _, svc_wall = run_service(ops, workers=4)
        assert svc_wall < serial_wall * 1.1

    def test_throughput(self, benchmark):
        benchmark.group = "service"
        ops = _op_stream(3, 64)
        benchmark(lambda: run_service(ops, workers=4))


if __name__ == "__main__":
    result = measure()
    with open(RESULT_PATH, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(f"serial:  {result['serial']['ops_per_s']:8.1f} ops/s")
    for row in result["service"]:
        print(
            f"svc x{row['workers']}:  {row['ops_per_s']:8.1f} ops/s "
            f"({row['speedup_vs_serial']:.2f}x serial)"
        )
    print(f"results -> {RESULT_PATH}")
