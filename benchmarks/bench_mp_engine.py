"""Multiprocess engine benchmark: escaping the GIL on bulk writes.

The workload is ``bench_service``-shaped — a stream of write operations
against one striped deployment — but with bulk payloads (256 KiB per
compute node per operation, >= 64 KiB as required) through
fine-grained cyclic views over coarse physical striping, so every
message scatters ~128 runs into its subfile.  That makes the
server-side work (scatter into the store, per-run cache accounting,
the per-run disk-time model) the dominant cost.  It is pure-Python
per-run looping and therefore GIL-capped in thread mode; process mode
fans it out over worker processes that each own a contiguous range of
subfiles and receive their bytes through the packed shared-memory
all-to-all exchange.

Measured, on an identical operation stream with byte-identical final
files (asserted):

* ``serial``    — one engine call per operation, thread mode;
* ``threads``   — the concurrent service at 1/2/4/8 worker *threads*;
* ``processes`` — the same serial client loop, engine fan-out over
  1/2/4/8 worker *processes*.

The headline acceptance bar — >= 2.5x serial throughput at 4 worker
processes — applies when the host actually has >= 4 CPUs.  Worker
processes can only overlap on real cores: on a 1-CPU host every
phase (parent pack, worker scatter, barriers) timeshares one core, so
the best possible outcome is serial speed minus IPC overhead.  The
result file records ``cpus`` and the bar that was applied, so a reader
of the committed baseline can tell which regime produced it.

Run as a module to (re)generate the committed results file::

    PYTHONPATH=src python benchmarks/bench_mp_engine.py

which writes ``BENCH_mp_engine.json`` at the repository root.
"""

import gc
import json
import os
import statistics
import time

import numpy as np

from repro.clusterfile.fs import Clusterfile
from repro.distributions import round_robin
from repro.service import FileService
from repro.simulation.cluster import ClusterConfig

NODES = 4  # compute nodes (clients)
SUBFILES = 16  # physical partition elements
VIEW_CHUNK = 128  # cyclic view striping unit
PHYS_CHUNK = 64 * 1024  # physical striping unit
PAYLOAD = 256 * 1024  # per compute node per operation
SLOTS = 4  # distinct offsets the stream rotates over
WORKER_COUNTS = (1, 2, 4, 8)
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_mp_engine.json",
)


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _make_fs(mode: str, workers: int = 4) -> Clusterfile:
    """Fine cyclic views over coarse striping: each node's bulk write
    scatters into every subfile in ~128 separate VIEW_CHUNK runs, so
    one operation is genuine all-to-all traffic with real per-run
    server work at the far end."""
    fs = Clusterfile(
        ClusterConfig(compute_nodes=NODES, io_nodes=4),
        workers_mode=mode,
        workers=workers,
    )
    fs.create("bench", round_robin(SUBFILES, PHYS_CHUNK))
    for node in range(NODES):
        fs.set_view("bench", node, round_robin(NODES, VIEW_CHUNK),
                    element=node)
    return fs


def _op_stream(seed: int, n_ops: int):
    """Each operation is one collective write: every compute node
    contributes a PAYLOAD-byte piece at a rotating slot offset."""
    rng = np.random.default_rng(seed)
    ops = []
    for i in range(n_ops):
        off = (i % SLOTS) * PAYLOAD
        ops.append(
            [
                (node, off, rng.integers(0, 256, PAYLOAD, dtype=np.uint8))
                for node in range(NODES)
            ]
        )
    return ops


def run_serial(ops, fs=None):
    """The baseline: thread mode, one engine call per operation."""
    fs = fs or _make_fs("thread")
    t0 = time.perf_counter()
    for accesses in ops:
        fs.write("bench", accesses, to_disk=True)
    wall = time.perf_counter() - t0
    return fs, wall


def run_threads(ops, workers: int):
    """The same stream through the service's worker *threads*; adjacent
    same-file writes coalesce into batched engine calls."""
    fs = _make_fs("thread")
    t0 = time.perf_counter()
    with FileService(
        fs,
        workers=workers,
        max_queue=len(ops) * NODES,
        admission="park",
        max_batch=NODES,
    ) as svc:
        for accesses in ops:
            for node, off, data in accesses:
                svc.submit_write("bench", node, off, data, to_disk=True)
        assert svc.drain(timeout=600)
    wall = time.perf_counter() - t0
    return fs, wall


def run_processes(ops, workers: int):
    """The serial client loop with the engine fanned out over worker
    processes through the shared-memory transport."""
    fs = _make_fs("process", workers=workers)
    try:
        t0 = time.perf_counter()
        for accesses in ops:
            fs.write("bench", accesses, to_disk=True)
        wall = time.perf_counter() - t0
        contents = fs.linear_contents("bench")
    finally:
        fs.close()
    return contents, wall


def _curve(run, ops, want, repeats):
    rows = []
    for workers in WORKER_COUNTS:
        walls = []
        for _ in range(repeats):
            gc.collect()
            made, wall = run(ops, workers)
            walls.append(wall)
            got = made if isinstance(made, np.ndarray) else (
                made.linear_contents("bench")
            )
            np.testing.assert_array_equal(
                got, want,
                err_msg=f"{run.__name__}({workers}) bytes diverge "
                        f"from serial",
            )
        rows.append({"workers": workers, "wall_s": statistics.median(walls)})
    return rows


def measure(
    n_ops: int = 24, repeats: int = 3, min_speedup: float | None = None
) -> dict:
    """Run the full serial/threads/processes matrix.

    ``min_speedup=None`` resolves the acceptance bar from the host: the
    2.5x headline on >= 4 CPUs, a bounded-IPC-overhead floor of 0.25x
    below that (worker processes cannot overlap without cores to run
    on).  Pass an explicit value — the regression gate passes 0.0 — to
    override.
    """
    cpus = _cpus()
    if min_speedup is None:
        min_speedup = 2.5 if cpus >= 4 else 0.25
    ops = _op_stream(0, n_ops)
    ref_fs, _ = run_serial(ops)  # warm-up + byte reference
    want = ref_fs.linear_contents("bench")

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        serial_walls = []
        for _ in range(repeats):
            gc.collect()
            _, wall = run_serial(ops)
            serial_walls.append(wall)
        serial_s = statistics.median(serial_walls)

        thread_rows = _curve(run_threads, ops, want, repeats)
        process_rows = _curve(run_processes, ops, want, repeats)
    finally:
        if gc_was_enabled:
            gc.enable()

    for rows in (thread_rows, process_rows):
        for row in rows:
            row["speedup_vs_serial"] = serial_s / row["wall_s"]

    at4 = next(r for r in process_rows if r["workers"] == 4)
    result = {
        "benchmark": "mp_engine",
        "cpus": cpus,
        "speedup_bar": min_speedup,
        "nodes": NODES,
        "subfiles": SUBFILES,
        "ops": n_ops,
        "payload_bytes": PAYLOAD,
        "bytes_per_op": PAYLOAD * NODES,
        "repeats": repeats,
        "serial": {"wall_s": serial_s},
        "threads": thread_rows,
        "processes": process_rows,
        "speedup_at_4_processes": at4["speedup_vs_serial"],
    }
    assert at4["speedup_vs_serial"] >= min_speedup, result
    return result


class TestMpEngineBench:
    def test_bytes_identical_across_modes(self):
        ops = _op_stream(1, 3)
        fs, _ = run_serial(ops)
        want = fs.linear_contents("bench")
        contents, _ = run_processes(ops, workers=3)
        np.testing.assert_array_equal(contents, want)

    def test_process_overhead_bounded(self):
        # On a multi-core host this asserts an actual win; on a starved
        # single-core CI runner it still bounds the IPC overhead.  The
        # headline >= 2.5x (on >= 4 CPUs) is asserted by measure() and
        # recorded in BENCH_mp_engine.json.
        ops = _op_stream(2, 6)
        _, serial_wall = run_serial(ops)
        _, _ = run_serial(ops)  # warm caches before timing the ratio
        _, serial_wall = run_serial(ops)
        contents, mp_wall = run_processes(ops, workers=4)
        bar = 1.1 if _cpus() >= 4 else 6.0
        assert mp_wall < serial_wall * bar


if __name__ == "__main__":
    result = measure()
    with open(RESULT_PATH, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    serial_s = result["serial"]["wall_s"]
    print(f"cpus: {result['cpus']}  bar: {result['speedup_bar']}x")
    print(f"serial:        {serial_s * 1e3:8.1f} ms")
    for label, rows in (("threads", result["threads"]),
                        ("process", result["processes"])):
        for row in rows:
            print(
                f"{label}  x{row['workers']}:  "
                f"{row['wall_s'] * 1e3:8.1f} ms "
                f"({row['speedup_vs_serial']:.2f}x serial)"
            )
    print(f"results -> {RESULT_PATH}")
